"""Serve hot-path performance measurement and reporting.

This module gives the repository a durable performance record: the
``bench_serve_hotpath`` microbenchmark calls :func:`measure_serve_hotpath`
and writes the result to ``BENCH_serve.json`` (requests/sec, p50/p99 request
wall time, setup-cache hit counters), so every PR can compare its serve
throughput against the previous one (see EXPERIMENTS.md).

It also provides :func:`tune_gc`: experiment processes accumulate large,
effectively immutable object graphs (setup-cache masters, interned keys,
simulated rounds), which Python's generational GC rescans on every gen-2
collection.  Raising the collection thresholds — the standard tuning for
allocation-heavy batch jobs — removes that overhead without changing any
result.  The CLI and the benchmark harness both apply it.
"""

from __future__ import annotations

import gc
import json
import platform
import sys
import time
from dataclasses import asdict, dataclass, field
from typing import Sequence

from repro.analysis import setup_cache
from repro.analysis.runner import prepare_setup
from repro.config import SimulationConfig

#: GC thresholds for experiment processes (default CPython is (700, 10, 10),
#: which rescans the setup caches' object graphs constantly).
_GC_THRESHOLDS = (200_000, 100, 100)


def tune_gc() -> None:
    """Raise GC thresholds for allocation-heavy experiment runs (idempotent)."""
    gc.set_threshold(*_GC_THRESHOLDS)


@dataclass
class ServePerfReport:
    """Throughput profile of the FLStore serve hot path."""

    requests: int
    wall_seconds: float
    requests_per_second: float
    p50_request_seconds: float
    p99_request_seconds: float
    mean_request_seconds: float
    num_rounds: int
    seed: int
    workloads: list[str] = field(default_factory=list)
    setup_cache_stats: dict[str, int] = field(default_factory=dict)
    python_version: str = ""
    platform: str = ""

    def as_dict(self) -> dict:
        return asdict(self)


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, max(0, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


def measure_serve_hotpath(
    num_rounds: int = 15,
    requests_per_workload: int = 25,
    workloads: Sequence[str] = (
        "clustering",
        "inference",
        "debugging",
        "scheduling_perf",
        "cosine_similarity",
        "malicious_filtering",
    ),
    seed: int = 7,
    model_name: str = "efficientnet_v2_small",
) -> ServePerfReport:
    """Serve a mixed trace on a fresh FLStore and profile per-request wall time.

    The setup goes through :func:`repro.analysis.runner.prepare_setup`, so
    repeated measurements exercise the setup cache exactly like the
    experiment layer does; the report includes its hit/miss counters.
    """
    config = SimulationConfig.paper(model_name=model_name, seed=seed).with_job(reduced_dim=64)
    setup = prepare_setup(config, num_rounds=num_rounds, systems=("flstore",))
    flstore = setup.flstore

    timings: list[float] = []
    total_start = time.perf_counter()
    for workload_name in workloads:
        trace = setup.generator.workload_trace(workload_name, requests_per_workload)
        for request in trace:
            start = time.perf_counter()
            flstore.serve(request)
            timings.append(time.perf_counter() - start)
    wall = time.perf_counter() - total_start

    timings.sort()
    count = len(timings)
    return ServePerfReport(
        requests=count,
        wall_seconds=wall,
        requests_per_second=count / wall if wall > 0 else 0.0,
        p50_request_seconds=_percentile(timings, 0.50),
        p99_request_seconds=_percentile(timings, 0.99),
        mean_request_seconds=sum(timings) / count if count else 0.0,
        num_rounds=num_rounds,
        seed=seed,
        workloads=list(workloads),
        setup_cache_stats=setup_cache.stats.as_dict(),
        python_version=sys.version.split()[0],
        platform=platform.platform(),
    )


def _read_bench_json(path: str) -> dict:
    """Existing perf record at ``path``, or an empty dict."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        return data if isinstance(data, dict) else {}
    except (OSError, ValueError):
        return {}


def _write_payload(payload: dict, path: str) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def write_bench_json(report: ServePerfReport, path: str = "BENCH_serve.json", extra: dict | None = None) -> str:
    """Write ``report`` (plus optional ``extra`` context) to ``path``.

    Top-level keys the report does not produce (e.g. the ``engine_load``
    section written by :func:`merge_bench_json`) are preserved, so the
    hot-path and open-loop benchmarks can share one perf record regardless
    of execution order.
    """
    payload = _read_bench_json(path)
    payload.update(report.as_dict())
    if extra:
        payload.update(extra)
    return _write_payload(payload, path)


def merge_bench_json(section: str, payload: dict, path: str = "BENCH_serve.json") -> str:
    """Merge ``payload`` under the ``section`` key of the perf record at ``path``."""
    data = _read_bench_json(path)
    data[section] = payload
    return _write_payload(data, path)


def merge_bench_scalar(key: str, value: float, path: str = "BENCH_serve.json") -> str:
    """Merge one top-level scalar into the perf record at ``path``.

    ``benchmarks/check_perf_gate.py`` compares top-level numeric keys, so
    benchmarks that want their wall time regression-gated (e.g. the shard
    sweep) publish it through this helper.
    """
    data = _read_bench_json(path)
    data[key] = value
    return _write_payload(data, path)
