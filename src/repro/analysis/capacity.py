"""Analytic capacity/cost model for FL metadata volumes (Section 2.2 and 4.4).

The paper motivates tailored caching with two back-of-the-envelope numbers:

* the metadata of 100 FL training sessions can exceed 1500 TB, and a single
  1000-client x 1000-round EfficientNet job needs ~79 TB across ~10098
  Lambda functions ($10.2/hour) if *everything* is cached, whereas
* FLStore's tailored policies keep only ~1.2 GB on two functions
  (~$0.001/hour).

This module reproduces those estimates from the model zoo and the pricing
catalogue so the numbers can be regenerated and swept.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import GB, TB
from repro.config import PricingConfig
from repro.fl.models import get_model_spec


@dataclass(frozen=True)
class CapacityEstimate:
    """Outcome of one capacity/cost estimate."""

    description: str
    total_bytes: float
    functions_needed: int
    keepalive_cost_per_hour: float
    keepalive_cost_per_month: float

    @property
    def total_tb(self) -> float:
        """Total volume in TiB."""
        return self.total_bytes / TB

    @property
    def total_gb(self) -> float:
        """Total volume in GiB."""
        return self.total_bytes / GB


def full_job_metadata_bytes(
    model_name: str = "efficientnet_v2_small",
    clients_per_round: int = 1000,
    total_rounds: int = 1000,
    metadata_bytes_per_client: int = 4096,
) -> float:
    """Bytes of metadata produced by one FL job if every update is retained."""
    spec = get_model_spec(model_name)
    per_round = clients_per_round * (spec.size_bytes + metadata_bytes_per_client) + spec.size_bytes
    return float(per_round * total_rounds)


def estimate_full_caching(
    model_name: str = "efficientnet_v2_small",
    clients_per_round: int = 1000,
    total_rounds: int = 1000,
    pricing: PricingConfig | None = None,
    function_memory_gb: float = 8.0,
) -> CapacityEstimate:
    """Cost of caching *all* metadata of a job in serverless memory."""
    pricing = pricing or PricingConfig()
    total = full_job_metadata_bytes(model_name, clients_per_round, total_rounds)
    functions = int(total // (function_memory_gb * GB)) + 1
    per_month = functions * pricing.lambda_keepalive_cost_per_instance_month
    return CapacityEstimate(
        description=f"cache-everything ({clients_per_round} clients x {total_rounds} rounds)",
        total_bytes=total,
        functions_needed=functions,
        keepalive_cost_per_hour=per_month / (30 * 24),
        keepalive_cost_per_month=per_month,
    )


def estimate_tailored_caching(
    model_name: str = "efficientnet_v2_small",
    clients_per_round: int = 10,
    rounds_kept: int = 2,
    metadata_recent_rounds: int = 10,
    metadata_bytes_per_client: int = 4096,
    pricing: PricingConfig | None = None,
    function_memory_gb: float = 8.0,
) -> CapacityEstimate:
    """Footprint of FLStore's tailored policies (latest round + prefetched next round)."""
    pricing = pricing or PricingConfig()
    spec = get_model_spec(model_name)
    update_bytes = rounds_kept * (clients_per_round * spec.size_bytes + spec.size_bytes)
    metadata_bytes = metadata_recent_rounds * clients_per_round * metadata_bytes_per_client
    total = float(update_bytes + metadata_bytes)
    functions = int(total // (function_memory_gb * GB)) + 1
    per_month = functions * pricing.lambda_keepalive_cost_per_instance_month
    return CapacityEstimate(
        description=f"tailored policies ({clients_per_round} clients, {rounds_kept} rounds kept)",
        total_bytes=total,
        functions_needed=functions,
        keepalive_cost_per_hour=per_month / (30 * 24),
        keepalive_cost_per_month=per_month,
    )


def dedicated_cache_cost_per_hour(total_bytes: float, pricing: PricingConfig | None = None) -> float:
    """Hourly cost of holding ``total_bytes`` in a provisioned cloud cache instead."""
    pricing = pricing or PricingConfig()
    nodes = int(total_bytes // (pricing.cache_node_memory_gb * GB)) + 1
    return nodes * pricing.cache_node_cost_per_hour
