"""Reproduction of the appendix experiments and supporting analyses.

Covers Figure 12 (scalability), Figures 13-14 (fault tolerance and
replication vs re-fetching), Figure 19 (model memory footprints), the
Section 5.5 component-overhead measurements, the Section 2.2 capacity
analysis, and one extension ablation (prefetch depth) called out in
DESIGN.md.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.analysis.capacity import (
    dedicated_cache_cost_per_hour,
    estimate_full_caching,
    estimate_tailored_caching,
)
from repro.analysis.comparison import percent_reduction
from repro.analysis.runner import prepare_setup, run_trace
from repro.config import SimulationConfig
from repro.core.cache_engine import CacheEngine
from repro.core.policies.factory import make_policy_bundle
from repro.core.request_tracker import RequestTracker
from repro.core.serverless_cache import ServerlessCacheCluster
from repro.cloud.object_store import ObjectStore
from repro.fl.keys import DataKey
from repro.fl.models import MODEL_ZOO, average_model_size_mb
from repro.network.costs import TransferCostModel
from repro.network.model import NetworkTopology
from repro.serverless.faults import ZipfianFaultInjector
from repro.serverless.platform import ServerlessPlatform
from repro.simulation.metrics import summarize_records
from repro.workloads.registry import WORKLOAD_DISPLAY_NAMES


def _experiment_config(model_name: str, seed: int = 7) -> SimulationConfig:
    return SimulationConfig.paper(model_name=model_name, seed=seed).with_job(reduced_dim=64)


# ---------------------------------------------------------------------------
# Figure 12 — scalability with concurrent requests
# ---------------------------------------------------------------------------

def run_figure12_scalability(
    model_name: str = "efficientnet_v2_small",
    workloads: Sequence[str] = (
        "malicious_filtering",
        "cosine_similarity",
        "scheduling_cluster",
        "clustering",
        "inference",
    ),
    parallel_requests: Sequence[int] = tuple(range(1, 11)),
    cached_parallel_functions: int = 5,
    num_rounds: int = 15,
    seed: int = 7,
) -> list[dict]:
    """Figure 12: per-request latency/cost as concurrent requests grow.

    FLStore keeps ``cached_parallel_functions`` warm copies able to serve a
    workload concurrently; requests beyond that number queue behind earlier
    waves, so latency stays flat up to the number of cached copies and grows
    in steps beyond it — the paper's observed behaviour.
    """
    config = _experiment_config(model_name, seed=seed)
    setup = prepare_setup(config, num_rounds=num_rounds, systems=("flstore",))
    rows = []
    for workload_name in workloads:
        # Warm the cache on the workload's access path, then measure the last
        # (fully-warm) request to obtain the base, uncontended latency/cost.
        trace = setup.generator.workload_trace(workload_name, 4)
        run_trace(setup.flstore, trace[:-1], system_name="flstore", model_name=model_name)
        base = run_trace(setup.flstore, trace[-1:], system_name="flstore", model_name=model_name)[0]
        base_latency = base.latency.total_seconds
        base_cost = base.cost.total_dollars
        for parallel in parallel_requests:
            waves = [1 + (i // cached_parallel_functions) for i in range(parallel)]
            latencies = [base_latency * wave for wave in waves]
            rows.append(
                {
                    "workload": WORKLOAD_DISPLAY_NAMES[workload_name],
                    "parallel_requests": parallel,
                    "cached_parallel_functions": cached_parallel_functions,
                    "mean_latency_seconds": float(np.mean(latencies)),
                    "max_latency_seconds": float(np.max(latencies)),
                    "mean_cost_dollars": base_cost,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figures 13 & 14 — fault tolerance and replication vs re-fetching
# ---------------------------------------------------------------------------

def run_figure13_fault_tolerance(
    model_name: str = "efficientnet_v2_small",
    workloads: Sequence[str] = (
        "personalization",
        "clustering",
        "malicious_filtering",
        "incentives",
        "scheduling_cluster",
        "reputation",
        "scheduling_perf",
        "cosine_similarity",
    ),
    function_instances: Sequence[int] = (1, 2, 3, 4, 5),
    requests_per_workload: int = 12,
    num_rounds: int = 20,
    fault_rate: float = 0.25,
    seed: int = 7,
) -> list[dict]:
    """Figure 13: latency/cost per request under Zipfian reclamations vs replica count."""
    rows = []
    for instances in function_instances:
        config = _experiment_config(model_name, seed=seed)
        injector = ZipfianFaultInjector(fault_rate=fault_rate, seed=seed)
        setup = prepare_setup(
            config,
            num_rounds=num_rounds,
            systems=("flstore",),
            replication_factor=instances - 1,
        )
        setup.flstore.fault_injector = injector
        for workload_name in workloads:
            trace = setup.generator.workload_trace(workload_name, requests_per_workload)
            records = run_trace(setup.flstore, trace, system_name="flstore", model_name=model_name)
            summary = summarize_records(records)
            rows.append(
                {
                    "function_instances": instances,
                    "workload": WORKLOAD_DISPLAY_NAMES[workload_name],
                    "mean_latency_seconds": summary.mean_latency_seconds,
                    "total_cost_dollars": summary.total_cost_dollars,
                    "hit_rate": summary.hit_rate,
                    "injected_faults": injector.total_faults,
                }
            )
    return rows


def run_figure14_replication_vs_refetch(
    model_name: str = "efficientnet_v2_small",
    workloads: Sequence[str] = (
        "clustering",
        "cosine_similarity",
        "incentives",
        "malicious_filtering",
        "personalization",
        "reputation",
        "scheduling_cluster",
        "scheduling_perf",
    ),
    requests_per_workload: int = 12,
    num_rounds: int = 20,
    fault_rate: float = 0.25,
    replica_count: int = 5,
    trace_duration_hours: float = 50.0,
    seed: int = 7,
) -> dict:
    """Figure 14: re-fetching (no replicas) vs replication under faults.

    Returns per-workload latency and cost for both strategies plus the
    headline comparison: the communication cost of re-fetching lost data vs
    the (tiny) keep-alive cost of maintaining ``replica_count`` replicas.
    """
    strategies = {
        "refetching": 0,
        "replication": replica_count - 1,
    }
    per_workload: dict[str, dict[str, dict[str, float]]] = {}
    strategy_totals = {name: 0.0 for name in strategies}
    for strategy, replication in strategies.items():
        config = _experiment_config(model_name, seed=seed)
        injector = ZipfianFaultInjector(fault_rate=fault_rate, seed=seed)
        setup = prepare_setup(
            config, num_rounds=num_rounds, systems=("flstore",), replication_factor=replication
        )
        setup.flstore.fault_injector = injector
        for workload_name in workloads:
            trace = setup.generator.workload_trace(workload_name, requests_per_workload)
            records = run_trace(setup.flstore, trace, system_name="flstore", model_name=model_name)
            summary = summarize_records(records)
            per_workload.setdefault(workload_name, {})[strategy] = {
                "mean_latency_seconds": summary.mean_latency_seconds,
                "total_cost_dollars": summary.total_cost_dollars,
            }
            strategy_totals[strategy] += summary.total_cost_dollars

    config = _experiment_config(model_name, seed=seed)
    keepalive = (
        TransferCostModel(config.pricing)
        .lambda_keepalive_cost(replica_count, trace_duration_hours)
        .total_dollars
    )
    rows = [
        {
            "workload": WORKLOAD_DISPLAY_NAMES[name],
            "refetch_latency_seconds": values["refetching"]["mean_latency_seconds"],
            "replication_latency_seconds": values["replication"]["mean_latency_seconds"],
            "refetch_cost_dollars": values["refetching"]["total_cost_dollars"],
            "replication_cost_dollars": values["replication"]["total_cost_dollars"],
        }
        for name, values in per_workload.items()
    ]
    refetch_penalty = max(0.0, strategy_totals["refetching"] - strategy_totals["replication"])
    return {
        "rows": rows,
        "refetch_total_cost_dollars": strategy_totals["refetching"],
        "replication_total_cost_dollars": strategy_totals["replication"],
        "refetch_penalty_cost_dollars": refetch_penalty,
        "replication_keepalive_cost_dollars": keepalive,
        "replica_count": replica_count,
        "trace_duration_hours": trace_duration_hours,
    }


# ---------------------------------------------------------------------------
# Figure 19 — model memory footprints
# ---------------------------------------------------------------------------

def run_figure19_model_footprints() -> dict:
    """Figure 19: serialized memory footprint of the cross-device FL model zoo."""
    rows = [
        {
            "model": spec.name,
            "family": spec.family,
            "size_mb": spec.size_mb,
            "params_millions": spec.params_millions,
            "fits_in_10gb_function": spec.size_mb < 10 * 1024,
        }
        for spec in sorted(MODEL_ZOO.values(), key=lambda s: s.size_mb)
    ]
    return {
        "rows": rows,
        "num_models": len(rows),
        "average_size_mb": average_model_size_mb(),
        "max_size_mb": max(r["size_mb"] for r in rows),
    }


# ---------------------------------------------------------------------------
# Section 5.5 — component overhead
# ---------------------------------------------------------------------------

def run_section55_component_overhead(request_counts: Sequence[int] = (1000, 100000)) -> list[dict]:
    """Section 5.5: memory/time overhead of the Request Tracker and Cache Engine."""
    config = SimulationConfig.small()
    topology = NetworkTopology(config.network)
    cost_model = TransferCostModel(config.pricing)
    rows = []
    for count in request_counts:
        tracker = RequestTracker()
        platform = ServerlessPlatform(config.serverless, config.pricing)
        cluster = ServerlessCacheCluster(platform, config.serverless, replication_factor=0)
        store = ObjectStore(topology.objstore, cost_model)
        engine = CacheEngine(make_policy_bundle("tailored"), cluster, store)

        function_ids = [f"fn-{i:04d}" for i in range(32)]
        request_ids = [f"req-{index}" for index in range(count)]
        for index in range(count):
            function_id = function_ids[index % 32]
            tracker.submit(request_ids[index], [function_id])
            engine.register_location(DataKey.update(index % 1000, index // 1000), function_id)

        start = time.perf_counter()
        probe_count = min(count, 1000)
        for index in range(probe_count):
            tracker.get(request_ids[index])
            engine.location_of(DataKey.update(index % 1000, index // 1000))
        elapsed_ms = (time.perf_counter() - start) * 1000.0 / probe_count

        rows.append(
            {
                "concurrent_requests": count,
                "request_tracker_mb": tracker.memory_overhead_bytes() / (1024 * 1024),
                "cache_engine_mb": engine.memory_overhead_bytes() / (1024 * 1024),
                "mean_lookup_milliseconds": elapsed_ms,
                "lookup_under_one_ms": elapsed_ms < 1.0,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Section 2.2 / 4.4 — metadata volume and tailored-policy footprint
# ---------------------------------------------------------------------------

def run_section22_capacity_analysis(
    model_name: str = "efficientnet_v2_small",
    clients_per_round: int = 1000,
    total_rounds: int = 1000,
) -> dict:
    """Sections 2.2 and 4.4: cache-everything vs tailored-policy footprint and cost."""
    full = estimate_full_caching(model_name, clients_per_round, total_rounds)
    tailored = estimate_tailored_caching(model_name, clients_per_round=10)
    return {
        "full_caching": {
            "total_tb": full.total_tb,
            "functions_needed": full.functions_needed,
            "keepalive_cost_per_month": full.keepalive_cost_per_month,
            "dedicated_cache_cost_per_hour": dedicated_cache_cost_per_hour(full.total_bytes),
        },
        "tailored_policies": {
            "total_gb": tailored.total_gb,
            "functions_needed": tailored.functions_needed,
            "keepalive_cost_per_month": tailored.keepalive_cost_per_month,
            "dedicated_cache_cost_per_hour": dedicated_cache_cost_per_hour(tailored.total_bytes),
        },
        "footprint_reduction_pct": percent_reduction(full.total_bytes, tailored.total_bytes),
    }


# ---------------------------------------------------------------------------
# Extension ablation — prefetch depth (not in the paper; called out in DESIGN.md)
# ---------------------------------------------------------------------------

def run_ablation_prefetch_depth(
    model_name: str = "efficientnet_v2_small",
    workload_name: str = "malicious_filtering",
    prefetch_depths: Sequence[int] = (0, 1, 2),
    num_rounds: int = 20,
    num_requests: int = 18,
    seed: int = 7,
) -> list[dict]:
    """How far ahead the tailored P2 policy prefetches vs hit rate and latency."""
    import dataclasses

    rows = []
    for depth in prefetch_depths:
        config = _experiment_config(model_name, seed=seed)
        config = dataclasses.replace(
            config,
            cache_policy=dataclasses.replace(config.cache_policy, prefetch_rounds_ahead=depth),
        )
        setup = prepare_setup(config, num_rounds=num_rounds, systems=("flstore",))
        trace = setup.generator.workload_trace(workload_name, num_requests)
        records = run_trace(setup.flstore, trace, system_name="flstore", model_name=model_name)
        summary = summarize_records(records)
        rows.append(
            {
                "prefetch_rounds_ahead": depth,
                "hit_rate": summary.hit_rate,
                "mean_latency_seconds": summary.mean_latency_seconds,
                "mean_cost_dollars": summary.mean_cost_dollars,
            }
        )
    return rows
