"""Memoization of experiment setup products (simulated rounds, ingested systems).

Every ``run_*`` experiment starts from the same skeleton: simulate an FL job,
build one or more systems, and ingest the simulated rounds into each (see
:func:`repro.analysis.runner.prepare_setup`).  Simulation and ingestion are
deterministic functions of ``(config, seed, num_rounds, systems, policy_mode,
replication_factor)``, yet the seed implementation recomputed them from
scratch for every figure — the dominant fixed cost of sweeping the benchmark
suite.

This module caches two products:

* **simulated rounds** — ``FLJobSimulator(config).run_rounds(num_rounds)``
  keyed on the config (including its seed) and the round count.  The cached
  records are treated as immutable by every consumer.
* **ingested system snapshots** — the fully built-and-ingested systems dict,
  stored pristine (never served against) and handed out as structural
  snapshots, so each experiment starts from exactly the state a fresh
  build-and-ingest would produce.

Snapshots are taken with a pickle round-trip that copies every piece of
mutable state (stores, indexes, policies, clocks, counters) but *shares* the
immutable payload objects — numpy weight arrays, :class:`ModelUpdate`,
:class:`RoundRecord`, metadata records, and :class:`DataKey` instances (all
frozen dataclasses that no consumer mutates).  That makes a snapshot an
order of magnitude cheaper than a ``deepcopy`` while remaining
behaviourally indistinguishable from a fresh build-and-ingest.

Both caches are process-local, bounded, and can be disabled (or cleared) for
A/B measurements; :class:`SetupCacheStats` feeds the ``BENCH_serve.json``
perf report so cache effectiveness is tracked alongside request throughput.
"""

from __future__ import annotations

import io
import pickle
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.config import SimulationConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.fl.rounds import RoundRecord
    from repro.fl.trainer import FLJobSimulator

#: Upper bound on entries per cache; oldest entries are discarded first.
_MAX_ENTRIES = 32

_rounds_cache: dict[tuple, tuple["FLJobSimulator", list["RoundRecord"]]] = {}
#: Pristine masters: ``key -> (pickle bytes, shared payload list)``.
_snapshot_cache: dict[tuple, tuple[bytes, list]] = {}
_enabled = True
_shared_types: frozenset[type] | None = None


def _shared_atom_types() -> frozenset[type]:
    """Immutable payload types shared (not copied) between snapshots."""
    global _shared_types
    if _shared_types is None:
        from repro.cloud.object_store import _StoredObject
        from repro.config import (
            CachePolicyConfig,
            FLJobConfig,
            NetworkConfig,
            PricingConfig,
            ServerlessConfig,
            SimulationConfig,
        )
        from repro.fl.keys import DataKey
        from repro.fl.metadata import ClientRoundMetadata, HyperParameters, ResourceProfile
        from repro.fl.models import ModelSpec, ModelUpdate
        from repro.fl.rounds import RoundRecord
        from repro.network.costs import TransferCostModel
        from repro.network.model import NetworkLink
        from repro.serverless.function import _ResidentObject
        from repro.simulation.records import CostBreakdown, LatencyBreakdown

        _shared_types = frozenset(
            {
                np.ndarray,
                ModelUpdate,
                RoundRecord,
                ClientRoundMetadata,
                HyperParameters,
                ResourceProfile,
                DataKey,
                # Store-record wrappers are written once at ingest and replaced
                # (never mutated in place) on overwrite, so snapshots can share
                # them; the dicts that hold them are still copied.
                _StoredObject,
                _ResidentObject,
                # Frozen configuration and model-zoo records.
                SimulationConfig,
                FLJobConfig,
                NetworkConfig,
                PricingConfig,
                ServerlessConfig,
                CachePolicyConfig,
                ModelSpec,
                NetworkLink,
                TransferCostModel,
                # Frozen accounting records (memoized per size/duration by
                # the cloud services).
                LatencyBreakdown,
                CostBreakdown,
            }
        )
    return _shared_types


def snapshot_dump(obj: Any) -> tuple[bytes, list]:
    """Serialise ``obj``'s mutable structure, sharing immutable payloads.

    Returns the pickle bytes plus the out-of-band list of shared payload
    objects (numpy arrays, frozen records).  The pair is a reusable pristine
    master: every :func:`snapshot_load` of it yields an independent copy of
    the mutable structure that still shares the payloads.
    """
    shared_types = _shared_atom_types()
    shared: list[Any] = []
    buffer = io.BytesIO()

    class _Pickler(pickle.Pickler):
        def persistent_id(self, item: Any) -> int | None:  # noqa: D102
            # Exact-type membership: the shared atoms are final classes, and
            # a frozenset probe is cheaper than an isinstance tuple scan on
            # the million-object graphs snapshots walk.
            if type(item) in shared_types:
                shared.append(item)
                return len(shared) - 1
            return None

    _Pickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    return buffer.getvalue(), shared


def snapshot_load(blob: tuple[bytes, list]) -> Any:
    """Materialise one independent copy from a :func:`snapshot_dump` master."""
    data, shared = blob

    class _Unpickler(pickle.Unpickler):
        def persistent_load(self, pid: int) -> Any:  # noqa: D102
            return shared[pid]

    return _Unpickler(io.BytesIO(data)).load()


def snapshot_copy(obj: Any) -> Any:
    """Copy ``obj``'s mutable structure while sharing immutable payloads."""
    return snapshot_load(snapshot_dump(obj))


@dataclass
class SetupCacheStats:
    """Hit/miss counters of the setup cache (reported in BENCH_serve.json)."""

    rounds_hits: int = 0
    rounds_misses: int = 0
    snapshot_hits: int = 0
    snapshot_misses: int = 0

    def as_dict(self) -> dict[str, int]:
        return asdict(self)


stats = SetupCacheStats()


def enabled() -> bool:
    """Whether setup memoization is active."""
    return _enabled


def set_enabled(value: bool) -> None:
    """Enable or disable setup memoization (clears nothing)."""
    global _enabled
    _enabled = bool(value)


def clear() -> None:
    """Drop every cached product and reset the hit/miss counters."""
    _rounds_cache.clear()
    _snapshot_cache.clear()
    stats.rounds_hits = stats.rounds_misses = 0
    stats.snapshot_hits = stats.snapshot_misses = 0


def _config_key(config: SimulationConfig) -> str:
    # SimulationConfig is a frozen dataclass tree of scalars; its repr is a
    # deterministic, collision-free encoding of every field (seed included).
    return repr(config)


def _trim(cache: dict) -> None:
    while len(cache) > _MAX_ENTRIES:
        cache.pop(next(iter(cache)))


def simulate_job(
    config: SimulationConfig, num_rounds: int
) -> tuple["FLJobSimulator", list["RoundRecord"]]:
    """Cached ``FLJobSimulator(config)`` plus its first ``num_rounds`` rounds.

    Both the simulator and the records are shared across callers and must not
    be mutated or advanced; experiment code only reads them (ingestion copies
    payloads into stores).
    """
    from repro.fl.trainer import FLJobSimulator

    key = (_config_key(config), num_rounds)
    if _enabled:
        cached = _rounds_cache.get(key)
        if cached is not None:
            stats.rounds_hits += 1
            return cached
    stats.rounds_misses += 1
    simulator = FLJobSimulator(config)
    rounds = simulator.run_rounds(num_rounds)
    if _enabled:
        _rounds_cache[key] = (simulator, rounds)
        _trim(_rounds_cache)
    return simulator, rounds


def simulate_rounds(config: SimulationConfig, num_rounds: int) -> list["RoundRecord"]:
    """Cached simulated rounds (see :func:`simulate_job`)."""
    return simulate_job(config, num_rounds)[1]


def snapshot_key(
    config: SimulationConfig,
    num_rounds: int,
    systems: Sequence[str],
    policy_mode: str,
    replication_factor: int | None,
) -> tuple:
    """Cache key identifying one deterministic build-and-ingest product."""
    return (_config_key(config), num_rounds, tuple(systems), policy_mode, replication_factor)


def get_system_snapshots(key: tuple) -> dict[str, object] | None:
    """Return a snapshot of the pristine ingested systems for ``key``, if cached."""
    if not _enabled:
        return None
    pristine = _snapshot_cache.get(key)
    if pristine is None:
        stats.snapshot_misses += 1
        return None
    stats.snapshot_hits += 1
    return snapshot_load(pristine)


def put_system_snapshots(key: tuple, systems: dict[str, object]) -> None:
    """Store freshly ingested ``systems`` as the pristine master for ``key``.

    The master is serialised immediately (one dump), so the caller keeps
    using — and mutating — the original object graph while every later
    :func:`get_system_snapshots` pays only the unpickle.
    """
    if not _enabled:
        return
    _snapshot_cache[key] = snapshot_dump(systems)
    _trim(_snapshot_cache)
