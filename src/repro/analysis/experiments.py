"""Reproduction of the paper's main-body tables and figures (Figures 1-11, Table 2).

Every ``run_*`` function is self-contained: it simulates the FL job, builds
the systems being compared, serves a deterministic request trace, and returns
plain-Python rows (lists of dictionaries) matching the series the paper
plots.  The appendix experiments (Figures 12-19, Section 5.5, Section 2.2)
live in :mod:`repro.analysis.experiments_appendix`.

Scale parameters default to values that run in seconds on a laptop; the
benchmarks pass the same defaults so the regenerated shapes are comparable
across machines.  Absolute values are not expected to match the paper (our
substrate is an analytic simulator, not AWS); the *shape* — who wins, by
roughly what factor, where crossovers happen — is what each experiment
checks (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.analysis import setup_cache
from repro.analysis.comparison import percent_reduction
from repro.analysis.runner import prepare_setup, map_tasks, run_trace
from repro.config import QUEUE_DISCIPLINES, SimulationConfig
from repro.engine.autoscale import AUTOSCALER_KINDS
from repro.fl.models import EVALUATION_MODELS
from repro.scenario import (
    DEFAULT_SCENARIO_WORKLOADS,
    AdmissionSpec,
    ArrivalSpec,
    AutoscalerSpec,
    FaultSpec,
    RemediationSpec,
    ReplicationSpec,
    RunReport,
    ScenarioSpec,
    TierSpec,
    WorkloadMixSpec,
    apply_overrides,
    calibrate,
    calibrate_mean_service_seconds,
    get_scenario,
    paper_experiment_config,
    sweep,
)
from repro.simulation.metrics import MetricsCollector, MetricSummary, summarize_records
from repro.traces.arrivals import ARRIVAL_KINDS
from repro.traces.generator import RequestTraceGenerator
from repro.workloads.registry import (
    CACHE_AGG_WORKLOADS,
    EVALUATION_WORKLOADS,
    WORKLOAD_DISPLAY_NAMES,
)

#: Default number of training rounds ingested before serving requests.
DEFAULT_NUM_ROUNDS = 25
#: Default number of requests per workload in comparison traces.
DEFAULT_REQUESTS_PER_WORKLOAD = 15

#: Memoized trace summaries: several figures derive different rows from the
#: same deterministic (model, workloads, systems, trace) serve — e.g. the
#: per-request and accumulated latency/cost figures (7/15 and 8/16) — so the
#: expensive serving pass is shared.  Keys fully determine the results; the
#: cache obeys the :mod:`repro.analysis.setup_cache` enable switch.
_summary_cache: dict[tuple, dict] = {}


def _summaries_memo(key: tuple, compute) -> dict:
    """Serve-trace summary memo (returns the cached mapping; treat as read-only)."""
    if not setup_cache.enabled():
        return compute()
    cached = _summary_cache.get(key)
    if cached is None:
        cached = compute()
        _summary_cache[key] = cached
    return cached


def clear_summary_cache() -> None:
    """Drop every memoized trace summary (used by perf A/B measurements)."""
    _summary_cache.clear()


def _experiment_config(model_name: str, seed: int = 7) -> SimulationConfig:
    """The paper's evaluation configuration, with a small reduced-weight dimension.

    One definition, shared with the scenario layer, so figure experiments
    and scenario runs draw on the same calibrations and setup snapshots.
    """
    return paper_experiment_config(model_name, seed=seed)


def compare_systems_on_workloads(
    model_name: str,
    workloads: Sequence[str],
    systems: Sequence[str] = ("flstore", "objstore-agg"),
    num_rounds: int = DEFAULT_NUM_ROUNDS,
    requests_per_workload: int = DEFAULT_REQUESTS_PER_WORKLOAD,
    policy_mode: str = "tailored",
    seed: int = 7,
) -> dict[tuple[str, str], MetricSummary]:
    """Serve identical traces on every system; return (system, workload) summaries."""

    def compute() -> dict[tuple[str, str], MetricSummary]:
        config = _experiment_config(model_name, seed=seed)
        setup = prepare_setup(config, num_rounds=num_rounds, systems=systems, policy_mode=policy_mode)
        collector = MetricsCollector()
        for workload_name in workloads:
            trace = setup.generator.workload_trace(workload_name, requests_per_workload)
            for system_name, system in setup.systems.items():
                run_trace(system, trace, system_name=system_name, model_name=model_name, collector=collector)
        return collector.by_system_and_workload()

    key = (
        "compare",
        model_name,
        tuple(workloads),
        tuple(systems),
        num_rounds,
        requests_per_workload,
        policy_mode,
        seed,
    )
    return _summaries_memo(key, compute)


def _single_system_summaries(
    model_name: str,
    workloads: Sequence[str],
    system: str,
    num_rounds: int,
    requests_per_workload: int,
    seed: int,
) -> dict[str, MetricSummary]:
    """Per-workload summaries of one system serving its trace (memoized).

    The workloads are served sequentially on one system instance, exactly the
    order the share/breakdown figures use, so cached summaries are identical
    to what each figure would have measured on its own.
    """

    def compute() -> dict[str, MetricSummary]:
        config = _experiment_config(model_name, seed=seed)
        setup = prepare_setup(config, num_rounds=num_rounds, systems=(system,))
        summaries: dict[str, MetricSummary] = {}
        for workload_name in workloads:
            trace = setup.generator.workload_trace(workload_name, requests_per_workload)
            records = run_trace(
                setup.systems[system], trace, system_name=system, model_name=model_name
            )
            summaries[workload_name] = summarize_records(records)
        return summaries

    key = ("single", model_name, tuple(workloads), system, num_rounds, requests_per_workload, seed)
    return _summaries_memo(key, compute)


def _compare_task(kwargs: dict) -> dict[tuple[str, str], MetricSummary]:
    """Picklable task wrapper for one model's system comparison.

    Used by the per-model figures through :func:`repro.analysis.runner.map_tasks`;
    each parallel worker computes one model's summaries independently.
    """
    return compare_systems_on_workloads(**kwargs)


def _compare_per_model(
    models: Sequence[str],
    workloads: Sequence[str],
    systems: Sequence[str],
    num_rounds: int,
    requests_per_workload: int,
    seed: int,
    workers: int | None,
) -> list[dict[tuple[str, str], MetricSummary]]:
    """Summaries for every model, optionally across parallel workers.

    Results come back in ``models`` order, so parallel runs produce the same
    rows as serial ones.
    """
    tasks = [
        {
            "model_name": model_name,
            "workloads": tuple(workloads),
            "systems": tuple(systems),
            "num_rounds": num_rounds,
            "requests_per_workload": requests_per_workload,
            "seed": seed,
        }
        for model_name in models
    ]
    return map_tasks(_compare_task, tasks, workers)


# ---------------------------------------------------------------------------
# Figures 1 & 2 — non-training share of per-round FL latency and cost
# ---------------------------------------------------------------------------

def _training_round_profile(setup) -> tuple[float, float]:
    """Mean per-round training latency and cost of the simulated FL job.

    The round latency is the slowest participant's local training plus upload
    (synchronous FL); the round cost is the aggregator instance occupied for
    that duration plus the metadata upload requests.
    """
    return _training_profile(setup.config, setup.rounds)


def _training_profile(config: SimulationConfig, rounds) -> tuple[float, float]:
    """Training latency/cost profile from the simulated rounds directly."""
    durations = []
    for record in rounds:
        slowest = max(meta.round_duration_seconds for meta in record.metadata.values())
        durations.append(slowest)
    mean_duration = float(np.mean(durations))
    training_cost = mean_duration / 3600.0 * config.pricing.aggregator_cost_per_hour
    return mean_duration, training_cost


def run_figure1_latency_share(
    model_name: str = "efficientnet_v2_small",
    workloads: Sequence[str] = EVALUATION_WORKLOADS,
    num_rounds: int = DEFAULT_NUM_ROUNDS,
    requests_per_workload: int = 10,
    seed: int = 7,
) -> list[dict]:
    """Figure 1: fraction of per-round FL latency spent in each non-training workload."""
    config = _experiment_config(model_name, seed=seed)
    training_seconds, _ = _training_profile(config, setup_cache.simulate_rounds(config, num_rounds))
    summaries = _single_system_summaries(
        model_name, workloads, "objstore-agg", num_rounds, requests_per_workload, seed
    )
    rows = []
    for workload_name in workloads:
        non_training = summaries[workload_name].mean_latency_seconds
        total = training_seconds + non_training
        rows.append(
            {
                "workload": WORKLOAD_DISPLAY_NAMES[workload_name],
                "training_seconds": training_seconds,
                "non_training_seconds": non_training,
                "total_seconds": total,
                "non_training_share_pct": 100.0 * non_training / total,
            }
        )
    return rows


def run_figure2_cost_share(
    model_name: str = "efficientnet_v2_small",
    workloads: Sequence[str] = EVALUATION_WORKLOADS,
    num_rounds: int = DEFAULT_NUM_ROUNDS,
    requests_per_workload: int = 10,
    seed: int = 7,
) -> list[dict]:
    """Figure 2: fraction of per-round FL cost attributable to each non-training workload."""
    config = _experiment_config(model_name, seed=seed)
    _, training_cost = _training_profile(config, setup_cache.simulate_rounds(config, num_rounds))
    summaries = _single_system_summaries(
        model_name, workloads, "objstore-agg", num_rounds, requests_per_workload, seed
    )
    rows = []
    for workload_name in workloads:
        non_training = summaries[workload_name].mean_cost_dollars
        total = training_cost + non_training
        rows.append(
            {
                "workload": WORKLOAD_DISPLAY_NAMES[workload_name],
                "training_cost": training_cost,
                "non_training_cost": non_training,
                "total_cost": total,
                "non_training_share_pct": 100.0 * non_training / total,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 4 — communication vs computation latency on the conventional stack
# ---------------------------------------------------------------------------

def run_figure4_comm_vs_comp(
    models: Sequence[str] = ("resnet18", "efficientnet_v2_small", "mobilenet_v3_small"),
    workloads: Sequence[str] = (
        "cosine_similarity",
        "debugging",
        "inference",
        "malicious_filtering",
        "scheduling_cluster",
    ),
    num_rounds: int = DEFAULT_NUM_ROUNDS,
    requests_per_workload: int = 10,
    seed: int = 7,
) -> dict:
    """Figure 4: communication and computation latency of non-training workloads.

    The baseline is the conventional stack (serverless/aggregator compute with
    the data fetched from the object store per request).
    """
    rows = []
    for model_name in models:
        summaries = _single_system_summaries(
            model_name, workloads, "objstore-agg", num_rounds, requests_per_workload, seed
        )
        for workload_name in workloads:
            summary = summaries[workload_name]
            rows.append(
                {
                    "model": model_name,
                    "workload": WORKLOAD_DISPLAY_NAMES[workload_name],
                    "communication_seconds": summary.total_communication_seconds / summary.count,
                    "computation_seconds": summary.total_computation_seconds / summary.count,
                }
            )
    avg_comm = float(np.mean([r["communication_seconds"] for r in rows]))
    avg_comp = float(np.mean([r["computation_seconds"] for r in rows]))
    return {
        "rows": rows,
        "average_communication_seconds": avg_comm,
        "average_computation_seconds": avg_comp,
        "communication_to_computation_ratio": avg_comm / avg_comp if avg_comp else float("inf"),
    }


# ---------------------------------------------------------------------------
# Figures 7 & 8 — FLStore vs ObjStore-Agg per-request latency and cost
# ---------------------------------------------------------------------------

def run_figure7_latency_vs_objstore(
    models: Sequence[str] = EVALUATION_MODELS,
    workloads: Sequence[str] = EVALUATION_WORKLOADS,
    num_rounds: int = DEFAULT_NUM_ROUNDS,
    requests_per_workload: int = DEFAULT_REQUESTS_PER_WORKLOAD,
    seed: int = 7,
    workers: int | None = None,
) -> list[dict]:
    """Figure 7: per-request latency of FLStore vs ObjStore-Agg per model and workload."""
    per_model = _compare_per_model(
        models, workloads, ("flstore", "objstore-agg"), num_rounds, requests_per_workload, seed, workers
    )
    rows = []
    for model_name, summaries in zip(models, per_model):
        for workload_name in workloads:
            flstore = summaries[("flstore", workload_name)]
            baseline = summaries[("objstore-agg", workload_name)]
            rows.append(
                {
                    "model": model_name,
                    "workload": WORKLOAD_DISPLAY_NAMES[workload_name],
                    "flstore_latency_seconds": flstore.mean_latency_seconds,
                    "objstore_agg_latency_seconds": baseline.mean_latency_seconds,
                    "median_flstore_latency_seconds": flstore.median_latency_seconds,
                    "median_objstore_latency_seconds": baseline.median_latency_seconds,
                    "latency_reduction_pct": percent_reduction(
                        baseline.mean_latency_seconds, flstore.mean_latency_seconds
                    ),
                }
            )
    return rows


def run_figure8_cost_vs_objstore(
    models: Sequence[str] = EVALUATION_MODELS,
    workloads: Sequence[str] = EVALUATION_WORKLOADS,
    num_rounds: int = DEFAULT_NUM_ROUNDS,
    requests_per_workload: int = DEFAULT_REQUESTS_PER_WORKLOAD,
    seed: int = 7,
    workers: int | None = None,
) -> list[dict]:
    """Figure 8: per-request cost of FLStore vs ObjStore-Agg per model and workload."""
    per_model = _compare_per_model(
        models, workloads, ("flstore", "objstore-agg"), num_rounds, requests_per_workload, seed, workers
    )
    rows = []
    for model_name, summaries in zip(models, per_model):
        for workload_name in workloads:
            flstore = summaries[("flstore", workload_name)]
            baseline = summaries[("objstore-agg", workload_name)]
            rows.append(
                {
                    "model": model_name,
                    "workload": WORKLOAD_DISPLAY_NAMES[workload_name],
                    "flstore_cost_dollars": flstore.mean_cost_dollars,
                    "objstore_agg_cost_dollars": baseline.mean_cost_dollars,
                    "cost_reduction_pct": percent_reduction(
                        baseline.mean_cost_dollars, flstore.mean_cost_dollars
                    ),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 9 — FLStore vs Cache-Agg per-request latency and cost
# ---------------------------------------------------------------------------

def run_figure9_vs_cache_agg(
    model_name: str = "efficientnet_v2_small",
    workloads: Sequence[str] = CACHE_AGG_WORKLOADS,
    num_rounds: int = DEFAULT_NUM_ROUNDS,
    requests_per_workload: int = DEFAULT_REQUESTS_PER_WORKLOAD,
    seed: int = 7,
) -> list[dict]:
    """Figure 9: per-request latency and cost of FLStore vs Cache-Agg (6 workloads)."""
    summaries = compare_systems_on_workloads(
        model_name,
        workloads,
        systems=("flstore", "cache-agg"),
        num_rounds=num_rounds,
        requests_per_workload=requests_per_workload,
        seed=seed,
    )
    rows = []
    for workload_name in workloads:
        flstore = summaries[("flstore", workload_name)]
        baseline = summaries[("cache-agg", workload_name)]
        rows.append(
            {
                "workload": WORKLOAD_DISPLAY_NAMES[workload_name],
                "flstore_latency_seconds": flstore.mean_latency_seconds,
                "cache_agg_latency_seconds": baseline.mean_latency_seconds,
                "latency_reduction_pct": percent_reduction(
                    baseline.mean_latency_seconds, flstore.mean_latency_seconds
                ),
                "flstore_cost_dollars": flstore.mean_cost_dollars,
                "cache_agg_cost_dollars": baseline.mean_cost_dollars,
                "cost_reduction_pct": percent_reduction(
                    baseline.mean_cost_dollars, flstore.mean_cost_dollars
                ),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 10 — overall per-round FL cost with and without FLStore
# ---------------------------------------------------------------------------

def run_figure10_overall_cost(
    model_name: str = "efficientnet_v2_small",
    workloads: Sequence[str] = EVALUATION_WORKLOADS,
    num_rounds: int = DEFAULT_NUM_ROUNDS,
    requests_per_workload: int = 10,
    seed: int = 7,
) -> list[dict]:
    """Figure 10: overall FL cost per round with and without FLStore."""
    config = _experiment_config(model_name, seed=seed)
    setup = prepare_setup(config, num_rounds=num_rounds, systems=("flstore", "objstore-agg"))
    _, training_cost = _training_round_profile(setup)
    rows = []
    for workload_name in workloads:
        trace = setup.generator.workload_trace(workload_name, requests_per_workload)
        objstore_records = run_trace(
            setup.objstore_agg, trace, system_name="objstore-agg", model_name=model_name
        )
        flstore_records = run_trace(setup.flstore, trace, system_name="flstore", model_name=model_name)
        without = training_cost + summarize_records(objstore_records).mean_cost_dollars
        with_flstore = training_cost + summarize_records(flstore_records).mean_cost_dollars
        rows.append(
            {
                "workload": WORKLOAD_DISPLAY_NAMES[workload_name],
                "cost_without_flstore": without,
                "cost_with_flstore": with_flstore,
                "reduction_pct": percent_reduction(without, with_flstore),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 11 — FLStore vs traditional caching policies inside FLStore
# ---------------------------------------------------------------------------

def _policy_variant_task(kwargs: dict) -> dict:
    """One (policy variant, workload) measurement on a fresh FLStore.

    Each pair gets a fresh FLStore so the comparison matches the paper's
    per-application measurement and reactive policies cannot piggy-back on
    data another workload's trace already pulled in.  Module-level so the
    parallel runner can pickle it.
    """
    config = _experiment_config(kwargs["model_name"], seed=kwargs["seed"])
    setup = prepare_setup(
        config,
        num_rounds=kwargs["num_rounds"],
        systems=("flstore",),
        policy_mode=kwargs["mode"],
    )
    trace = setup.generator.workload_trace(kwargs["workload_name"], kwargs["requests_per_workload"])
    records = run_trace(
        setup.flstore, trace, system_name=kwargs["variant_name"], model_name=kwargs["model_name"]
    )
    summary = summarize_records(records)
    return {
        "variant": kwargs["variant_name"],
        "workload": WORKLOAD_DISPLAY_NAMES[kwargs["workload_name"]],
        "mean_latency_seconds": summary.mean_latency_seconds,
        "mean_cost_dollars": summary.mean_cost_dollars,
        "hit_rate": summary.hit_rate,
    }


def run_figure11_policy_comparison(
    model_name: str = "efficientnet_v2_small",
    workloads: Sequence[str] = EVALUATION_WORKLOADS,
    policy_modes: Mapping[str, str] | None = None,
    num_rounds: int = DEFAULT_NUM_ROUNDS,
    requests_per_workload: int = DEFAULT_REQUESTS_PER_WORKLOAD,
    seed: int = 7,
    workers: int | None = None,
) -> list[dict]:
    """Figure 11: per-request latency/cost of FLStore under different caching policies."""
    if policy_modes is None:
        policy_modes = {
            "FLStore": "tailored",
            "FLStore-limited": "limited",
            "FLStore-LRU": "lru",
            "FLStore-FIFO": "fifo",
            "FLStore-Random": "random-policy",
        }
    tasks = [
        {
            "model_name": model_name,
            "variant_name": variant_name,
            "mode": mode,
            "workload_name": workload_name,
            "num_rounds": num_rounds,
            "requests_per_workload": requests_per_workload,
            "seed": seed,
        }
        for variant_name, mode in policy_modes.items()
        for workload_name in workloads
    ]
    return map_tasks(_policy_variant_task, tasks, workers)


# ---------------------------------------------------------------------------
# Table 2 — cache-policy hit rates
# ---------------------------------------------------------------------------

def _table2_task(kwargs: dict) -> dict:
    """One (taxonomy group, policy) hit-rate measurement (picklable task)."""
    import dataclasses

    model_name = kwargs["model_name"]
    num_rounds = kwargs["num_rounds"]
    seed = kwargs["seed"]
    group = kwargs["group"]
    policy_label = kwargs["policy_label"]
    mode = kwargs["mode"]

    # A smaller client pool (50) keeps the traced client's across-round
    # trajectory long enough for the P3 group, and the metadata window
    # covers every ingested round so the P4 pattern is fully cacheable
    # (the paper's R is tunable).
    config = _experiment_config(model_name, seed=seed).with_job(total_clients=50)
    config = dataclasses.replace(
        config,
        cache_policy=dataclasses.replace(config.cache_policy, metadata_recent_rounds=num_rounds),
    )
    setup = prepare_setup(config, num_rounds=num_rounds, systems=("flstore",), policy_mode=mode)
    generator = RequestTraceGenerator(setup.flstore.catalog, seed=seed, recent_rounds=num_rounds)
    if group == "P2":
        workload_name = "clustering"
        trace = generator.workload_trace(workload_name, num_rounds)
    elif group == "P3":
        workload_name = "debugging"
        client_id = generator.most_active_client()
        client_rounds = setup.flstore.catalog.rounds_for_client(client_id)
        trace = generator.workload_trace(
            workload_name, len(client_rounds), client_id=client_id, history_rounds=1
        )
    else:
        workload_name = "scheduling_perf"
        trace = generator.workload_trace(workload_name, num_rounds, recent_rounds=1)
    records = run_trace(setup.flstore, trace, system_name=policy_label, model_name=model_name)
    hits = sum(r.cache_hits for r in records)
    misses = sum(r.cache_misses for r in records)
    total = hits + misses
    return {
        "group": group,
        "workload": WORKLOAD_DISPLAY_NAMES[workload_name],
        "policy": f"FLStore ({group})" if policy_label == "FLStore" else policy_label,
        "hits": hits,
        "misses": misses,
        "total": total,
        "hit_rate": hits / total if total else 1.0,
    }


def run_table2_hit_rates(
    model_name: str = "efficientnet_v2_small",
    num_rounds: int = 40,
    seed: int = 7,
    workers: int | None = None,
) -> list[dict]:
    """Table 2: hit/miss counts of FLStore's tailored policies vs FIFO/LFU/LRU.

    Three workload groups are replayed, one per taxonomy class evaluated in
    the paper's table:

    * **P2** — per-round analysis (clustering), one request per round,
    * **P3** — across-round tracing (debugging) of the most active client,
      one request per round that client participated in,
    * **P4** — metadata lookups (performance-aware scheduling) over the
      current round's metadata, one request per round.

    The number of accesses therefore scales with ``num_rounds`` rather than
    matching the paper's absolute 20000/64 counts; the hit-rate contrast
    (≈0.98-1.0 for FLStore vs ≈0 for the traditional policies) is the result
    under test.
    """
    policies = {
        "FLStore": "tailored",
        "FIFO": "fifo",
        "LFU": "lfu",
        "LRU": "lru",
    }
    groups = ("P2", "P3", "P4")
    tasks = [
        {
            "model_name": model_name,
            "num_rounds": num_rounds,
            "seed": seed,
            "group": group,
            "policy_label": policy_label,
            "mode": mode,
        }
        for group in groups
        for policy_label, mode in policies.items()
    ]
    return map_tasks(_table2_task, tasks, workers)


# ---------------------------------------------------------------------------
# Figures 15-17 — total time and cost breakups over the whole trace
# ---------------------------------------------------------------------------

def run_figure15_total_time_breakup(
    models: Sequence[str] = EVALUATION_MODELS,
    workloads: Sequence[str] = EVALUATION_WORKLOADS,
    num_rounds: int = DEFAULT_NUM_ROUNDS,
    requests_per_workload: int = DEFAULT_REQUESTS_PER_WORKLOAD,
    seed: int = 7,
    workers: int | None = None,
) -> list[dict]:
    """Figure 15: accumulated communication/computation hours, FLStore vs ObjStore-Agg."""
    per_model = _compare_per_model(
        models, workloads, ("flstore", "objstore-agg"), num_rounds, requests_per_workload, seed, workers
    )
    rows = []
    for model_name, summaries in zip(models, per_model):
        for workload_name in workloads:
            flstore = summaries[("flstore", workload_name)]
            baseline = summaries[("objstore-agg", workload_name)]
            rows.append(
                {
                    "model": model_name,
                    "workload": WORKLOAD_DISPLAY_NAMES[workload_name],
                    "objstore_communication_hours": baseline.total_communication_seconds / 3600.0,
                    "objstore_computation_hours": baseline.total_computation_seconds / 3600.0,
                    "flstore_total_hours": flstore.total_latency_seconds / 3600.0,
                    "objstore_comm_fraction": baseline.communication_fraction,
                    "total_time_reduction_pct": percent_reduction(
                        baseline.total_latency_seconds, flstore.total_latency_seconds
                    ),
                }
            )
    return rows


def run_figure16_total_cost_breakup(
    models: Sequence[str] = EVALUATION_MODELS,
    workloads: Sequence[str] = EVALUATION_WORKLOADS,
    num_rounds: int = DEFAULT_NUM_ROUNDS,
    requests_per_workload: int = DEFAULT_REQUESTS_PER_WORKLOAD,
    seed: int = 7,
    workers: int | None = None,
) -> list[dict]:
    """Figure 16: accumulated cost breakup (communication vs computation) vs ObjStore-Agg."""
    per_model = _compare_per_model(
        models, workloads, ("flstore", "objstore-agg"), num_rounds, requests_per_workload, seed, workers
    )
    rows = []
    for model_name, summaries in zip(models, per_model):
        for workload_name in workloads:
            flstore = summaries[("flstore", workload_name)]
            baseline = summaries[("objstore-agg", workload_name)]
            rows.append(
                {
                    "model": model_name,
                    "workload": WORKLOAD_DISPLAY_NAMES[workload_name],
                    "objstore_total_cost": baseline.total_cost_dollars,
                    "objstore_communication_cost": baseline.total_communication_dollars,
                    "flstore_total_cost": flstore.total_cost_dollars,
                    "cost_reduction_pct": percent_reduction(
                        baseline.total_cost_dollars, flstore.total_cost_dollars
                    ),
                }
            )
    return rows


def run_figure17_vs_cache_agg_totals(
    model_name: str = "efficientnet_v2_small",
    workloads: Sequence[str] = CACHE_AGG_WORKLOADS,
    num_rounds: int = DEFAULT_NUM_ROUNDS,
    requests_per_workload: int = DEFAULT_REQUESTS_PER_WORKLOAD,
    seed: int = 7,
) -> list[dict]:
    """Figure 17: total time and cost over the trace, FLStore vs Cache-Agg."""
    summaries = compare_systems_on_workloads(
        model_name,
        workloads,
        systems=("flstore", "cache-agg"),
        num_rounds=num_rounds,
        requests_per_workload=requests_per_workload,
        seed=seed,
    )
    rows = []
    for workload_name in workloads:
        flstore = summaries[("flstore", workload_name)]
        baseline = summaries[("cache-agg", workload_name)]
        rows.append(
            {
                "workload": WORKLOAD_DISPLAY_NAMES[workload_name],
                "cache_agg_total_hours": baseline.total_latency_seconds / 3600.0,
                "flstore_total_hours": flstore.total_latency_seconds / 3600.0,
                "time_reduction_pct": percent_reduction(
                    baseline.total_latency_seconds, flstore.total_latency_seconds
                ),
                "cache_agg_total_cost": baseline.total_cost_dollars,
                "flstore_total_cost": flstore.total_cost_dollars,
                "cost_reduction_pct": percent_reduction(
                    baseline.total_cost_dollars, flstore.total_cost_dollars
                ),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Open-loop load sweep — offered load vs goodput through the event engine
# ---------------------------------------------------------------------------

#: Workload mix of the load sweep: one P1 (inference), one P2 (clustering),
#: one P4 (metadata) workload, so the offered stream touches the policy
#: classes with distinct data needs.  (Now the scenario layer's default mix;
#: kept as an alias for callers of the legacy entrypoints.)
LOAD_SWEEP_WORKLOADS: tuple[str, ...] = DEFAULT_SCENARIO_WORKLOADS


def calibrate_service_time(
    model_name: str,
    workloads: Sequence[str] = LOAD_SWEEP_WORKLOADS,
    num_rounds: int = 12,
    num_requests: int = 60,
    seed: int = 7,
) -> float:
    """Mean closed-loop service time of the sweep's request mix (seconds).

    Offered rates are expressed as *utilization* multiples of the service
    rate (``rho = rate * E[S]``), so sweeps stay meaningful if the analytic
    latency model is recalibrated.  Delegates to the scenario layer's
    memoized calibration.
    """
    return calibrate_mean_service_seconds(
        model_name, tuple(workloads), num_rounds, num_requests, seed
    )


def _legacy_load_row(report: RunReport) -> dict:
    """Project a scenario run onto the historical load-sweep row schema."""
    spec = report.spec
    row = {"process": spec.arrival.kind, "utilization": spec.arrival.utilization}
    row.update(report.load.row())
    return row


def run_load_sweep(
    model_name: str = "efficientnet_v2_small",
    workloads: Sequence[str] = LOAD_SWEEP_WORKLOADS,
    processes: Sequence[str] = ARRIVAL_KINDS,
    utilizations: Sequence[float] = (0.5, 1.0, 2.0),
    num_rounds: int = 12,
    num_requests: int = 120,
    seed: int = 7,
    slo_multiplier: float = 3.0,
    workers: int | None = None,
) -> dict:
    """Open-loop load sweep: arrival process x offered utilization.

    A thin grid over the scenario API — the plain-engine topology swept
    along ``arrival.kind`` x ``arrival.utilization`` — pinned byte-identical
    to its pre-spec output at fixed seeds (``tests/test_scenario_shims.py``).
    For every arrival process and utilization level, a fresh FLStore serves
    the same deterministic request mix through the discrete-event engine
    with arrivals drawn from the process at rate ``rho / E[S]``.  Each row
    reports offered load vs goodput, p50/p95/p99 sojourn time, queue depth,
    and admission accounting (shed rate, SLO-violation rate against an SLO
    of ``slo_multiplier * E[S]``).  Sweep cells are independent, so
    ``workers > 1`` fans them out to worker processes (same rows, input
    order).  Everything is a pure function of ``seed``.
    """
    mean_service = calibrate_service_time(
        model_name,
        workloads=workloads,
        num_rounds=num_rounds,
        num_requests=num_requests,
        seed=seed,
    )
    slo_seconds = slo_multiplier * mean_service if slo_multiplier else None
    base = ScenarioSpec(
        name="load-sweep",
        model=model_name,
        seed=seed,
        num_rounds=num_rounds,
        workload=WorkloadMixSpec(workloads=tuple(workloads), num_requests=num_requests),
        slo_multiplier=slo_multiplier,
        mean_service_seconds=mean_service,
    )
    rows = sweep(
        base,
        axes={"arrival.kind": tuple(processes), "arrival.utilization": tuple(utilizations)},
        workers=workers,
        row_fn=_legacy_load_row,
    )
    return {
        "rows": rows,
        "mean_service_seconds": mean_service,
        "slo_seconds": slo_seconds,
        "num_requests": num_requests,
        "workloads": list(workloads),
        "seed": seed,
    }


# ---------------------------------------------------------------------------
# Shard sweep — shard count x offered utilization through the routed tier
# ---------------------------------------------------------------------------


def _legacy_shard_row(report: RunReport) -> dict:
    """Project a scenario run onto the historical shard-sweep row schema."""
    spec = report.spec
    row = {
        "shards": spec.tier.shards,
        "process": spec.arrival.kind,
        "utilization": spec.arrival.utilization,
    }
    row.update(report.load.row())
    row["conserved"] = report.conserved
    row["max_shard_routed"] = report.max_shard_routed
    row["cached_bytes"] = report.cached_bytes
    row["live_keys"] = report.live_keys
    row["warm_functions"] = report.warm_functions
    return row


def run_shard_sweep(
    model_name: str = "efficientnet_v2_small",
    workloads: Sequence[str] = LOAD_SWEEP_WORKLOADS,
    process: str = "bursty",
    shard_counts: Sequence[int] = (1, 2, 4),
    utilizations: Sequence[float] = (0.5, 1.0, 2.0),
    num_rounds: int = 12,
    num_requests: int = 120,
    seed: int = 7,
    max_queue_depth: int = 8,
    shed_policy: str = "drop",
    router_kind: str = "consistent-hash",
    replication_factor: int = 1,
    replication_policy: str = "none",
    slo_multiplier: float = 3.0,
    workers: int | None = None,
) -> dict:
    """Shard sweep: shard count x offered utilization through the routed tier.

    Offered rates are ``rho / E[S]`` with ``E[S]`` the *single-shard* mean
    service time, so ``utilization`` reads as load relative to one shard's
    capacity: at ``rho = 2.0`` one shard is overloaded twice over while
    four shards (if the router balances the mix) sit at ~0.5 each.  Each
    cell serves the same deterministic request mix through a fresh
    ``ShardedEngineFLStore`` with per-shard admission control
    (``max_queue_depth`` waiting requests, ``shed_policy`` on overflow) and
    reports goodput, p50/p99 sojourn, shed/violation rates, and the
    conservation check ``served + degraded + shed == offered``.  A thin grid
    over the scenario API (axes ``tier.shards`` x ``arrival.utilization``),
    pinned byte-identical to its pre-spec output at fixed seeds.  Cells are
    independent; ``workers > 1`` fans them out to worker processes.
    """
    mean_service = calibrate_service_time(
        model_name,
        workloads=workloads,
        num_rounds=num_rounds,
        num_requests=num_requests,
        seed=seed,
    )
    slo_seconds = slo_multiplier * mean_service if slo_multiplier else None
    base = ScenarioSpec(
        name="shard-sweep",
        model=model_name,
        seed=seed,
        num_rounds=num_rounds,
        workload=WorkloadMixSpec(workloads=tuple(workloads), num_requests=num_requests),
        arrival=ArrivalSpec(kind=process),
        tier=TierSpec(
            router_kind=router_kind,
            admission=AdmissionSpec(max_queue_depth=max_queue_depth, shed_policy=shed_policy),
            replication=ReplicationSpec(factor=replication_factor, policy=replication_policy),
        ),
        slo_multiplier=slo_multiplier,
        mean_service_seconds=mean_service,
    )
    rows = sweep(
        base,
        axes={
            "tier.shards": tuple(int(num_shards) for num_shards in shard_counts),
            "arrival.utilization": tuple(utilizations),
        },
        workers=workers,
        row_fn=_legacy_shard_row,
    )
    return {
        "rows": rows,
        "mean_service_seconds": mean_service,
        "slo_seconds": slo_seconds,
        "process": process,
        "max_queue_depth": max_queue_depth,
        "shed_policy": shed_policy,
        "router": router_kind,
        "num_requests": num_requests,
        "workloads": list(workloads),
        "seed": seed,
    }


# ---------------------------------------------------------------------------
# Autoscale sweep — scaling policy x utilization on the resizable tier
# ---------------------------------------------------------------------------


def _legacy_autoscale_row(report: RunReport) -> dict:
    """Project a scenario run onto the historical autoscale-sweep row schema."""
    spec = report.spec
    row = {
        "autoscaler": spec.tier.autoscaler.policy,
        "process": spec.arrival.kind,
        "utilization": spec.arrival.utilization,
    }
    row.update(report.load.row())
    row["conserved"] = report.conserved
    row.update({k: v for k, v in report.autoscale.row().items() if k != "autoscaler"})
    return row


#: The policies the legacy autoscale sweep enumerates by default — pinned to
#: the pre-"slo" tuple so its golden output never moves; pass
#: ``policies=AUTOSCALER_KINDS`` (or the CLI's ``--policies``) to include
#: newer policies.
LEGACY_AUTOSCALE_POLICIES: tuple[str, ...] = ("none", "reactive", "predictive")

#: The headline columns of an autoscale-sweep row, shared by the CLI table
#: and the benchmark report so the two never drift.
AUTOSCALE_REPORT_COLUMNS: tuple[str, ...] = (
    "autoscaler",
    "utilization",
    "p99_sojourn_seconds",
    "shed_rate",
    "violation_rate",
    "capacity_unit_seconds",
    "warm_capacity_cost_dollars",
    "scale_events",
    "shard_adds",
    "shard_removes",
    "conserved",
)


def run_autoscale_sweep(
    model_name: str = "efficientnet_v2_small",
    workloads: Sequence[str] = LOAD_SWEEP_WORKLOADS,
    process: str = "diurnal",
    policies: Sequence[str] = LEGACY_AUTOSCALE_POLICIES,
    utilizations: Sequence[float] = (2.5,),
    num_rounds: int = 12,
    num_requests: int = 160,
    seed: int = 7,
    max_queue_depth: int = 6,
    shed_policy: str = "drop",
    start_shards: int = 1,
    control_interval: float = 5.0,
    slo_multiplier: float = 3.0,
    workers: int | None = None,
) -> dict:
    """Autoscale sweep: scaling policy x offered utilization on one process.

    Every cell serves the same deterministic request mix with arrivals drawn
    from ``process`` (the diurnal cycle by default — the regime autoscaling
    exists for) at rate ``rho / E[S]``, on a resizable
    ``ShardedEngineFLStore`` driven by one autoscaling policy
    (:data:`repro.engine.autoscale.AUTOSCALER_KINDS`).  Rows report the
    latency/shedding quality of each policy **and** what it paid for it:
    p99 sojourn, shed rate, SLO-violation rate, the warm-capacity integral
    (unit-seconds and dollars), and the scale-event counts.  Conservation
    (``served + requeued + degraded + shed == offered``, with requeued
    counted inside ``served``) is asserted inside every cell — a resize must
    never lose a request.  A thin grid over the scenario API (axes
    ``arrival.utilization`` x ``tier.autoscaler.policy``), pinned
    byte-identical to its pre-spec output at fixed seeds.  Cells are
    independent; ``workers > 1`` fans them out to worker processes.
    """
    unknown = sorted(set(policies) - set(AUTOSCALER_KINDS))
    if unknown:
        # Fail before the calibration run and the worker fan-out, not deep
        # inside a cell.
        raise ValueError(f"unknown autoscaler policies {unknown}; expected {AUTOSCALER_KINDS}")
    mean_service = calibrate_service_time(
        model_name,
        workloads=workloads,
        num_rounds=num_rounds,
        num_requests=num_requests,
        seed=seed,
    )
    slo_seconds = slo_multiplier * mean_service if slo_multiplier else None
    base = ScenarioSpec(
        name="autoscale-sweep",
        model=model_name,
        seed=seed,
        num_rounds=num_rounds,
        workload=WorkloadMixSpec(workloads=tuple(workloads), num_requests=num_requests),
        arrival=ArrivalSpec(kind=process),
        tier=TierSpec(
            shards=start_shards,
            router_kind="consistent-hash",
            admission=AdmissionSpec(max_queue_depth=max_queue_depth, shed_policy=shed_policy),
            autoscaler=AutoscalerSpec(
                enabled=True, control_interval_seconds=control_interval
            ),
        ),
        slo_multiplier=slo_multiplier,
        mean_service_seconds=mean_service,
    )
    rows = sweep(
        base,
        axes={
            "arrival.utilization": tuple(utilizations),
            "tier.autoscaler.policy": tuple(policies),
        },
        workers=workers,
        row_fn=_legacy_autoscale_row,
    )
    return {
        "rows": rows,
        "mean_service_seconds": mean_service,
        "slo_seconds": slo_seconds,
        "process": process,
        "max_queue_depth": max_queue_depth,
        "shed_policy": shed_policy,
        "start_shards": start_shards,
        "control_interval_seconds": control_interval,
        "num_requests": num_requests,
        "workloads": list(workloads),
        "seed": seed,
    }


def compare_autoscale_policies(rows: Sequence[Mapping]) -> list[dict]:
    """Predictive-vs-reactive deltas per utilization level.

    The comparison the sweep exists to make: at each offered utilization,
    how much p99 sojourn and shed rate does forecast-ahead scaling buy, and
    at what relative warm-capacity cost.
    """
    comparisons = []
    by_point: dict[float, dict[str, Mapping]] = {}
    for row in rows:
        by_point.setdefault(row["utilization"], {})[row["autoscaler"]] = row
    for rho in sorted(by_point):
        cell = by_point[rho]
        reactive, predictive = cell.get("reactive"), cell.get("predictive")
        if reactive is None or predictive is None:
            continue
        reactive_cost = reactive["capacity_unit_seconds"]
        comparisons.append(
            {
                "utilization": rho,
                "p99_reactive": reactive["p99_sojourn_seconds"],
                "p99_predictive": predictive["p99_sojourn_seconds"],
                "p99_reduction_pct": percent_reduction(
                    reactive["p99_sojourn_seconds"], predictive["p99_sojourn_seconds"]
                ),
                "shed_rate_reactive": reactive["shed_rate"],
                "shed_rate_predictive": predictive["shed_rate"],
                "capacity_cost_ratio": (
                    predictive["capacity_unit_seconds"] / reactive_cost
                    if reactive_cost
                    else float("inf")
                ),
            }
        )
    return comparisons


# ---------------------------------------------------------------------------
# Fault-recovery sweep — fault kind x remediation controller on/off
# ---------------------------------------------------------------------------


#: Canonical fault cells of the recovery sweep: one clause per fault kind,
#: each paired with the base router whose remediation path it exercises.
#: Crashes hit a JSQ tier, where routing follows live queue depth and
#: re-added capacity genuinely absorbs load (under consistent hashing the
#: hot keys rarely remap, so an extra shard is dead weight).  The storm and
#: gray faults hit a consistent-hash tier, where the capacity-neutral
#: reroute-to-JSQ actuation is live.
FAULT_RECOVERY_CELLS: tuple[dict, ...] = (
    {
        "fault": "shard-crash",
        "router": "jsq",
        "clause": {"kind": "shard-crash", "onset_seconds": 30.0, "magnitude": 1.0},
    },
    {
        "fault": "reclamation-storm",
        "router": "consistent-hash",
        "clause": {
            "kind": "reclamation-storm",
            "onset_seconds": 30.0,
            "duration_seconds": 90.0,
            "magnitude": 2.0,
            "interval_seconds": 5.0,
        },
    },
    {
        "fault": "slow-shard",
        "router": "consistent-hash",
        "clause": {
            "kind": "slow-shard",
            "onset_seconds": 30.0,
            "duration_seconds": 90.0,
            "magnitude": 3.0,
        },
    },
    {
        "fault": "network-spike",
        "router": "consistent-hash",
        "clause": {
            "kind": "network-spike",
            "onset_seconds": 30.0,
            "duration_seconds": 90.0,
            "magnitude": 4.0,
        },
    },
)


def _fault_recovery_row(report: RunReport) -> dict:
    """Project a faulted scenario run onto the recovery-sweep row schema.

    Controller-off cells carry no remediation summary, so the remediation
    counters default to zero here — every cell exposes the same columns.
    """
    spec = report.spec
    row = {
        "fault": spec.faults[0].kind if spec.faults else "none",
        "router": spec.tier.router_kind,
        "controller": spec.remediation.enabled,
        "remediation_ticks": 0,
        "anomalies_detected": 0,
        "actions_taken": 0,
        "shadow_accepts": 0,
        "shadow_rejects": 0,
        "shadow_runs": 0,
    }
    row.update(report.row())
    return row


#: The headline columns of a fault-recovery row, shared by the CLI table
#: and the benchmark report so the two never drift.
FAULT_RECOVERY_COLUMNS: tuple[str, ...] = (
    "fault",
    "controller",
    "time_to_recovery_seconds",
    "goodput_dip_area",
    "recovered",
    "p99_sojourn_seconds",
    "goodput_rps",
    "shed_rate",
    "actions_taken",
    "shadow_accepts",
    "shadow_rejects",
    "conserved",
)


def run_fault_recovery_sweep(
    model_name: str = "efficientnet_v2_small",
    workloads: Sequence[str] = LOAD_SWEEP_WORKLOADS,
    kinds: Sequence[str] | None = None,
    num_rounds: int = 8,
    num_requests: int = 96,
    seed: int = 7,
    utilization: float = 0.7,
    shards: int = 3,
    max_queue_depth: int = 8,
    shed_policy: str = "drop",
    control_interval: float = 5.0,
    shadow_requests: int = 36,
    slo_multiplier: float = 3.0,
    workers: int | None = None,
) -> dict:
    """Fault-recovery sweep: fault kind x remediation controller on/off.

    Every cell injects one canonical fault clause
    (:data:`FAULT_RECOVERY_CELLS`) into a three-shard tier serving the same
    deterministic Poisson trace at ``utilization`` x the service rate, and
    runs it twice — once with the closed-loop remediation controller riding
    the control ticks, once without.  Rows report the recovery story of each
    cell: time-to-recovery (cumulative catch-up clock against the offered
    rate), goodput dip area (windowed deficit integral), whether the tier
    caught back up inside the horizon, tail latency, and the controller's
    accounting (anomalies detected, shadow accepts/rejects, actions taken).
    Conservation (``served + requeued + degraded + shed == offered``, with
    requeued counted inside ``served``) is asserted inside every faulted
    cell.  Cells are independent; ``workers > 1`` fans them out to worker
    processes.
    """
    known = tuple(cell["fault"] for cell in FAULT_RECOVERY_CELLS)
    if kinds is None:
        kinds = known
    unknown = sorted(set(kinds) - set(known))
    if unknown:
        # Fail before the calibration run and the worker fan-out, not deep
        # inside a cell.
        raise ValueError(f"unknown fault kinds {unknown}; expected {known}")
    mean_service = calibrate_service_time(
        model_name,
        workloads=workloads,
        num_rounds=num_rounds,
        num_requests=num_requests,
        seed=seed,
    )
    slo_seconds = slo_multiplier * mean_service if slo_multiplier else None
    rows: list[dict] = []
    for cell in FAULT_RECOVERY_CELLS:
        if cell["fault"] not in kinds:
            continue
        base = ScenarioSpec(
            name=f"fault-recovery-{cell['fault']}",
            model=model_name,
            seed=seed,
            num_rounds=num_rounds,
            workload=WorkloadMixSpec(workloads=tuple(workloads), num_requests=num_requests),
            arrival=ArrivalSpec(kind="poisson", utilization=utilization),
            tier=TierSpec(
                shards=shards,
                router_kind=cell["router"],
                admission=AdmissionSpec(
                    max_queue_depth=max_queue_depth, shed_policy=shed_policy
                ),
            ),
            slo_multiplier=slo_multiplier,
            mean_service_seconds=mean_service,
            faults=(FaultSpec(**cell["clause"]),),
            remediation=RemediationSpec(
                enabled=False,
                control_interval_seconds=control_interval,
                shadow_requests=shadow_requests,
            ),
        )
        rows.extend(
            sweep(
                base,
                axes={"remediation.enabled": (True, False)},
                workers=workers,
                row_fn=_fault_recovery_row,
            )
        )
    return {
        "rows": rows,
        "mean_service_seconds": mean_service,
        "slo_seconds": slo_seconds,
        "utilization": utilization,
        "shards": shards,
        "max_queue_depth": max_queue_depth,
        "shed_policy": shed_policy,
        "control_interval_seconds": control_interval,
        "shadow_requests": shadow_requests,
        "num_requests": num_requests,
        "workloads": list(workloads),
        "seed": seed,
    }


def compare_fault_recovery(rows: Sequence[Mapping]) -> list[dict]:
    """Controller-on vs controller-off deltas per fault kind.

    The comparison the sweep exists to make: for each injected fault, how
    much time-to-recovery and goodput-dip area does closed-loop remediation
    buy, and how many shadow-verified actions it took to buy it.
    """
    comparisons = []
    by_fault: dict[str, dict[bool, Mapping]] = {}
    for row in rows:
        by_fault.setdefault(row["fault"], {})[bool(row["controller"])] = row
    for fault in sorted(by_fault):
        cell = by_fault[fault]
        on, off = cell.get(True), cell.get(False)
        if on is None or off is None:
            continue
        comparisons.append(
            {
                "fault": fault,
                "ttr_controller": on["time_to_recovery_seconds"],
                "ttr_baseline": off["time_to_recovery_seconds"],
                "ttr_reduction_pct": percent_reduction(
                    off["time_to_recovery_seconds"], on["time_to_recovery_seconds"]
                ),
                "dip_controller": on["goodput_dip_area"],
                "dip_baseline": off["goodput_dip_area"],
                "dip_reduction_pct": percent_reduction(
                    off["goodput_dip_area"], on["goodput_dip_area"]
                ),
                "actions_taken": on["actions_taken"],
                "shadow_accepts": on["shadow_accepts"],
                "shadow_rejects": on["shadow_rejects"],
            }
        )
    return comparisons


# ---------------------------------------------------------------------------
# Tenant sweep — queue discipline x tenant weight on a shared warm slot
# ---------------------------------------------------------------------------


#: The queue disciplines the tenant sweep compares by default: FIFO (no
#: isolation — the burst owns the queue), WFQ, and DRR (weighted fairness).
TENANT_SWEEP_DISCIPLINES: tuple[str, ...] = ("fifo", "wfq", "drr")

#: The headline columns of a tenant-sweep row, shared by the CLI table and
#: the benchmark report so the two never drift.  The per-tenant triples are
#: named after the noisy-neighbor scenario's tenants.
TENANT_REPORT_COLUMNS: tuple[str, ...] = (
    "discipline",
    "steady_weight",
    "bursty_weight",
    "served",
    "shed",
    "p99_sojourn_seconds",
    "steady_p99",
    "steady_share",
    "steady_violations",
    "bursty_p99",
    "bursty_share",
    "bursty_violations",
    "conserved",
)


def _tenant_sweep_row(report: RunReport) -> dict:
    """Project a scenario run onto the tenant-sweep row schema."""
    spec = report.spec
    row: dict = {"discipline": spec.tier.queue_discipline}
    for tenant in spec.tenants:
        row[f"{tenant.name}_weight"] = tenant.weight
    base = report.row()
    for key in ("served", "shed", "degraded", "p99_sojourn_seconds", "conserved"):
        row[key] = base[key]
    for tenant_row in report.tenants or []:
        name = tenant_row["tenant"]
        row[f"{name}_p99"] = tenant_row["p99_sojourn_seconds"]
        row[f"{name}_share"] = tenant_row["service_share"]
        row[f"{name}_violations"] = tenant_row["violation_rate"]
    return row


def run_tenant_sweep(
    disciplines: Sequence[str] = TENANT_SWEEP_DISCIPLINES,
    steady_weights: Sequence[float] = (1.0, 2.0, 4.0),
    bursty_utilization: float | None = None,
    num_rounds: int | None = None,
    num_requests: int | None = None,
    seed: int = 7,
    workers: int | None = None,
) -> dict:
    """Tenant sweep: queue discipline x steady-tenant weight on one warm slot.

    Every cell serves the registered ``noisy-neighbor`` scenario — a
    well-behaved Poisson tenant sharing one warm slot with a bursty
    neighbour offering twice its arrival rate — under one queue discipline
    and one weight for the steady tenant.  Rows report per-tenant p99 sojourn, service share,
    and SLO-violation rate beside the tier-level aggregates: under FIFO the
    burst owns the queue and the steady tenant's tail inflates with it,
    while WFQ and DRR bound the steady tenant's p99 in proportion to its
    weight (the weight axis is a no-op for FIFO — its rows stay flat).
    Per-tenant conservation (``served + requeued + degraded + shed ==
    offered``) is asserted inside every cell.  Cells are independent;
    ``workers > 1`` fans them out to worker processes.
    """
    unknown = sorted(set(disciplines) - set(QUEUE_DISCIPLINES))
    if unknown:
        # Fail before the calibration run and the worker fan-out, not deep
        # inside a cell.
        raise ValueError(f"unknown queue disciplines {unknown}; expected {QUEUE_DISCIPLINES}")
    overrides: dict = {"seed": seed}
    if num_rounds is not None:
        overrides["num_rounds"] = num_rounds
    if bursty_utilization is not None:
        overrides["tenants.bursty.utilization"] = bursty_utilization
    base = get_scenario("noisy-neighbor")
    if num_requests is not None:
        for tenant in base.tenants:
            overrides[f"tenants.{tenant.name}.num_requests"] = num_requests
    base = apply_overrides(base, overrides)
    # The weight axis never moves the calibrated service time; pin it once
    # so the grid shares one calibration and one per-tenant SLO.
    mean_service = calibrate(base)
    base = apply_overrides(base, {"mean_service_seconds": mean_service})
    rows = sweep(
        base,
        axes={
            "tier.queue_discipline": tuple(disciplines),
            "tenants.steady.weight": tuple(float(w) for w in steady_weights),
        },
        workers=workers,
        row_fn=_tenant_sweep_row,
    )
    return {
        "rows": rows,
        "mean_service_seconds": mean_service,
        "tenant_slo_seconds": {
            tenant.name: (
                tenant.slo_multiplier * mean_service if tenant.slo_multiplier else None
            )
            for tenant in base.tenants
        },
        "disciplines": list(disciplines),
        "steady_weights": [float(w) for w in steady_weights],
        "seed": base.seed,
    }


def compare_tenant_disciplines(rows: Sequence[Mapping]) -> list[dict]:
    """WFQ/DRR-vs-FIFO deltas on the steady tenant, per weight level.

    The comparison the sweep exists to make: at each steady-tenant weight,
    how much of the steady tenant's p99 and violation rate does weighted
    fairness claw back from the noisy neighbour, relative to FIFO.
    """
    comparisons = []
    by_weight: dict[float, dict[str, Mapping]] = {}
    for row in rows:
        by_weight.setdefault(row["steady_weight"], {})[row["discipline"]] = row
    for weight in sorted(by_weight):
        cell = by_weight[weight]
        fifo = cell.get("fifo")
        if fifo is None:
            continue
        for discipline in ("wfq", "drr"):
            fair = cell.get(discipline)
            if fair is None:
                continue
            comparisons.append(
                {
                    "steady_weight": weight,
                    "discipline": discipline,
                    "steady_p99_fifo": fifo["steady_p99"],
                    "steady_p99_fair": fair["steady_p99"],
                    "steady_p99_reduction_pct": percent_reduction(
                        fifo["steady_p99"], fair["steady_p99"]
                    ),
                    "steady_violations_fifo": fifo["steady_violations"],
                    "steady_violations_fair": fair["steady_violations"],
                    "steady_share_fair": fair["steady_share"],
                }
            )
    return comparisons


# ---------------------------------------------------------------------------
# Figure 18 — FLStore vs FLStore-Static (policy adapts to a workload switch)
# ---------------------------------------------------------------------------

def run_figure18_static_ablation(
    model_name: str = "efficientnet_v2_small",
    num_rounds: int = DEFAULT_NUM_ROUNDS,
    warmup_requests: int = 10,
    measured_requests: int = 15,
    seed: int = 7,
) -> dict:
    """Figure 18 / Appendix C: dynamic policy selection vs a static (P1-only) policy.

    Both systems first serve an inference phase (P1 data needs); the workload
    then switches to malicious filtering (P2 data needs).  FLStore switches
    its caching policy with the workload, FLStore-Static keeps caching only
    the aggregated model.
    """
    results = {}
    for variant, mode in (("FLStore", "tailored"), ("FLStore-Static", "static")):
        config = _experiment_config(model_name, seed=seed)
        setup = prepare_setup(config, num_rounds=num_rounds, systems=("flstore",), policy_mode=mode)
        generator = setup.generator
        warmup = generator.workload_trace("inference", warmup_requests)
        run_trace(setup.flstore, warmup, system_name=variant, model_name=model_name)
        measured = generator.workload_trace("malicious_filtering", measured_requests)
        records = run_trace(setup.flstore, measured, system_name=variant, model_name=model_name)
        summary = summarize_records(records)
        results[variant] = {
            "variant": variant,
            "mean_latency_seconds": summary.mean_latency_seconds,
            "mean_cost_dollars": summary.mean_cost_dollars,
            "hit_rate": summary.hit_rate,
        }
    flstore = results["FLStore"]
    static = results["FLStore-Static"]
    return {
        "rows": list(results.values()),
        "latency_reduction_pct": percent_reduction(
            static["mean_latency_seconds"], flstore["mean_latency_seconds"]
        ),
        "cost_ratio": (
            static["mean_cost_dollars"] / flstore["mean_cost_dollars"]
            if flstore["mean_cost_dollars"]
            else float("inf")
        ),
    }
