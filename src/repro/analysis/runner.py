"""Shared experiment plumbing: building systems, ingesting rounds, running traces.

Every figure/table experiment follows the same skeleton:

1. simulate an FL job to obtain the metadata stream (:class:`FLJobSimulator`),
2. build the systems under comparison (FLStore variants and/or the two
   baselines), ingest the same rounds into each,
3. generate a non-training request trace from the job's round catalog,
4. serve the trace on every system and collect :class:`RequestRecord`s.

:func:`prepare_setup` performs steps 1-2 and :func:`run_trace` performs step 4
so the per-figure functions in :mod:`repro.analysis.experiments` stay small.

Steps 1-2 are deterministic in their parameters, so :func:`prepare_setup`
serves them from :mod:`repro.analysis.setup_cache`: simulated rounds are
memoized per ``(config, num_rounds)`` and fully ingested systems are handed
out as pristine snapshots, which makes re-running related figures (and the
benchmark suite) cheap.  :func:`map_tasks` runs independent experiment tasks
in parallel worker processes when enabled (``repro.cli run --parallel``).
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence, TypeVar

from repro.analysis import setup_cache
from repro.baselines.cache_agg import CacheAggregator
from repro.baselines.objstore_agg import ObjStoreAggregator
from repro.config import SimulationConfig
from repro.core.flstore import FLStore, build_default_flstore
from repro.fl.rounds import RoundRecord
from repro.fl.trainer import FLJobSimulator
from repro.serverless.faults import ZipfianFaultInjector
from repro.simulation.metrics import MetricsCollector, RequestRecord
from repro.traces.generator import RequestTraceGenerator
from repro.workloads.base import WorkloadRequest

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Default worker count for :func:`map_tasks`; 1 means run serially.
_max_workers = 1


def set_max_workers(workers: int) -> None:
    """Set the default parallelism of :func:`map_tasks` (1 disables it)."""
    global _max_workers
    _max_workers = max(1, int(workers))


def get_max_workers() -> int:
    """Current default worker count for :func:`map_tasks`."""
    return _max_workers


def map_tasks(
    fn: Callable[[_T], _R],
    items: Sequence[_T],
    workers: int | None = None,
) -> list[_R]:
    """Run ``fn`` over ``items``, in parallel processes when workers > 1.

    Results are returned in input order, so a parallel run produces the same
    rows as a serial one.  ``fn`` must be a module-level callable and the
    items picklable (experiment tasks take plain config tuples).  Each task
    is independent — experiments that share mutable state across items must
    not be parallelised.
    """
    effective = _max_workers if workers is None else max(1, int(workers))
    if effective <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with concurrent.futures.ProcessPoolExecutor(max_workers=min(effective, len(items))) as pool:
        return list(pool.map(fn, items))

#: Systems that :func:`prepare_setup` knows how to build.
KNOWN_SYSTEMS: tuple[str, ...] = ("flstore", "objstore-agg", "cache-agg")


@dataclass
class ExperimentSetup:
    """Everything a figure experiment needs: job, rounds, systems, trace generator."""

    config: SimulationConfig
    simulator: FLJobSimulator
    rounds: list[RoundRecord]
    systems: dict[str, object] = field(default_factory=dict)
    generator: RequestTraceGenerator | None = None

    @property
    def flstore(self) -> FLStore:
        """The FLStore instance (raises if not built)."""
        return self.systems["flstore"]

    @property
    def objstore_agg(self) -> ObjStoreAggregator:
        """The ObjStore-Agg baseline (raises if not built)."""
        return self.systems["objstore-agg"]

    @property
    def cache_agg(self) -> CacheAggregator:
        """The Cache-Agg baseline (raises if not built)."""
        return self.systems["cache-agg"]


def prepare_setup(
    config: SimulationConfig | None = None,
    num_rounds: int = 30,
    systems: Sequence[str] = KNOWN_SYSTEMS,
    policy_mode: str = "tailored",
    replication_factor: int | None = None,
    fault_injector: ZipfianFaultInjector | None = None,
) -> ExperimentSetup:
    """Simulate an FL job, build the requested systems, and ingest the rounds.

    Simulation and ingestion are memoized through
    :mod:`repro.analysis.setup_cache`: the simulated rounds are shared across
    setups with the same config, and the built-and-ingested systems are
    snapshotted so later calls with the same parameters skip the whole
    build-and-ingest phase.  A ``fault_injector`` carries mutable sampling
    state, so setups built around one bypass the snapshot cache.
    """
    config = config or SimulationConfig()
    simulator, rounds = setup_cache.simulate_job(config, num_rounds)

    built: dict[str, object] | None = None
    cache_key = None
    if fault_injector is None:
        cache_key = setup_cache.snapshot_key(
            config, num_rounds, systems, policy_mode, replication_factor
        )
        built = setup_cache.get_system_snapshots(cache_key)

    if built is None:
        built = {}
        for name in systems:
            if name == "flstore":
                built[name] = build_default_flstore(
                    config,
                    policy_mode=policy_mode,
                    replication_factor=replication_factor,
                    fault_injector=fault_injector,
                )
            elif name == "objstore-agg":
                built[name] = ObjStoreAggregator(config)
            elif name == "cache-agg":
                built[name] = CacheAggregator(config)
            else:
                raise ValueError(f"unknown system {name!r}; expected one of {KNOWN_SYSTEMS}")

        for record in rounds:
            for system in built.values():
                system.ingest_round(record)
        if cache_key is not None and setup_cache.enabled():
            # Serialise the freshly ingested systems into the pristine cache
            # master; the original graph stays with this caller (the master
            # is immutable bytes, so serving on the original is safe).
            setup_cache.put_system_snapshots(cache_key, built)

    catalog = next(iter(built.values())).catalog if built else None
    generator = RequestTraceGenerator(catalog, seed=config.seed) if catalog is not None else None
    return ExperimentSetup(
        config=config, simulator=simulator, rounds=rounds, systems=built, generator=generator
    )


def run_trace(
    system: object,
    requests: Iterable[WorkloadRequest],
    system_name: str | None = None,
    model_name: str | None = None,
    collector: MetricsCollector | None = None,
) -> list[RequestRecord]:
    """Serve ``requests`` on ``system`` and return one record per request."""
    name = system_name or getattr(system, "system_name", type(system).__name__)
    model = model_name or getattr(getattr(system, "model_spec", None), "name", "unknown")
    records: list[RequestRecord] = []
    for request in requests:
        result = system.serve(request)
        record = result.to_record(
            system=name, model_name=model, round_id=request.round_id, client_id=request.client_id
        )
        records.append(record)
        if collector is not None:
            collector.record(record)
    return records
