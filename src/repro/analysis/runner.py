"""Shared experiment plumbing: building systems, ingesting rounds, running traces.

Every figure/table experiment follows the same skeleton:

1. simulate an FL job to obtain the metadata stream (:class:`FLJobSimulator`),
2. build the systems under comparison (FLStore variants and/or the two
   baselines), ingest the same rounds into each,
3. generate a non-training request trace from the job's round catalog,
4. serve the trace on every system and collect :class:`RequestRecord`s.

:func:`prepare_setup` performs steps 1-2 and :func:`run_trace` performs step 4
so the per-figure functions in :mod:`repro.analysis.experiments` stay small.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.baselines.cache_agg import CacheAggregator
from repro.baselines.objstore_agg import ObjStoreAggregator
from repro.config import SimulationConfig
from repro.core.flstore import FLStore, build_default_flstore
from repro.fl.rounds import RoundRecord
from repro.fl.trainer import FLJobSimulator
from repro.serverless.faults import ZipfianFaultInjector
from repro.simulation.metrics import MetricsCollector, RequestRecord
from repro.traces.generator import RequestTraceGenerator
from repro.workloads.base import WorkloadRequest

#: Systems that :func:`prepare_setup` knows how to build.
KNOWN_SYSTEMS: tuple[str, ...] = ("flstore", "objstore-agg", "cache-agg")


@dataclass
class ExperimentSetup:
    """Everything a figure experiment needs: job, rounds, systems, trace generator."""

    config: SimulationConfig
    simulator: FLJobSimulator
    rounds: list[RoundRecord]
    systems: dict[str, object] = field(default_factory=dict)
    generator: RequestTraceGenerator | None = None

    @property
    def flstore(self) -> FLStore:
        """The FLStore instance (raises if not built)."""
        return self.systems["flstore"]

    @property
    def objstore_agg(self) -> ObjStoreAggregator:
        """The ObjStore-Agg baseline (raises if not built)."""
        return self.systems["objstore-agg"]

    @property
    def cache_agg(self) -> CacheAggregator:
        """The Cache-Agg baseline (raises if not built)."""
        return self.systems["cache-agg"]


def prepare_setup(
    config: SimulationConfig | None = None,
    num_rounds: int = 30,
    systems: Sequence[str] = KNOWN_SYSTEMS,
    policy_mode: str = "tailored",
    replication_factor: int | None = None,
    fault_injector: ZipfianFaultInjector | None = None,
) -> ExperimentSetup:
    """Simulate an FL job, build the requested systems, and ingest the rounds."""
    config = config or SimulationConfig()
    simulator = FLJobSimulator(config)
    rounds = simulator.run_rounds(num_rounds)

    built: dict[str, object] = {}
    for name in systems:
        if name == "flstore":
            built[name] = build_default_flstore(
                config,
                policy_mode=policy_mode,
                replication_factor=replication_factor,
                fault_injector=fault_injector,
            )
        elif name == "objstore-agg":
            built[name] = ObjStoreAggregator(config)
        elif name == "cache-agg":
            built[name] = CacheAggregator(config)
        else:
            raise ValueError(f"unknown system {name!r}; expected one of {KNOWN_SYSTEMS}")

    for record in rounds:
        for system in built.values():
            system.ingest_round(record)

    catalog = next(iter(built.values())).catalog if built else None
    generator = RequestTraceGenerator(catalog, seed=config.seed) if catalog is not None else None
    return ExperimentSetup(
        config=config, simulator=simulator, rounds=rounds, systems=built, generator=generator
    )


def run_trace(
    system: object,
    requests: Iterable[WorkloadRequest],
    system_name: str | None = None,
    model_name: str | None = None,
    collector: MetricsCollector | None = None,
) -> list[RequestRecord]:
    """Serve ``requests`` on ``system`` and return one record per request."""
    name = system_name or getattr(system, "system_name", type(system).__name__)
    model = model_name or getattr(getattr(system, "model_spec", None), "name", "unknown")
    records: list[RequestRecord] = []
    for request in requests:
        result = system.serve(request)
        record = result.to_record(
            system=name, model_name=model, round_id=request.round_id, client_id=request.client_id
        )
        records.append(record)
        if collector is not None:
            collector.record(record)
    return records
