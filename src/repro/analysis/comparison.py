"""Small helpers for comparing baseline and FLStore metrics."""

from __future__ import annotations


def percent_reduction(baseline: float, improved: float) -> float:
    """Percentage reduction of ``improved`` relative to ``baseline``.

    Returns 0.0 when the baseline is zero (no meaningful reduction exists).
    """
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline


def speedup(baseline: float, improved: float) -> float:
    """Ratio ``baseline / improved`` (``inf`` when ``improved`` is zero)."""
    if improved == 0:
        return float("inf")
    return baseline / improved


def absolute_reduction(baseline: float, improved: float) -> float:
    """Absolute difference ``baseline - improved``."""
    return baseline - improved
