"""Experiment harness regenerating the paper's tables and figures."""

from repro.analysis.comparison import percent_reduction, speedup
from repro.analysis.runner import ExperimentSetup, prepare_setup, run_trace
from repro.analysis.tables import format_table

__all__ = [
    "ExperimentSetup",
    "format_table",
    "percent_reduction",
    "prepare_setup",
    "run_trace",
    "speedup",
]
