"""Plain-text table formatting for experiment outputs.

Every experiment returns rows as dictionaries; :func:`format_table` renders
them as an aligned text table so benchmark runs and examples can print the
same rows/series the paper reports without any plotting dependency.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != 0 and (abs(value) < 0.001 or abs(value) >= 100000):
            return f"{value:.3e}"
        return f"{value:,.3f}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, Any]], columns: Sequence[str] | None = None, title: str | None = None) -> str:
    """Render ``rows`` as an aligned text table.

    Parameters
    ----------
    rows:
        A sequence of dictionaries sharing (a superset of) the same keys.
    columns:
        Column order; defaults to the keys of the first row.
    title:
        Optional title printed above the table.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [[_format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def union_columns(rows: Sequence[Mapping[str, Any]]) -> list[str]:
    """The union of all row keys, in first-seen order (CSV/Markdown column order)."""
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


def format_markdown_table(
    rows: Sequence[Mapping[str, Any]], columns: Sequence[str] | None = None
) -> str:
    """Render ``rows`` as a GitHub-flavored Markdown table.

    The report generator's rendering: columns default to the union of row
    keys in first-seen order (report rows are heterogeneous across
    experiments), missing cells render empty, and values share
    :func:`format_table`'s number formatting so the Markdown and plain-text
    views of the same rows never disagree.
    """
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns is not None else union_columns(rows)
    lines = [
        "| " + " | ".join(str(col) for col in columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in rows:
        cells = [_format_value(row[col]) if col in row else "" for col in columns]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def format_mapping(mapping: Mapping[str, Any], title: str | None = None) -> str:
    """Render a flat ``name -> value`` mapping as two-column rows."""
    rows = [{"name": key, "value": value} for key, value in mapping.items()]
    return format_table(rows, columns=["name", "value"], title=title)
