"""Export experiment results to JSON and CSV files.

The experiment functions return plain rows (lists of dictionaries); these
helpers persist them so benchmark runs can be archived and compared across
machines or parameter sweeps.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Mapping, Sequence


def _normalize(value: Any) -> Any:
    """Make a value JSON-serialisable (tuples -> lists, numpy scalars -> python)."""
    if hasattr(value, "item") and callable(value.item):  # numpy scalar
        return value.item()
    if isinstance(value, Mapping):
        return {str(k): _normalize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_normalize(v) for v in value]
    return value


def export_json(result: Any, path: str | Path) -> Path:
    """Write ``result`` (rows or a result mapping) to ``path`` as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(_normalize(result), handle, indent=2, sort_keys=True, default=str)
    return path


def export_csv(rows: Sequence[Mapping[str, Any]], path: str | Path) -> Path:
    """Write a list of row dictionaries to ``path`` as CSV.

    Columns are the union of all row keys, in first-seen order.  Nested
    values (lists/dicts) are JSON-encoded in place.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            flat = {
                key: json.dumps(_normalize(value)) if isinstance(value, (list, dict, tuple)) else value
                for key, value in row.items()
            }
            writer.writerow(flat)
    return path


def load_json(path: str | Path) -> Any:
    """Load a result previously written by :func:`export_json`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)
