"""Open-loop arrival processes for the discrete-event engine.

The closed-loop traces of :mod:`repro.traces.generator` say *what* requests
look like; the processes here say *when* they arrive.  Three classic shapes
cover the load regimes an FL metadata store sees in production:

* :class:`PoissonArrivals` — memoryless arrivals at a constant rate (the
  M/G/c baseline),
* :class:`BurstyArrivals` — a two-state ON/OFF modulated Poisson process
  (interrupted Poisson): quiet background traffic punctuated by bursts,
* :class:`DiurnalArrivals` — a nonhomogeneous Poisson process whose rate
  follows a sinusoidal day/night cycle, sampled by Lewis-Shedler thinning.

Every process is a pure function of ``(seed, parameters)`` via
:func:`repro.common.rng.derive_rng`, so a load sweep is reproducible end to
end: same seed, same arrival instants, same queueing behaviour.

Every process exposes two equivalent APIs: :meth:`ArrivalProcess.times`
(a list of Python floats, the original interface) and
:meth:`ArrivalProcess.times_array` (one float64 ndarray, the bulk interface
consumed by :meth:`repro.engine.kernel.EventLoop.schedule_many` and the
vectorized fast path).  Both produce byte-identical instants: the
vectorized generators consume the underlying ``standard_exponential``
stream in exactly the order the original scalar loops did, which
``tests/test_arrivals_vectorized.py`` pins against reference copies of the
pre-vectorization loops at seed 7.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.common.rng import derive_rng

#: Block size for pre-drawn `standard_exponential` values and output chunks.
#: Large enough to amortize numpy call overhead, small enough that a
#: million-request generation never holds more than ~0.5 MB of scratch.
_CHUNK = 65536


class ArrivalProcess(abc.ABC):
    """Base class: a deterministic generator of non-decreasing arrival times."""

    #: Machine-friendly identifier (used by the CLI and report labels).
    name: str = "arrivals"

    def __init__(self, rate_rps: float, seed: int = 7) -> None:
        if rate_rps <= 0:
            raise ValueError(f"rate_rps must be positive, got {rate_rps}")
        self.rate_rps = float(rate_rps)
        self.seed = seed

    @abc.abstractmethod
    def times(self, num_requests: int) -> list[float]:
        """The first ``num_requests`` arrival instants, starting at >= 0."""

    def times_array(self, num_requests: int) -> np.ndarray:
        """The same instants as :meth:`times`, as one float64 ndarray.

        Subclasses override this with a vectorized generator where the RNG
        stream allows; the default materializes through :meth:`times`.
        """
        return np.asarray(self.times(num_requests), dtype=np.float64)

    def _rng(self, *streams: object) -> np.random.Generator:
        return derive_rng(self.seed, "arrivals", self.name, self.rate_rps, *streams)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(rate_rps={self.rate_rps}, seed={self.seed})"


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals: i.i.d. exponential inter-arrival gaps."""

    name = "poisson"

    def times(self, num_requests: int) -> list[float]:
        if num_requests <= 0:
            return []
        return self.times_array(num_requests).tolist()

    def times_array(self, num_requests: int) -> np.ndarray:
        """One batched draw and one cumsum: the fully vectorized case."""
        if num_requests <= 0:
            return np.empty(0, dtype=np.float64)
        gaps = self._rng().exponential(scale=1.0 / self.rate_rps, size=num_requests)
        return np.cumsum(gaps)

    @property
    def mean_rate_rps(self) -> float:
        """Long-run average arrival rate."""
        return self.rate_rps


class BurstyArrivals(ArrivalProcess):
    """Interrupted Poisson process: ON periods burst, OFF periods idle.

    The process alternates exponentially distributed ON and OFF sojourns.
    During ON periods requests arrive as a Poisson stream whose rate is
    scaled so the *long-run average* rate equals ``rate_rps`` — a bursty and
    a Poisson process at the same nominal rate offer the same load, but the
    bursty one concentrates it (and therefore queues much harder).
    """

    name = "bursty"

    def __init__(
        self,
        rate_rps: float,
        seed: int = 7,
        mean_on_seconds: float = 5.0,
        mean_off_seconds: float = 15.0,
    ) -> None:
        super().__init__(rate_rps, seed)
        if mean_on_seconds <= 0 or mean_off_seconds < 0:
            raise ValueError("mean_on_seconds must be > 0 and mean_off_seconds >= 0")
        self.mean_on_seconds = mean_on_seconds
        self.mean_off_seconds = mean_off_seconds
        duty_cycle = mean_on_seconds / (mean_on_seconds + mean_off_seconds)
        #: Arrival rate while the source is ON (compensates the OFF idle time).
        self.burst_rate_rps = rate_rps / duty_cycle

    @property
    def mean_rate_rps(self) -> float:
        """Long-run average arrival rate (the nominal ``rate_rps``)."""
        return self.rate_rps

    def times(self, num_requests: int) -> list[float]:
        if num_requests <= 0:
            return []
        return self.times_array(num_requests).tolist()

    def times_array(self, num_requests: int) -> np.ndarray:
        """Vectorized ON/OFF window sampling, byte-identical to the scalar loop.

        Every draw the original loop made was ``rng.exponential(scale)`` —
        which numpy implements as ``scale * standard_exponential()`` off the
        same bit stream — so the whole process can be generated from one
        pre-drawn ``standard_exponential`` block consumed through a cursor:
        per window, one ON draw, the in-window gap draws plus the single
        terminating draw (the overshoot past the window, or the draw after
        the final arrival), then one OFF draw.  Arrival instants accumulate
        with the same float operation order as the scalar loop (a cumsum
        seeded with the window clock), so the output is bit-for-bit equal.
        """
        if num_requests <= 0:
            return np.empty(0, dtype=np.float64)
        rng = self._rng(self.mean_on_seconds, self.mean_off_seconds)
        standard_exponential = rng.standard_exponential
        gap_scale = 1.0 / self.burst_rate_rps
        mean_on = self.mean_on_seconds
        mean_off = self.mean_off_seconds

        buf = standard_exponential(_CHUNK)
        cursor = 0
        chunks: list[np.ndarray] = []
        produced = 0
        clock = 0.0

        def refill(at_least: int) -> None:
            nonlocal buf, cursor
            if buf.size - cursor < at_least:
                buf = np.concatenate([buf[cursor:], standard_exponential(_CHUNK)])
                cursor = 0

        while produced < num_requests:
            refill(1)
            on_duration = float(buf[cursor]) * mean_on
            cursor += 1
            window_end = clock + on_duration
            t_prev = clock
            while True:
                need = num_requests - produced
                refill(min(need + 1, 1024))
                want = min(buf.size - cursor, need + 1)
                # Seed the cumsum with the running clock so each instant is
                # built by the exact additions (((clock + g1) + g2) + ...)
                # the scalar loop performed.
                seg = np.empty(want + 1, dtype=np.float64)
                seg[0] = t_prev
                np.multiply(buf[cursor : cursor + want], gap_scale, out=seg[1:])
                instants = np.cumsum(seg)[1:]
                in_window = int(np.searchsorted(instants, window_end, side="right"))
                if in_window < want:
                    # The terminating draw (first instant past the window,
                    # or the draw after the final requested arrival) is
                    # inside this segment.
                    usable = min(in_window, need)
                    chunks.append(instants[:usable])
                    produced += usable
                    cursor += usable + 1
                    break
                if want == need + 1:
                    # All need+1 draws land in the window: the final arrival
                    # plus the draw consumed right after it.
                    chunks.append(instants[:need])
                    produced += need
                    cursor += need + 1
                    break
                # Buffer exhausted mid-window: emit what we have and extend.
                chunks.append(instants)
                produced += want
                cursor += want
                if produced >= num_requests:
                    # The final arrival was the segment's last draw; the
                    # scalar loop still consumed one more gap draw after it.
                    refill(1)
                    cursor += 1
                    break
                t_prev = float(instants[-1])
            refill(1)
            off_duration = float(buf[cursor]) * mean_off
            cursor += 1
            clock = clock + (on_duration + off_duration)
        return np.concatenate(chunks) if len(chunks) > 1 else chunks[0]


class DiurnalArrivals(ArrivalProcess):
    """Nonhomogeneous Poisson arrivals with a sinusoidal day/night cycle.

    The instantaneous rate is ``rate_rps * (1 + amplitude * sin(2*pi*t /
    period))``, sampled exactly by Lewis-Shedler thinning against the peak
    rate.  ``period_seconds`` defaults to a compressed "day" so laptop-scale
    sweeps see both the peak and the trough.
    """

    name = "diurnal"

    def __init__(
        self,
        rate_rps: float,
        seed: int = 7,
        amplitude: float = 0.8,
        period_seconds: float = 120.0,
    ) -> None:
        super().__init__(rate_rps, seed)
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if period_seconds <= 0:
            raise ValueError("period_seconds must be positive")
        self.amplitude = amplitude
        self.period_seconds = period_seconds

    @property
    def mean_rate_rps(self) -> float:
        """Long-run average arrival rate (the sinusoid integrates to zero)."""
        return self.rate_rps

    def _rate_at(self, t: float) -> float:
        return self.rate_rps * (
            1.0 + self.amplitude * np.sin(2.0 * np.pi * t / self.period_seconds)
        )

    def times(self, num_requests: int) -> list[float]:
        if num_requests <= 0:
            return []
        return self.times_array(num_requests).tolist()

    def times_array(self, num_requests: int) -> np.ndarray:
        """Lewis-Shedler thinning into a preallocated ndarray.

        Thinning interleaves an exponential candidate draw with a uniform
        accept draw per candidate, and the ziggurat exponential consumes a
        *variable* number of raw words — so unlike Poisson and bursty there
        is no way to pre-draw a block without shifting the bit stream.  The
        loop therefore stays sequential (bit-for-bit the original), but
        writes straight into a float64 array (no per-request Python list)
        with the trigonometry hoisted to ``math.sin`` — the same libm call
        ``np.sin`` makes for a scalar, at a fraction of the overhead.
        """
        if num_requests <= 0:
            return np.empty(0, dtype=np.float64)
        rng = self._rng(self.amplitude, self.period_seconds)
        exponential = rng.exponential
        random = rng.random
        sin = math.sin
        peak_rate = self.rate_rps * (1.0 + self.amplitude)
        mean_scale = 1.0 / peak_rate
        rate_rps = self.rate_rps
        amplitude = self.amplitude
        period = self.period_seconds
        two_pi = 2.0 * np.pi
        out = np.empty(num_requests, dtype=np.float64)
        filled = 0
        t = 0.0
        while filled < num_requests:
            t += exponential(mean_scale)
            rate = rate_rps * (1.0 + amplitude * sin(two_pi * t / period))
            if random() <= rate / peak_rate:
                out[filled] = t
                filled += 1
        return out


#: Registry of arrival-process kinds understood by the CLI and experiments.
ARRIVAL_KINDS: tuple[str, ...] = ("poisson", "bursty", "diurnal")


def make_arrival_process(kind: str, rate_rps: float, seed: int = 7, **kwargs) -> ArrivalProcess:
    """Build the arrival process called ``kind`` at ``rate_rps``.

    Extra keyword arguments pass through to the process constructor (e.g.
    ``mean_on_seconds`` for ``bursty``, ``amplitude`` for ``diurnal``).
    """
    if kind == "poisson":
        return PoissonArrivals(rate_rps, seed=seed, **kwargs)
    if kind == "bursty":
        return BurstyArrivals(rate_rps, seed=seed, **kwargs)
    if kind == "diurnal":
        return DiurnalArrivals(rate_rps, seed=seed, **kwargs)
    raise ValueError(f"unknown arrival process {kind!r}; expected one of {ARRIVAL_KINDS}")
