"""Open-loop arrival processes for the discrete-event engine.

The closed-loop traces of :mod:`repro.traces.generator` say *what* requests
look like; the processes here say *when* they arrive.  Three classic shapes
cover the load regimes an FL metadata store sees in production:

* :class:`PoissonArrivals` — memoryless arrivals at a constant rate (the
  M/G/c baseline),
* :class:`BurstyArrivals` — a two-state ON/OFF modulated Poisson process
  (interrupted Poisson): quiet background traffic punctuated by bursts,
* :class:`DiurnalArrivals` — a nonhomogeneous Poisson process whose rate
  follows a sinusoidal day/night cycle, sampled by Lewis-Shedler thinning.

Every process is a pure function of ``(seed, parameters)`` via
:func:`repro.common.rng.derive_rng`, so a load sweep is reproducible end to
end: same seed, same arrival instants, same queueing behaviour.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.common.rng import derive_rng


class ArrivalProcess(abc.ABC):
    """Base class: a deterministic generator of non-decreasing arrival times."""

    #: Machine-friendly identifier (used by the CLI and report labels).
    name: str = "arrivals"

    def __init__(self, rate_rps: float, seed: int = 7) -> None:
        if rate_rps <= 0:
            raise ValueError(f"rate_rps must be positive, got {rate_rps}")
        self.rate_rps = float(rate_rps)
        self.seed = seed

    @abc.abstractmethod
    def times(self, num_requests: int) -> list[float]:
        """The first ``num_requests`` arrival instants, starting at >= 0."""

    def _rng(self, *streams: object) -> np.random.Generator:
        return derive_rng(self.seed, "arrivals", self.name, self.rate_rps, *streams)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(rate_rps={self.rate_rps}, seed={self.seed})"


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals: i.i.d. exponential inter-arrival gaps."""

    name = "poisson"

    def times(self, num_requests: int) -> list[float]:
        if num_requests <= 0:
            return []
        gaps = self._rng().exponential(scale=1.0 / self.rate_rps, size=num_requests)
        return np.cumsum(gaps).tolist()

    @property
    def mean_rate_rps(self) -> float:
        """Long-run average arrival rate."""
        return self.rate_rps


class BurstyArrivals(ArrivalProcess):
    """Interrupted Poisson process: ON periods burst, OFF periods idle.

    The process alternates exponentially distributed ON and OFF sojourns.
    During ON periods requests arrive as a Poisson stream whose rate is
    scaled so the *long-run average* rate equals ``rate_rps`` — a bursty and
    a Poisson process at the same nominal rate offer the same load, but the
    bursty one concentrates it (and therefore queues much harder).
    """

    name = "bursty"

    def __init__(
        self,
        rate_rps: float,
        seed: int = 7,
        mean_on_seconds: float = 5.0,
        mean_off_seconds: float = 15.0,
    ) -> None:
        super().__init__(rate_rps, seed)
        if mean_on_seconds <= 0 or mean_off_seconds < 0:
            raise ValueError("mean_on_seconds must be > 0 and mean_off_seconds >= 0")
        self.mean_on_seconds = mean_on_seconds
        self.mean_off_seconds = mean_off_seconds
        duty_cycle = mean_on_seconds / (mean_on_seconds + mean_off_seconds)
        #: Arrival rate while the source is ON (compensates the OFF idle time).
        self.burst_rate_rps = rate_rps / duty_cycle

    @property
    def mean_rate_rps(self) -> float:
        """Long-run average arrival rate (the nominal ``rate_rps``)."""
        return self.rate_rps

    def times(self, num_requests: int) -> list[float]:
        if num_requests <= 0:
            return []
        rng = self._rng(self.mean_on_seconds, self.mean_off_seconds)
        arrivals: list[float] = []
        clock = 0.0
        while len(arrivals) < num_requests:
            on_duration = rng.exponential(self.mean_on_seconds)
            # Poisson stream within the ON window.
            t = clock + rng.exponential(1.0 / self.burst_rate_rps)
            while t <= clock + on_duration and len(arrivals) < num_requests:
                arrivals.append(t)
                t += rng.exponential(1.0 / self.burst_rate_rps)
            clock += on_duration + rng.exponential(self.mean_off_seconds)
        return arrivals


class DiurnalArrivals(ArrivalProcess):
    """Nonhomogeneous Poisson arrivals with a sinusoidal day/night cycle.

    The instantaneous rate is ``rate_rps * (1 + amplitude * sin(2*pi*t /
    period))``, sampled exactly by Lewis-Shedler thinning against the peak
    rate.  ``period_seconds`` defaults to a compressed "day" so laptop-scale
    sweeps see both the peak and the trough.
    """

    name = "diurnal"

    def __init__(
        self,
        rate_rps: float,
        seed: int = 7,
        amplitude: float = 0.8,
        period_seconds: float = 120.0,
    ) -> None:
        super().__init__(rate_rps, seed)
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if period_seconds <= 0:
            raise ValueError("period_seconds must be positive")
        self.amplitude = amplitude
        self.period_seconds = period_seconds

    @property
    def mean_rate_rps(self) -> float:
        """Long-run average arrival rate (the sinusoid integrates to zero)."""
        return self.rate_rps

    def _rate_at(self, t: float) -> float:
        return self.rate_rps * (
            1.0 + self.amplitude * np.sin(2.0 * np.pi * t / self.period_seconds)
        )

    def times(self, num_requests: int) -> list[float]:
        if num_requests <= 0:
            return []
        rng = self._rng(self.amplitude, self.period_seconds)
        peak_rate = self.rate_rps * (1.0 + self.amplitude)
        arrivals: list[float] = []
        t = 0.0
        while len(arrivals) < num_requests:
            t += rng.exponential(1.0 / peak_rate)
            if rng.random() <= self._rate_at(t) / peak_rate:
                arrivals.append(t)
        return arrivals


#: Registry of arrival-process kinds understood by the CLI and experiments.
ARRIVAL_KINDS: tuple[str, ...] = ("poisson", "bursty", "diurnal")


def make_arrival_process(kind: str, rate_rps: float, seed: int = 7, **kwargs) -> ArrivalProcess:
    """Build the arrival process called ``kind`` at ``rate_rps``.

    Extra keyword arguments pass through to the process constructor (e.g.
    ``mean_on_seconds`` for ``bursty``, ``amplitude`` for ``diurnal``).
    """
    if kind == "poisson":
        return PoissonArrivals(rate_rps, seed=seed, **kwargs)
    if kind == "bursty":
        return BurstyArrivals(rate_rps, seed=seed, **kwargs)
    if kind == "diurnal":
        return DiurnalArrivals(rate_rps, seed=seed, **kwargs)
    raise ValueError(f"unknown arrival process {kind!r}; expected one of {ARRIVAL_KINDS}")
