"""Generation of non-training request traces.

The paper evaluates FLStore against the baselines on a 50-hour trace of 3000
non-training requests spanning ten workloads (Section 5.2), and evaluates the
caching policies on traces "crafted from FL jobs for 10 clients each round
from a pool of 250 over 2000 rounds" (Table 2).  The generator below produces
both kinds of traces deterministically from a :class:`RoundCatalog`:

* per-workload traces that follow the natural access pattern of the
  workload's taxonomy class (per-round for P2/P4, across-round for P3,
  latest-model for P1), and
* mixed traces that interleave several workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.ids import IdGenerator
from repro.common.rng import derive_rng
from repro.fl.catalog import RoundCatalog
from repro.workloads.base import PolicyClass, WorkloadRequest
from repro.workloads.registry import get_workload


@dataclass(frozen=True)
class TraceStats:
    """Summary of a generated trace."""

    num_requests: int
    workloads: tuple[str, ...]
    first_round: int
    last_round: int


class RequestTraceGenerator:
    """Builds deterministic request traces over the rounds known to a catalog."""

    def __init__(self, catalog: RoundCatalog, seed: int = 7, recent_rounds: int = 10) -> None:
        self.catalog = catalog
        self.seed = seed
        self.recent_rounds = recent_rounds
        self._ids = IdGenerator(prefix="trace-req", width=6)

    # ------------------------------------------------------------ single flow

    def workload_trace(
        self,
        workload_name: str,
        num_requests: int,
        start_round: int | None = None,
        client_id: int | None = None,
        history_rounds: int = 2,
        **params: object,
    ) -> list[WorkloadRequest]:
        """A trace of ``num_requests`` requests for one workload.

        The request rounds follow the workload's natural access pattern:

        * **P1** (inference/serving): every request targets the latest round.
        * **P2** (per-round analyses): requests walk forward one round at a
          time, wrapping around when they reach the newest round.
        * **P3** (across-round tracing): requests follow one client through
          the rounds it participated in.
        * **P4** (metadata): requests walk forward across recent rounds, like
          P2, but target metadata.
        """
        workload = get_workload(workload_name)
        rounds = self.catalog.rounds()
        if not rounds:
            raise ValueError("the catalog has no registered rounds; ingest rounds first")
        if num_requests < 0:
            raise ValueError("num_requests must be non-negative")

        if workload.policy_class is PolicyClass.P1_INDIVIDUAL:
            request_rounds = [self.catalog.latest_round] * num_requests
            return self._emit(workload_name, request_rounds, None, params, history_rounds)
        if workload.policy_class is PolicyClass.P3_ACROSS_ROUNDS:
            return self._across_round_trace(workload_name, num_requests, client_id, params, history_rounds)
        if workload.policy_class is PolicyClass.P4_METADATA:
            window = self.catalog.recent_rounds(max(self.recent_rounds, 1))
            first = window[0] if window else rounds[0]
            candidate_rounds = [r for r in rounds if r >= first]
            request_rounds = self._walk(candidate_rounds, num_requests, start_round)
            return self._emit(workload_name, request_rounds, None, params, history_rounds)
        # P2 and any custom per-round workload.
        request_rounds = self._walk(rounds, num_requests, start_round)
        return self._emit(workload_name, request_rounds, None, params, history_rounds)

    def _walk(self, rounds: list[int], num_requests: int, start_round: int | None) -> list[int]:
        if not rounds:
            return []
        if start_round is None:
            start_index = 0
        else:
            start_index = next((i for i, r in enumerate(rounds) if r >= start_round), 0)
        return [rounds[(start_index + i) % len(rounds)] for i in range(num_requests)]

    def _across_round_trace(
        self,
        workload_name: str,
        num_requests: int,
        client_id: int | None,
        params: dict,
        history_rounds: int = 2,
    ) -> list[WorkloadRequest]:
        if client_id is None:
            client_id = self._most_active_client()
        client_rounds = self.catalog.rounds_for_client(client_id)
        if not client_rounds:
            raise ValueError(f"client {client_id} never participated in a registered round")
        request_rounds = [client_rounds[i % len(client_rounds)] for i in range(num_requests)]
        return self._emit(workload_name, request_rounds, client_id, params, history_rounds)

    def most_active_client(self) -> int:
        """The client that participated in the most registered rounds (ties: lowest id)."""
        return self._most_active_client()

    def _most_active_client(self) -> int:
        counts: dict[int, int] = {}
        for round_id in self.catalog.rounds():
            for cid in self.catalog.participants(round_id):
                counts[cid] = counts.get(cid, 0) + 1
        if not counts:
            raise ValueError("the catalog has no participants")
        best = max(counts.values())
        return min(cid for cid, count in counts.items() if count == best)

    def _emit(
        self,
        workload_name: str,
        request_rounds: list[int],
        client_id: int | None,
        params: dict,
        history_rounds: int = 2,
    ) -> list[WorkloadRequest]:
        return [
            WorkloadRequest(
                request_id=self._ids.next(),
                workload=workload_name,
                round_id=round_id,
                client_id=client_id,
                history_rounds=history_rounds,
                params=dict(params),
            )
            for round_id in request_rounds
        ]

    # -------------------------------------------------------------- mixtures

    def mixed_trace(
        self,
        workload_names: list[str],
        num_requests: int,
        weights: list[float] | None = None,
        requests_per_round: int | None = None,
    ) -> list[WorkloadRequest]:
        """Interleave several workloads into one round-aligned trace.

        The trace models how non-training workloads arrive in a live FL
        deployment: as training progresses round by round, a batch of
        non-training requests (scheduling, filtering, incentives, ...) runs
        against the *current* round's data before the process moves to the
        next round.  ``requests_per_round`` controls how many requests target
        each round before advancing (default: one per listed workload).
        Serving/inference (P1) requests always target the newest round.
        """
        rng = derive_rng(self.seed, "mixed-trace")
        return self._mixture(workload_names, num_requests, rng, None, weights, requests_per_round)

    def tenant_trace(
        self,
        tenant_id: str,
        workload_names: list[str],
        num_requests: int,
        weights: list[float] | None = None,
        requests_per_round: int | None = None,
    ) -> list[WorkloadRequest]:
        """A tenant's own mixed trace, tagged with ``tenant_id``.

        Draws from a per-tenant RNG stream derived from the generator seed
        and the tenant id, so each tenant's trace is independent of every
        other tenant's — and the untagged :meth:`mixed_trace` stream is
        never perturbed by adding tenants.
        """
        rng = derive_rng(self.seed, "tenant-trace", tenant_id)
        return self._mixture(
            workload_names, num_requests, rng, tenant_id, weights, requests_per_round
        )

    def _mixture(
        self,
        workload_names: list[str],
        num_requests: int,
        rng: np.random.Generator,
        tenant_id: str | None,
        weights: list[float] | None,
        requests_per_round: int | None,
    ) -> list[WorkloadRequest]:
        if not workload_names:
            raise ValueError("workload_names must not be empty")
        if weights is not None and len(weights) != len(workload_names):
            raise ValueError("weights must match workload_names in length")
        rounds = self.catalog.rounds()
        if not rounds:
            raise ValueError("the catalog has no registered rounds; ingest rounds first")
        probabilities = None
        if weights is not None:
            weights_array = np.asarray(weights, dtype=float)
            probabilities = weights_array / weights_array.sum()
        per_round = requests_per_round or len(workload_names)

        trace: list[WorkloadRequest] = []
        for index in range(num_requests):
            round_id = rounds[(index // per_round) % len(rounds)]
            name = workload_names[int(rng.choice(len(workload_names), p=probabilities))]
            workload = get_workload(name)
            client_id = None
            request_round = round_id
            if workload.policy_class is PolicyClass.P1_INDIVIDUAL:
                request_round = self.catalog.latest_round
            elif workload.policy_class is PolicyClass.P3_ACROSS_ROUNDS:
                participants = self.catalog.participants(round_id)
                client_id = participants[0] if participants else None
            trace.append(
                WorkloadRequest(
                    request_id=self._ids.next(),
                    workload=name,
                    round_id=request_round,
                    client_id=client_id,
                    tenant_id=tenant_id,
                )
            )
        return trace

    # --------------------------------------------------------------- summary

    @staticmethod
    def stats(trace: list[WorkloadRequest]) -> TraceStats:
        """Summarize a generated trace."""
        if not trace:
            return TraceStats(num_requests=0, workloads=(), first_round=-1, last_round=-1)
        rounds = [r.round_id for r in trace]
        return TraceStats(
            num_requests=len(trace),
            workloads=tuple(sorted({r.workload for r in trace})),
            first_round=min(rounds),
            last_round=max(rounds),
        )
