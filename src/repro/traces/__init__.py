"""Non-training request trace generation."""

from repro.traces.generator import RequestTraceGenerator

__all__ = ["RequestTraceGenerator"]
