"""Non-training request trace generation and open-loop arrival processes."""

from repro.traces.arrivals import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    make_arrival_process,
)
from repro.traces.generator import RequestTraceGenerator

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "BurstyArrivals",
    "DiurnalArrivals",
    "PoissonArrivals",
    "RequestTraceGenerator",
    "make_arrival_process",
]
