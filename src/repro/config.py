"""Top-level configuration dataclasses for the FLStore reproduction.

The simulator is configured through a single :class:`SimulationConfig` object
composed of smaller per-subsystem configurations.  Every experiment in the
paper maps to a particular configuration (model, number of clients, rounds,
request counts); the convenience constructors (:meth:`SimulationConfig.small`,
:meth:`SimulationConfig.paper`) provide commonly used presets.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common.errors import ConfigurationError
from repro.common.units import GB


@dataclass(frozen=True)
class FLJobConfig:
    """Configuration of a simulated federated-learning job.

    The defaults follow the paper's evaluation setup (Section 5.1): cross-device
    FL with 10 clients selected per round from a pool of 250, trained for 1000
    rounds.
    """

    model_name: str = "efficientnet_v2_small"
    total_clients: int = 250
    clients_per_round: int = 10
    total_rounds: int = 1000
    #: Dimensionality of the reduced weight vector carried by each update.
    #: The *logical* size used for transfer latency/cost is taken from the
    #: model zoo, not from this vector (see DESIGN.md substitution table).
    reduced_dim: int = 256
    #: Fraction of clients whose updates are adversarial outliers
    #: (used by the malicious-filtering and debugging workloads).
    malicious_fraction: float = 0.05
    #: Number of latent client clusters used to generate correlated updates
    #: (exercised by the clustering and personalization workloads).
    latent_clusters: int = 4
    #: Local epochs / learning-rate ranges recorded as hyperparameter metadata.
    local_epochs: int = 5
    base_learning_rate: float = 0.01
    #: Seconds of simulated on-device training per round, per client (mean).
    mean_local_training_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.clients_per_round > self.total_clients:
            raise ConfigurationError(
                "clients_per_round cannot exceed total_clients "
                f"({self.clients_per_round} > {self.total_clients})"
            )
        if self.total_rounds <= 0:
            raise ConfigurationError("total_rounds must be positive")
        if self.reduced_dim <= 0:
            raise ConfigurationError("reduced_dim must be positive")
        if not 0.0 <= self.malicious_fraction < 1.0:
            raise ConfigurationError("malicious_fraction must be in [0, 1)")
        if self.latent_clusters <= 0:
            raise ConfigurationError("latent_clusters must be positive")


@dataclass(frozen=True)
class NetworkConfig:
    """Latency/bandwidth parameters of the simulated cloud network paths.

    The default bandwidths are calibrated so that moving an EfficientNet-sized
    set of per-round client updates (10 clients x ~82 MB) from the object store
    into the aggregator takes on the order of the ~89 s average communication
    latency reported in Figure 4 of the paper.
    """

    #: Round-trip time between the aggregator instance and the object store.
    objstore_rtt_seconds: float = 0.060
    #: Effective object-store throughput seen by a single aggregator request.
    objstore_bandwidth_mb_per_s: float = 10.0
    #: Round-trip time between the aggregator instance and the cloud cache.
    cache_rtt_seconds: float = 0.002
    #: Effective in-memory cache throughput (faster than the object store).
    cache_bandwidth_mb_per_s: float = 40.0
    #: RTT between the client daemon / request tracker and any cloud service.
    client_rtt_seconds: float = 0.050
    #: Bandwidth of intra-serverless data movement (function-to-function).
    serverless_bandwidth_mb_per_s: float = 80.0
    #: RTT between serverless functions within the same region.
    serverless_rtt_seconds: float = 0.003

    def __post_init__(self) -> None:
        for name in (
            "objstore_bandwidth_mb_per_s",
            "cache_bandwidth_mb_per_s",
            "serverless_bandwidth_mb_per_s",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")


@dataclass(frozen=True)
class PricingConfig:
    """Cloud pricing used by the cost model (US dollars).

    Values follow public AWS list prices for the services used in the paper's
    evaluation (us-east-1, 2024): S3, ElastiCache, SageMaker ml.m5.4xlarge and
    Lambda.  They are configuration, not constants, so sensitivity analyses can
    sweep them.
    """

    # --- Object store (S3-like) -------------------------------------------
    objstore_put_request_cost: float = 0.005 / 1000.0
    objstore_get_request_cost: float = 0.0004 / 1000.0
    objstore_storage_cost_per_gb_month: float = 0.023
    #: Data transferred out of the object store to a compute service.
    #: In-region transfer between S3 and EC2/SageMaker/Lambda is free on AWS,
    #: so the default is 0; the knob exists for cross-region sensitivity
    #: sweeps.  The paper's baseline data-movement cost comes from the
    #: aggregator instance being occupied during the transfer (see
    #: ``DedicatedInstance.occupancy_cost``), not from per-GB egress.
    objstore_transfer_cost_per_gb: float = 0.0

    # --- In-memory cache (ElastiCache-like) -------------------------------
    cache_node_cost_per_hour: float = 0.326  # cache.r6g.xlarge
    cache_node_memory_gb: float = 26.32
    #: Same reasoning as ``objstore_transfer_cost_per_gb``: free in-region.
    cache_transfer_cost_per_gb: float = 0.0

    # --- Dedicated aggregator instance (SageMaker ml.m5.4xlarge) ----------
    aggregator_cost_per_hour: float = 0.922

    # --- Serverless functions (Lambda-like) --------------------------------
    lambda_cost_per_gb_second: float = 0.0000166667
    lambda_cost_per_million_requests: float = 0.20
    #: Keep-alive ping cost per instance per month (from InfiniStore, §4.5).
    lambda_keepalive_cost_per_instance_month: float = 0.0087
    #: Provisioned (always-warm) execution capacity, per GB-second (AWS
    #: Lambda provisioned concurrency).  The autoscaler's warm-capacity cost
    #: integrates this over the provisioned GB it keeps resident.
    lambda_provisioned_cost_per_gb_second: float = 0.0000041667

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise ConfigurationError(f"pricing value {name} must be non-negative")


#: Shedding policies of the admission controller (see ``ServerlessConfig``).
SHED_POLICIES: tuple[str, ...] = ("drop", "degrade-to-objstore")

#: Disciplines of the per-function request queues (see ``ServerlessConfig``).
#: ``fifo``/``priority`` order individual requests; ``wfq`` (weighted fair
#: queueing, self-clocked virtual finish times) and ``drr`` (deficit round
#: robin) schedule *flows* — per-tenant backlogs served in proportion to the
#: tenant weights configured on the scenario spec.
QUEUE_DISCIPLINES: tuple[str, ...] = ("fifo", "priority", "wfq", "drr")


@dataclass(frozen=True)
class ServerlessConfig:
    """Parameters of the serverless platform emulator."""

    #: Maximum memory a single function may be provisioned with (AWS: 10 GB).
    max_function_memory_bytes: int = 10 * GB
    #: Default provisioned memory for cache functions holding large models.
    default_function_memory_bytes: int = 4 * GB
    #: Provisioned memory for cache functions holding small models.
    small_function_memory_bytes: int = 2 * GB
    #: Cold-start latency for a newly spawned function.
    cold_start_seconds: float = 1.2
    #: Warm invocation overhead.
    invocation_overhead_seconds: float = 0.010
    #: Interval at which warm functions are pinged to stay resident.
    keepalive_interval_seconds: float = 60.0
    #: Number of secondary replicas per primary cache function.
    replication_factor: int = 1
    #: Timeout after which the request tracker fails over to a replica.
    failover_timeout_seconds: float = 2.0
    #: Maximum number of functions the platform will keep warm at once.
    max_warm_functions: int = 512
    #: Concurrent executions one warm function admits before requests queue
    #: (serverless providers run one request per instance; raise it to model
    #: provisioned-concurrency pools behind a single logical function).
    function_concurrency: int = 1
    #: Discipline of the per-function request queue used by the discrete-event
    #: engine: ``"fifo"``, ``"priority"`` (lower priority value served first),
    #: ``"wfq"`` (weighted fair queueing across tenant flows), or ``"drr"``
    #: (deficit round robin across tenant flows).
    queue_discipline: str = "fifo"
    #: Admission control: maximum number of requests allowed to wait for an
    #: execution slot on one serving shard (and on any one function queue).
    #: ``0`` means unbounded — every request is admitted, the PR-2 behaviour.
    max_queue_depth: int = 0
    #: What happens to a request that arrives while the queue is full:
    #: ``"drop"`` rejects it outright, ``"degrade-to-objstore"`` serves it on
    #: a slow bypass path (cold function + object-store fetches) that never
    #: touches the serving tier's cache or queues.
    shed_policy: str = "drop"

    def __post_init__(self) -> None:
        if self.default_function_memory_bytes > self.max_function_memory_bytes:
            raise ConfigurationError(
                "default function memory exceeds the platform maximum"
            )
        if self.replication_factor < 0:
            raise ConfigurationError("replication_factor must be >= 0")
        if self.max_warm_functions <= 0:
            raise ConfigurationError("max_warm_functions must be positive")
        if self.function_concurrency <= 0:
            raise ConfigurationError("function_concurrency must be positive")
        if self.queue_discipline not in QUEUE_DISCIPLINES:
            raise ConfigurationError(
                f"queue_discipline must be one of {QUEUE_DISCIPLINES}, "
                f"got {self.queue_discipline!r}"
            )
        if self.max_queue_depth < 0:
            raise ConfigurationError("max_queue_depth must be >= 0 (0 means unbounded)")
        if self.shed_policy not in SHED_POLICIES:
            raise ConfigurationError(
                f"shed_policy must be one of {SHED_POLICIES}, got {self.shed_policy!r}"
            )


@dataclass(frozen=True)
class CachePolicyConfig:
    """Tunables of the FLStore caching policies."""

    #: ``R`` in policy P4: number of most recent rounds of metadata to keep.
    metadata_recent_rounds: int = 10
    #: How many rounds ahead P2/P3 prefetch (the paper prefetches one round).
    prefetch_rounds_ahead: int = 1
    #: Capacity (bytes) available to capacity-bounded policies (LRU/LFU/FIFO).
    traditional_policy_capacity_bytes: int = 8 * GB
    #: Capacity multiplier for the FLStore-limited variant (half of FLStore).
    limited_capacity_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.metadata_recent_rounds <= 0:
            raise ConfigurationError("metadata_recent_rounds must be positive")
        if self.prefetch_rounds_ahead < 0:
            raise ConfigurationError("prefetch_rounds_ahead must be >= 0")
        if not 0.0 < self.limited_capacity_fraction <= 1.0:
            raise ConfigurationError("limited_capacity_fraction must be in (0, 1]")


@dataclass(frozen=True)
class SimulationConfig:
    """Complete configuration of a simulation run."""

    seed: int = 7
    job: FLJobConfig = field(default_factory=FLJobConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    pricing: PricingConfig = field(default_factory=PricingConfig)
    serverless: ServerlessConfig = field(default_factory=ServerlessConfig)
    cache_policy: CachePolicyConfig = field(default_factory=CachePolicyConfig)
    #: Wall-clock span the request trace covers, used for hourly cost accrual
    #: of always-on services (50 hours in the paper's evaluation).
    trace_duration_hours: float = 50.0
    #: Number of non-training requests in the evaluation trace.
    trace_num_requests: int = 3000

    @classmethod
    def small(cls, seed: int = 7) -> "SimulationConfig":
        """A laptop-friendly configuration used by tests and the quickstart."""
        return cls(
            seed=seed,
            job=FLJobConfig(
                model_name="resnet18",
                total_clients=20,
                clients_per_round=5,
                total_rounds=20,
                reduced_dim=64,
            ),
            trace_duration_hours=1.0,
            trace_num_requests=100,
        )

    @classmethod
    def paper(cls, model_name: str = "efficientnet_v2_small", seed: int = 7) -> "SimulationConfig":
        """The paper's evaluation setup (250-client pool, 10 per round)."""
        return cls(seed=seed, job=FLJobConfig(model_name=model_name))

    def with_model(self, model_name: str) -> "SimulationConfig":
        """Return a copy of this configuration targeting a different model."""
        return replace(self, job=replace(self.job, model_name=model_name))

    def with_job(self, **kwargs: object) -> "SimulationConfig":
        """Return a copy with selected :class:`FLJobConfig` fields replaced."""
        return replace(self, job=replace(self.job, **kwargs))


DEFAULT_CONFIG = SimulationConfig()

__all__ = [
    "CachePolicyConfig",
    "DEFAULT_CONFIG",
    "FLJobConfig",
    "NetworkConfig",
    "PricingConfig",
    "QUEUE_DISCIPLINES",
    "SHED_POLICIES",
    "ServerlessConfig",
    "SimulationConfig",
]
