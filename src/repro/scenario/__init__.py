"""Declarative scenario specs: one typed spec builds, runs, and sweeps every
serving tier.

The package splits cleanly into four layers:

* :mod:`repro.scenario.spec` — the frozen, validated :class:`ScenarioSpec`
  tree (workload mix, arrival process, tier topology) with dict/JSON/TOML
  round-trips, dotted-path overrides, and every string knob validated at
  build time behind one :class:`ScenarioValidationError`;
* :mod:`repro.scenario.build` — :func:`build_tier` (spec -> serving stack)
  and :func:`run` (spec -> :class:`RunReport`, conservation asserted);
* :mod:`repro.scenario.sweep` — the generic grid runner :func:`sweep`
  (base spec x dotted axes), which the legacy ``run_*_sweep`` entrypoints
  are now thin shims over;
* :mod:`repro.scenario.registry` — named, ready-to-run scenarios mirrored
  by the example spec files under ``examples/scenarios/``.
"""

from repro.scenario.build import (
    RunReport,
    Tier,
    build_tier,
    calibrate,
    calibrate_mean_service_seconds,
    clear_calibration_cache,
    paper_experiment_config,
    run,
    scenario_config,
)
from repro.scenario.registry import (
    get_scenario,
    list_scenarios,
    register_scenario,
    smoke_spec,
)
from repro.scenario.spec import (
    DEFAULT_SCENARIO_WORKLOADS,
    AdmissionSpec,
    ArrivalSpec,
    AutoscalerSpec,
    FaultSpec,
    RemediationSpec,
    ReplicationSpec,
    ScenarioSpec,
    ScenarioValidationError,
    TenantSpec,
    TierSpec,
    WorkloadMixSpec,
    apply_overrides,
    coerce_override,
    field_value,
)
from repro.scenario.sweep import expand_axes, scenario_row, sweep

__all__ = [
    "DEFAULT_SCENARIO_WORKLOADS",
    "AdmissionSpec",
    "ArrivalSpec",
    "AutoscalerSpec",
    "FaultSpec",
    "RemediationSpec",
    "ReplicationSpec",
    "RunReport",
    "ScenarioSpec",
    "ScenarioValidationError",
    "TenantSpec",
    "Tier",
    "TierSpec",
    "WorkloadMixSpec",
    "apply_overrides",
    "build_tier",
    "calibrate",
    "calibrate_mean_service_seconds",
    "clear_calibration_cache",
    "coerce_override",
    "expand_axes",
    "field_value",
    "get_scenario",
    "list_scenarios",
    "paper_experiment_config",
    "register_scenario",
    "run",
    "scenario_config",
    "scenario_row",
    "smoke_spec",
    "sweep",
]
