"""Sweeping scenario specs over axes: one generic grid for every sweep.

Where the pre-spec code grew one ``run_*_sweep`` function (and one CLI flag
list) per scenario axis, :func:`sweep` is the single grid runner: it takes a
base :class:`~repro.scenario.spec.ScenarioSpec` plus a mapping of dotted
spec paths to value sequences, expands the cartesian product in axis order
(first axis outermost — the row order the legacy sweeps printed), and runs
every cell through :func:`repro.scenario.build.run`, fanning independent
cells out to worker processes via the same
:func:`~repro.analysis.runner.map_tasks` runner the figure experiments use.

Calibration is hoisted: unless an axis changes what calibration depends on
(model, seed, rounds, the workload mix), ``E[S]`` is measured once on the
base spec and pinned into every cell via ``mean_service_seconds``, so a grid
shares one calibration and one SLO — and parallel workers never recalibrate.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Mapping, Sequence

from repro.analysis.runner import map_tasks
from repro.scenario.build import RunReport, calibrate, run
from repro.scenario.spec import ScenarioSpec, apply_overrides

#: Dotted-path prefixes whose value feeds the service-time calibration; an
#: axis touching one of these forces per-cell calibration.
_CALIBRATION_PREFIXES: tuple[str, ...] = (
    "model",
    "seed",
    "num_rounds",
    "workload.",
    "mean_service_seconds",
    "tenants",
)


def expand_axes(
    base_spec: ScenarioSpec, axes: Mapping[str, Sequence[Any]]
) -> list[ScenarioSpec]:
    """The grid of specs ``axes`` describes, in cartesian product order.

    Axis order is significant: the first axis varies slowest (outermost
    loop), matching how the legacy sweeps ordered their rows.  Every
    combination is applied through :func:`apply_overrides`, so each grid
    point is fully re-validated.
    """
    if not axes:
        return [base_spec]
    keys = list(axes)
    for key, values in axes.items():
        if not isinstance(values, (list, tuple)):
            raise TypeError(f"axis {key!r} must be a list/tuple of values, got {values!r}")
        if not values:
            raise ValueError(f"axis {key!r} must provide at least one value")
    return [
        apply_overrides(base_spec, dict(zip(keys, combo)))
        for combo in itertools.product(*(axes[key] for key in keys))
    ]


def scenario_row(report: RunReport) -> dict:
    """The default cell projection: the run report's flat row."""
    return report.row()


def _sweep_cell(task: tuple) -> dict:
    """One grid cell (module-level so worker processes can pickle it)."""
    spec, row_fn = task
    return row_fn(run(spec))


def _affects_calibration(axes: Mapping[str, Sequence[Any]]) -> bool:
    return any(
        key == prefix.rstrip(".") or key.startswith(prefix)
        for key in axes
        for prefix in _CALIBRATION_PREFIXES
    )


def sweep(
    base_spec: ScenarioSpec,
    axes: Mapping[str, Sequence[Any]] | None = None,
    workers: int | None = None,
    row_fn: Callable[[RunReport], dict] | None = None,
) -> list[dict]:
    """Run the grid ``axes`` describes over ``base_spec``; one row per cell.

    ``row_fn`` projects each cell's :class:`RunReport` to its result row
    (default: :func:`scenario_row`); the legacy sweep shims pass their own
    projections to reproduce their historical row schemas.  It must be a
    module-level callable when ``workers > 1`` (cells are pickled to worker
    processes).  Rows come back in grid order regardless of parallelism.
    """
    axes = dict(axes or {})
    row_fn = row_fn or scenario_row
    base = base_spec
    if base.mean_service_seconds is None and not _affects_calibration(axes):
        base = apply_overrides(base, {"mean_service_seconds": calibrate(base)})
    specs = expand_axes(base, axes)
    return map_tasks(_sweep_cell, [(spec, row_fn) for spec in specs], workers=workers)
