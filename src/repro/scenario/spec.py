"""The declarative scenario specification: one typed spec per serving scenario.

A :class:`ScenarioSpec` is a frozen, validated description of everything a
serving experiment needs — the workload mix, the open-loop arrival process,
and the tier topology (shard count, router, admission control, per-function
concurrency, autoscaling policy) — detached from any particular entrypoint.
The same spec builds the stack (:func:`repro.scenario.build.build_tier`),
runs it (:func:`repro.scenario.build.run`), and sweeps it
(:func:`repro.scenario.sweep.sweep`); the legacy ``run_*_sweep`` functions
are thin grids of specs.

Design rules:

* **Every string knob is validated here, at build time.**  An invalid
  ``shed_policy``, ``queue_discipline``, ``router_kind``, autoscaler policy,
  arrival kind, workload, or model name raises
  :class:`ScenarioValidationError` the moment the spec is constructed —
  never a ``KeyError`` three layers down a serving tier.
* **Specs are data.**  ``to_dict``/``from_dict`` round-trip losslessly, and
  so do the JSON and TOML file forms (:meth:`ScenarioSpec.save` /
  :meth:`ScenarioSpec.load`); ``from_dict`` rejects unknown keys so a typo
  in a checked-in spec cannot silently no-op.
* **Specs are immutable.**  Variations are expressed as dotted-path
  overrides (:func:`apply_overrides`, the ``--set tier.shards=4`` CLI
  surface), which re-validate the whole tree.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.common.errors import ConfigurationError
from repro.config import QUEUE_DISCIPLINES, SHED_POLICIES
from repro.engine.autoscale import AUTOSCALER_KINDS
from repro.engine.faults import FAULT_KINDS
from repro.engine.sharded import REPLICATION_POLICIES
from repro.engine.streaming import METRICS_MODES
from repro.fl.models import MODEL_ZOO
from repro.routing import ROUTER_KINDS
from repro.traces.arrivals import ARRIVAL_KINDS
from repro.workloads.registry import list_workloads

#: The default workload mix of serving scenarios: one P1 (inference), one P2
#: (clustering), one P4 (metadata) workload, so the offered stream touches
#: the policy classes with distinct data needs.  (The legacy load sweep's
#: ``LOAD_SWEEP_WORKLOADS`` aliases this.)
DEFAULT_SCENARIO_WORKLOADS: tuple[str, ...] = ("inference", "clustering", "scheduling_perf")


class ScenarioValidationError(ConfigurationError):
    """A scenario spec holds an invalid or inconsistent value.

    The single failure mode of the whole spec layer: unknown knob strings,
    out-of-range numbers, unknown dict keys, and cross-field inconsistencies
    (a multi-shard tier without a router) all raise this, at spec build
    time.
    """


def _fail(message: str) -> None:
    raise ScenarioValidationError(message)


def _coerce_int(spec: object, name: str, minimum: int | None = None) -> None:
    value = getattr(spec, name)
    if isinstance(value, bool) or not isinstance(value, int):
        try:
            coerced = int(value)
        except (TypeError, ValueError):
            _fail(f"{type(spec).__name__}.{name} must be an integer, got {value!r}")
        if coerced != value:  # refuse silent truncation of e.g. 2.5 shards
            _fail(f"{type(spec).__name__}.{name} must be an integer, got {value!r}")
        object.__setattr__(spec, name, coerced)
        value = coerced
    if minimum is not None and value < minimum:
        _fail(f"{type(spec).__name__}.{name} must be >= {minimum}, got {value}")


def _coerce_float(
    spec: object, name: str, minimum: float | None = None, exclusive: bool = False
) -> None:
    value = getattr(spec, name)
    if not isinstance(value, float):
        try:
            coerced = float(value)
        except (TypeError, ValueError):
            _fail(f"{type(spec).__name__}.{name} must be a number, got {value!r}")
        object.__setattr__(spec, name, coerced)
        value = coerced
    if minimum is not None and (value <= minimum if exclusive else value < minimum):
        bound = f"> {minimum}" if exclusive else f">= {minimum}"
        _fail(f"{type(spec).__name__}.{name} must be {bound}, got {value}")


def _check_choice(spec: object, name: str, choices: Sequence[str]) -> None:
    value = getattr(spec, name)
    if value not in choices:
        _fail(
            f"{type(spec).__name__}.{name} must be one of {tuple(choices)}, got {value!r}"
        )


@dataclass(frozen=True)
class WorkloadMixSpec:
    """What is served: the workload mix replayed by every run of the spec."""

    #: Workload names (must be registered in :mod:`repro.workloads.registry`);
    #: interleaved round-aligned by ``RequestTraceGenerator.mixed_trace``.
    workloads: tuple[str, ...] = DEFAULT_SCENARIO_WORKLOADS
    #: Number of requests in the replayed trace.
    num_requests: int = 120

    def __post_init__(self) -> None:
        if isinstance(self.workloads, str):
            object.__setattr__(
                self, "workloads", tuple(w.strip() for w in self.workloads.split(",") if w.strip())
            )
        else:
            object.__setattr__(self, "workloads", tuple(self.workloads))
        if not self.workloads:
            _fail("WorkloadMixSpec.workloads must name at least one workload")
        registered = set(list_workloads())
        unknown = sorted(set(self.workloads) - registered)
        if unknown:
            _fail(
                f"unknown workloads {unknown}; registered workloads: {sorted(registered)}"
            )
        _coerce_int(self, "num_requests", minimum=1)


@dataclass(frozen=True)
class ArrivalSpec:
    """When requests arrive: the open-loop arrival process driving the run.

    The offered rate is normally expressed as ``utilization`` — a multiple
    of the calibrated single-tier service rate (``rate = utilization /
    E[S]``), so specs stay meaningful if the latency model is recalibrated.
    An explicit ``rate_rps`` bypasses calibration entirely.
    """

    kind: str = "poisson"
    utilization: float = 1.0
    rate_rps: float | None = None

    def __post_init__(self) -> None:
        _check_choice(self, "kind", ARRIVAL_KINDS)
        _coerce_float(self, "utilization", minimum=0.0, exclusive=True)
        if self.rate_rps is not None:
            _coerce_float(self, "rate_rps", minimum=0.0, exclusive=True)


@dataclass(frozen=True)
class AdmissionSpec:
    """Per-shard admission control: queue bound and shedding policy."""

    #: Waiting requests allowed per shard; 0 means unbounded.
    max_queue_depth: int = 0
    shed_policy: str = "drop"

    def __post_init__(self) -> None:
        _coerce_int(self, "max_queue_depth", minimum=0)
        _check_choice(self, "shed_policy", SHED_POLICIES)


@dataclass(frozen=True)
class ReplicationSpec:
    """Hot-key replication across the tier's shards (read-only copies).

    ``policy="none"`` (the default) disables the machinery entirely — the
    tier is byte-identical to a pre-replication build.  ``"hot-static"``
    replicates the canonical P1 hot key (cross-client requests against the
    latest round); ``"hot-tracked"`` promotes any routing key after
    ``hot_threshold`` observed arrivals.  ``factor`` is the number of shards
    holding the key (primary included), clamped to the active shard count.
    """

    factor: int = 1
    policy: str = "none"
    #: Arrival count at which ``hot-tracked`` promotes a routing key.
    hot_threshold: int = 8

    def __post_init__(self) -> None:
        _coerce_int(self, "factor", minimum=1)
        _check_choice(self, "policy", REPLICATION_POLICIES)
        _coerce_int(self, "hot_threshold", minimum=1)

    @property
    def enabled(self) -> bool:
        """Whether any replication machinery is active."""
        return self.policy != "none"


@dataclass(frozen=True)
class AutoscalerSpec:
    """Whether (and how) an autoscaler drives the tier's warm capacity.

    ``enabled=False`` means no control loop is attached at all;
    ``enabled=True`` with ``policy="none"`` attaches the do-nothing
    autoscaler, which samples (and accrues the warm-capacity cost integral)
    but never scales — the fixed-capacity baseline of the autoscale sweep.
    """

    enabled: bool = False
    policy: str = "none"
    control_interval_seconds: float = 5.0

    def __post_init__(self) -> None:
        if not isinstance(self.enabled, bool):
            _fail(f"AutoscalerSpec.enabled must be a boolean, got {self.enabled!r}")
        _check_choice(self, "policy", AUTOSCALER_KINDS)
        _coerce_float(self, "control_interval_seconds", minimum=0.0, exclusive=True)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault clause injected into the run's virtual timeline.

    The four kinds exercise different layers of the tier:

    * ``shard-crash`` — the front door loses ``magnitude`` shards at onset
      (their waiters drain as ``requeued``); instantaneous, no duration.
    * ``reclamation-storm`` — every ``interval_seconds`` within the window,
      each shard force-reclaims a Zipf-sized set of warm functions.
    * ``slow-shard`` — one shard's service times are multiplied by
      ``magnitude`` for the window (gray degradation: nothing errors).
    * ``network-spike`` — every shard's communication latency/cost is
      multiplied by ``magnitude`` for the window.
    """

    kind: str = "shard-crash"
    onset_seconds: float = 0.0
    duration_seconds: float = 0.0
    magnitude: float = 1.0
    interval_seconds: float = 5.0
    zipf_exponent: float = 2.5

    def __post_init__(self) -> None:
        _check_choice(self, "kind", FAULT_KINDS)
        _coerce_float(self, "onset_seconds", minimum=0.0)
        _coerce_float(self, "duration_seconds", minimum=0.0)
        _coerce_float(self, "magnitude", minimum=0.0, exclusive=True)
        _coerce_float(self, "interval_seconds", minimum=0.0, exclusive=True)
        _coerce_float(self, "zipf_exponent", minimum=1.0, exclusive=True)
        if self.kind in ("reclamation-storm", "slow-shard", "network-spike"):
            if self.duration_seconds <= 0:
                _fail(f"FaultSpec.duration_seconds must be > 0 for a {self.kind} fault")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant sharing the serving tier with its own traffic and SLO.

    A tenant is a *flow*: its requests are generated from its own workload
    mix and arrival process (seeded independently, so adding a tenant never
    perturbs another tenant's trace), tagged with ``tenant_id == name``, and
    scheduled against other tenants by the tier's queue discipline —
    ``wfq``/``drr`` serve backlogged tenants in proportion to ``weight``,
    ``priority`` orders the ``priority`` discipline, and FIFO ignores both.

    ``slo_multiplier`` scales the tier's calibrated mean service time into
    this tenant's own sojourn SLO (0 disables violation accounting for the
    tenant); per-tenant violation rates feed the ``slo`` autoscaler policy
    and SLO-aware push-out shedding.

    All fields are flat scalars (plus a string list) so a tenant can be one
    ``[[tenants]]`` table in a TOML spec.
    """

    name: str = ""
    workloads: tuple[str, ...] = DEFAULT_SCENARIO_WORKLOADS
    num_requests: int = 60
    #: Arrival process kind (one of :data:`repro.traces.arrivals.ARRIVAL_KINDS`).
    arrival: str = "poisson"
    #: Offered load as a multiple of the tier's calibrated service rate.
    utilization: float = 1.0
    #: Explicit offered rate; overrides ``utilization`` when set.
    rate_rps: float | None = None
    #: Sojourn SLO as a multiple of the calibrated mean service time (0 = none).
    slo_multiplier: float = 3.0
    #: Orders the ``priority`` discipline (lower served first).
    priority: float = 0.0
    #: Fair share under ``wfq``/``drr`` (service in proportion to weight).
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            _fail(f"TenantSpec.name must be a non-empty string, got {self.name!r}")
        if isinstance(self.workloads, str):
            object.__setattr__(
                self, "workloads", tuple(w.strip() for w in self.workloads.split(",") if w.strip())
            )
        else:
            object.__setattr__(self, "workloads", tuple(self.workloads))
        if not self.workloads:
            _fail(f"TenantSpec.workloads must name at least one workload (tenant {self.name!r})")
        registered = set(list_workloads())
        unknown = sorted(set(self.workloads) - registered)
        if unknown:
            _fail(
                f"unknown workloads {unknown} for tenant {self.name!r}; "
                f"registered workloads: {sorted(registered)}"
            )
        _coerce_int(self, "num_requests", minimum=1)
        _check_choice(self, "arrival", ARRIVAL_KINDS)
        _coerce_float(self, "utilization", minimum=0.0, exclusive=True)
        if self.rate_rps is not None:
            _coerce_float(self, "rate_rps", minimum=0.0, exclusive=True)
        _coerce_float(self, "slo_multiplier", minimum=0.0)
        _coerce_float(self, "priority")
        _coerce_float(self, "weight", minimum=0.0, exclusive=True)


@dataclass(frozen=True)
class RemediationSpec:
    """Whether (and how) the remediation controller guards the tier.

    ``enabled=True`` attaches a :class:`repro.engine.remediate.
    RemediationController` riding control ticks alongside the run; its
    shadow verification replays a ``shadow_rounds`` x ``shadow_requests``
    bounded fork of the scenario per candidate action.
    """

    enabled: bool = False
    control_interval_seconds: float = 5.0
    cooldown_seconds: float = 15.0
    max_actions: int = 4
    #: Scale of the bounded shadow simulation used to verify proposals.
    shadow_rounds: int = 4
    shadow_requests: int = 24

    def __post_init__(self) -> None:
        if not isinstance(self.enabled, bool):
            _fail(f"RemediationSpec.enabled must be a boolean, got {self.enabled!r}")
        _coerce_float(self, "control_interval_seconds", minimum=0.0, exclusive=True)
        _coerce_float(self, "cooldown_seconds", minimum=0.0)
        _coerce_int(self, "max_actions", minimum=0)
        _coerce_int(self, "shadow_rounds", minimum=1)
        _coerce_int(self, "shadow_requests", minimum=1)


@dataclass(frozen=True)
class TierSpec:
    """The serving topology the spec builds.

    ``router_kind=None`` (the default) is the *plain engine* topology: one
    ``FLStore`` behind an ``EngineFLStore`` facade, no routing front door —
    what the open-loop load sweep measures.  Naming a router builds a
    ``ShardedEngineFLStore`` over ``shards`` full shards; enabling the
    autoscaler additionally makes the tier resizable (``shards`` is then the
    *starting* count).
    """

    shards: int = 1
    router_kind: str | None = None
    function_concurrency: int = 1
    queue_discipline: str = "fifo"
    admission: AdmissionSpec = field(default_factory=AdmissionSpec)
    autoscaler: AutoscalerSpec = field(default_factory=AutoscalerSpec)
    replication: ReplicationSpec = field(default_factory=ReplicationSpec)

    def __post_init__(self) -> None:
        _coerce_int(self, "shards", minimum=1)
        if self.router_kind is not None:
            _check_choice(self, "router_kind", ROUTER_KINDS)
        _coerce_int(self, "function_concurrency", minimum=1)
        _check_choice(self, "queue_discipline", QUEUE_DISCIPLINES)
        if not isinstance(self.admission, AdmissionSpec):
            _fail(f"TierSpec.admission must be an AdmissionSpec, got {self.admission!r}")
        if not isinstance(self.autoscaler, AutoscalerSpec):
            _fail(f"TierSpec.autoscaler must be an AutoscalerSpec, got {self.autoscaler!r}")
        if not isinstance(self.replication, ReplicationSpec):
            _fail(f"TierSpec.replication must be a ReplicationSpec, got {self.replication!r}")
        if self.router_kind is None and self.shards != 1:
            _fail(
                f"a {self.shards}-shard tier needs a router; set tier.router_kind "
                f"(one of {ROUTER_KINDS}) or keep shards=1"
            )
        if self.router_kind is None and self.autoscaler.enabled:
            _fail(
                "an autoscaled tier must be sharded (the autoscaler actuates the "
                f"routing front door); set tier.router_kind (one of {ROUTER_KINDS})"
            )
        if self.router_kind is None and self.replication.enabled:
            _fail(
                "hot-key replication needs a sharded tier (replicas live on the "
                f"ring's successor shards); set tier.router_kind (one of {ROUTER_KINDS})"
            )

    @property
    def sharded(self) -> bool:
        """Whether this topology has a routing front door."""
        return self.router_kind is not None


@dataclass(frozen=True)
class ScenarioSpec:
    """One serving scenario, end to end.

    A pure-data description: everything downstream — the simulation config,
    the serving stack, the trace, the arrival instants, the report — is a
    deterministic function of this spec (and nothing else), which is what
    makes sweeps reproducible and specs checkable into version control.
    """

    name: str = "scenario"
    model: str = "efficientnet_v2_small"
    seed: int = 7
    #: Training rounds ingested before serving.
    num_rounds: int = 12
    workload: WorkloadMixSpec = field(default_factory=WorkloadMixSpec)
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    tier: TierSpec = field(default_factory=TierSpec)
    #: Fault clauses scheduled on the run's virtual timeline (empty = healthy).
    faults: tuple[FaultSpec, ...] = ()
    #: Tenants sharing the tier.  Empty (the default) is the single-tenant
    #: scenario: the trace comes from ``workload``/``arrival`` exactly as
    #: before.  Non-empty *replaces* them: the offered stream is the
    #: time-merge of every tenant's own trace and arrival process, tagged
    #: with ``tenant_id``, with per-tenant SLOs, weights, and report rows.
    tenants: tuple[TenantSpec, ...] = ()
    #: The closed-loop remediation controller guarding the tier.
    remediation: RemediationSpec = field(default_factory=RemediationSpec)
    #: Sojourn-time SLO as a multiple of the calibrated mean service time;
    #: 0 disables the SLO (no violation accounting).
    slo_multiplier: float = 3.0
    #: Calibrated mean service time override.  ``None`` (the default) means
    #: "calibrate from the spec's own workload mix"; sweeps pin it once per
    #: grid so every cell shares one calibration (and one SLO).
    mean_service_seconds: float | None = None
    #: Metric pipeline: ``"full"`` retains per-request rows (exact
    #: percentiles, byte-identical to pre-knob reports); ``"streaming"``
    #: folds outcomes into O(1)-memory accumulators — required for
    #: million-request scale, approximate only in the percentile columns.
    metrics: str = "full"

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            _fail(f"ScenarioSpec.name must be a non-empty string, got {self.name!r}")
        if self.model not in MODEL_ZOO:
            _fail(f"unknown model {self.model!r}; known models: {sorted(MODEL_ZOO)}")
        _coerce_int(self, "seed")
        _coerce_int(self, "num_rounds", minimum=1)
        for spec_name, spec_type in (
            ("workload", WorkloadMixSpec),
            ("arrival", ArrivalSpec),
            ("tier", TierSpec),
        ):
            if not isinstance(getattr(self, spec_name), spec_type):
                _fail(
                    f"ScenarioSpec.{spec_name} must be a {spec_type.__name__}, "
                    f"got {getattr(self, spec_name)!r}"
                )
        _coerce_float(self, "slo_multiplier", minimum=0.0)
        if self.mean_service_seconds is not None:
            _coerce_float(self, "mean_service_seconds", minimum=0.0, exclusive=True)
        _check_choice(self, "metrics", METRICS_MODES)
        object.__setattr__(self, "faults", tuple(self.faults))
        for index, clause in enumerate(self.faults):
            if not isinstance(clause, FaultSpec):
                _fail(f"ScenarioSpec.faults[{index}] must be a FaultSpec, got {clause!r}")
            if clause.kind == "shard-crash":
                if not self.tier.sharded or self.tier.shards < 2:
                    _fail(
                        "a shard-crash fault needs a sharded tier with at least 2 "
                        "shards (the last shard can never be crashed); set "
                        "tier.router_kind and tier.shards >= 2"
                    )
                if int(clause.magnitude) > self.tier.shards - 1:
                    _fail(
                        f"a shard-crash of magnitude {clause.magnitude:g} on a "
                        f"{self.tier.shards}-shard tier would crash the last "
                        "shard; at least one shard must survive"
                    )
        object.__setattr__(self, "tenants", tuple(self.tenants))
        seen_tenants: set[str] = set()
        for index, tenant in enumerate(self.tenants):
            if not isinstance(tenant, TenantSpec):
                _fail(f"ScenarioSpec.tenants[{index}] must be a TenantSpec, got {tenant!r}")
            if tenant.name in seen_tenants:
                _fail(f"duplicate tenant name {tenant.name!r}; tenant names must be unique")
            seen_tenants.add(tenant.name)
        if not isinstance(self.remediation, RemediationSpec):
            _fail(
                f"ScenarioSpec.remediation must be a RemediationSpec, "
                f"got {self.remediation!r}"
            )
        if self.remediation.enabled:
            if not self.tier.sharded:
                _fail(
                    "a remediated tier must be sharded (the controller actuates "
                    f"the routing front door); set tier.router_kind (one of {ROUTER_KINDS})"
                )
            if self.tier.autoscaler.enabled:
                _fail(
                    "remediation and autoscaling cannot both drive the tier: "
                    "two control loops actuating the same shard ring would fight; "
                    "disable tier.autoscaler or remediation"
                )

    # ------------------------------------------------------------- dict form

    def to_dict(self) -> dict:
        """The spec as a plain nested dict (JSON/TOML-ready, order stable)."""
        return {
            "name": self.name,
            "model": self.model,
            "seed": self.seed,
            "num_rounds": self.num_rounds,
            "slo_multiplier": self.slo_multiplier,
            "mean_service_seconds": self.mean_service_seconds,
            "metrics": self.metrics,
            "workload": {
                "workloads": list(self.workload.workloads),
                "num_requests": self.workload.num_requests,
            },
            "arrival": {
                "kind": self.arrival.kind,
                "utilization": self.arrival.utilization,
                "rate_rps": self.arrival.rate_rps,
            },
            "tier": {
                "shards": self.tier.shards,
                "router_kind": self.tier.router_kind,
                "function_concurrency": self.tier.function_concurrency,
                "queue_discipline": self.tier.queue_discipline,
                "admission": {
                    "max_queue_depth": self.tier.admission.max_queue_depth,
                    "shed_policy": self.tier.admission.shed_policy,
                },
                "replication": {
                    "factor": self.tier.replication.factor,
                    "policy": self.tier.replication.policy,
                    "hot_threshold": self.tier.replication.hot_threshold,
                },
                "autoscaler": {
                    "enabled": self.tier.autoscaler.enabled,
                    "policy": self.tier.autoscaler.policy,
                    "control_interval_seconds": self.tier.autoscaler.control_interval_seconds,
                },
            },
            "faults": [
                {
                    "kind": clause.kind,
                    "onset_seconds": clause.onset_seconds,
                    "duration_seconds": clause.duration_seconds,
                    "magnitude": clause.magnitude,
                    "interval_seconds": clause.interval_seconds,
                    "zipf_exponent": clause.zipf_exponent,
                }
                for clause in self.faults
            ],
            "tenants": [
                {
                    "name": tenant.name,
                    "workloads": list(tenant.workloads),
                    "num_requests": tenant.num_requests,
                    "arrival": tenant.arrival,
                    "utilization": tenant.utilization,
                    "rate_rps": tenant.rate_rps,
                    "slo_multiplier": tenant.slo_multiplier,
                    "priority": tenant.priority,
                    "weight": tenant.weight,
                }
                for tenant in self.tenants
            ],
            "remediation": {
                "enabled": self.remediation.enabled,
                "control_interval_seconds": self.remediation.control_interval_seconds,
                "cooldown_seconds": self.remediation.cooldown_seconds,
                "max_actions": self.remediation.max_actions,
                "shadow_rounds": self.remediation.shadow_rounds,
                "shadow_requests": self.remediation.shadow_requests,
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Build (and fully validate) a spec from its dict form.

        Missing keys take their defaults — a TOML file may omit ``null``
        fields entirely — but *unknown* keys at any level raise
        :class:`ScenarioValidationError`, so a misspelt knob in a checked-in
        spec fails loudly instead of silently running the default.
        """
        tree = dict(data)
        workload = _build_section(tree.pop("workload", {}), WorkloadMixSpec, "workload")
        arrival = _build_section(tree.pop("arrival", {}), ArrivalSpec, "arrival")
        tier_tree = tree.pop("tier", {})
        if not isinstance(tier_tree, Mapping):
            _fail(f"tier must be a table/object, got {tier_tree!r}")
        tier_tree = dict(tier_tree)
        admission = _build_section(tier_tree.pop("admission", {}), AdmissionSpec, "tier.admission")
        autoscaler = _build_section(
            tier_tree.pop("autoscaler", {}), AutoscalerSpec, "tier.autoscaler"
        )
        replication = _build_section(
            tier_tree.pop("replication", {}), ReplicationSpec, "tier.replication"
        )
        tier = _build_section(
            tier_tree,
            TierSpec,
            "tier",
            admission=admission,
            autoscaler=autoscaler,
            replication=replication,
        )
        faults_tree = tree.pop("faults", [])
        if isinstance(faults_tree, Mapping) or not isinstance(faults_tree, Sequence):
            _fail(f"faults must be an array of tables/objects, got {faults_tree!r}")
        faults = tuple(
            _build_section(clause, FaultSpec, f"faults[{index}]")
            for index, clause in enumerate(faults_tree)
        )
        tenants_tree = tree.pop("tenants", [])
        if isinstance(tenants_tree, Mapping) or not isinstance(tenants_tree, Sequence):
            _fail(f"tenants must be an array of tables/objects, got {tenants_tree!r}")
        tenants = tuple(
            _build_section(entry, TenantSpec, f"tenants[{index}]")
            for index, entry in enumerate(tenants_tree)
        )
        remediation = _build_section(
            tree.pop("remediation", {}), RemediationSpec, "remediation"
        )
        return _build_section(
            tree,
            cls,
            "scenario",
            workload=workload,
            arrival=arrival,
            tier=tier,
            faults=faults,
            tenants=tenants,
            remediation=remediation,
        )

    def with_overrides(self, overrides: Mapping[str, Any]) -> "ScenarioSpec":
        """A copy with dotted-path overrides applied (see :func:`apply_overrides`)."""
        return apply_overrides(self, overrides)

    # ----------------------------------------------------- content addressing

    def canonical_json(self) -> str:
        """The spec's canonical serialization: minified, key-sorted JSON.

        The single byte form behind :meth:`content_hash`.  Canonicalization
        makes the hash independent of *representation* — dict key order,
        JSON vs TOML file form, whitespace — while every *semantic* knob
        (any field ``to_dict`` serializes) changes the bytes.
        """
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def content_hash(self) -> str:
        """SHA-256 of :meth:`canonical_json` — the spec's content address.

        Two specs hash equal iff their validated dict forms are equal: a
        spec round-tripped through TOML, rebuilt from a key-shuffled dict,
        or run through a no-op ``--set`` override keeps its hash, and any
        change to a semantic knob changes it.  The run manifest
        (:mod:`repro.fleet.manifest`) keys recorded artifacts on this hash,
        so an edited scenario marks exactly its own cells stale.
        """
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    # ------------------------------------------------------------- file form

    def to_json(self, indent: int = 2) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Parse a spec from a JSON document."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioValidationError(f"invalid JSON scenario spec: {exc}") from exc
        if not isinstance(data, dict):
            _fail(f"a scenario spec must be a JSON object, got {type(data).__name__}")
        return cls.from_dict(data)

    def to_toml(self) -> str:
        """The spec as a TOML document (``None`` fields are omitted)."""
        return _dump_toml(self.to_dict())

    @classmethod
    def from_toml(cls, text: str) -> "ScenarioSpec":
        """Parse a spec from a TOML document."""
        import tomllib

        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ScenarioValidationError(f"invalid TOML scenario spec: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: str | Path) -> Path:
        """Write the spec to ``path`` (format chosen by the file suffix)."""
        path = Path(path)
        if path.suffix == ".toml":
            text = self.to_toml()
        elif path.suffix == ".json":
            text = self.to_json()
        else:
            _fail(f"scenario spec files must end in .json or .toml, got {path.name!r}")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ScenarioSpec":
        """Read a spec from a ``.json`` or ``.toml`` file."""
        path = Path(path)
        if not path.exists():
            _fail(f"scenario spec file {path} does not exist")
        if path.suffix == ".toml":
            return cls.from_toml(path.read_text())
        if path.suffix == ".json":
            return cls.from_json(path.read_text())
        _fail(f"scenario spec files must end in .json or .toml, got {path.name!r}")
        raise AssertionError("unreachable")


def _build_section(data: Any, spec_type: type, label: str, **built: Any):
    """Construct one spec dataclass from a mapping, rejecting unknown keys."""
    if not isinstance(data, Mapping):
        _fail(f"{label} must be a table/object, got {data!r}")
    known = {f.name for f in fields(spec_type)}
    unknown = sorted(set(data) - known)
    if unknown:
        _fail(f"unknown {label} keys {unknown}; known keys: {sorted(known - set(built))}")
    kwargs = {key: value for key, value in data.items() if key not in built}
    kwargs.update(built)
    return spec_type(**kwargs)


# ---------------------------------------------------------------------------
# Dotted-path overrides (the `--set tier.shards=4` surface)
# ---------------------------------------------------------------------------


def coerce_override(value: Any, current: Any, key: str) -> Any:
    """Coerce a CLI string override toward the type of the value it replaces.

    Non-string values (programmatic overrides, sweep axis values) pass
    through untouched; validation happens when the spec rebuilds.  Strings
    are interpreted: ``null`` clears optional fields (``none`` too, except
    on string-valued fields, where ``"none"`` is a legal knob value — the
    autoscaler policy), ``true``/``false`` are booleans, numbers parse by
    the current field's type (int stays int), and comma lists split for
    tuple-valued fields.
    """
    if not isinstance(value, str):
        return value
    text = value.strip()
    if text.lower() == "null" or (text.lower() == "none" and not isinstance(current, str)):
        return None
    if isinstance(current, bool):
        if text.lower() in ("true", "1", "yes"):
            return True
        if text.lower() in ("false", "0", "no"):
            return False
        _fail(f"override {key}={value!r} is not a boolean")
    if isinstance(current, list):
        return [item.strip() for item in text.split(",") if item.strip()]
    if isinstance(current, bool) is False and isinstance(current, int):
        try:
            return int(text)
        except ValueError:
            _fail(f"override {key}={value!r} is not an integer")
    if isinstance(current, float):
        try:
            return float(text)
        except ValueError:
            _fail(f"override {key}={value!r} is not a number")
    if current is None:
        # No type to steer by (router_kind, rate_rps, ...): numbers parse as
        # numbers, anything else stays a string and is validated downstream.
        for parse in (int, float):
            try:
                return parse(text)
            except ValueError:
                continue
    return text


def _descend(node: Any, part: str) -> Any:
    """One dotted-path step: a dict key, or an element of a table array.

    Table-array elements (``tenants``, ``faults``) are addressed by their
    ``name`` field when they have one (``tenants.bursty.weight``) or by
    zero-based position (``faults.0.magnitude``).
    """
    if isinstance(node, dict):
        return node.get(part)
    if isinstance(node, list):
        for item in node:
            if isinstance(item, dict) and item.get("name") == part:
                return item
        try:
            index = int(part)
        except ValueError:
            return None
        if 0 <= index < len(node):
            return node[index]
    return None


def _resolve_leaf(tree: dict, key: str) -> tuple[dict, str]:
    """Resolve a dotted path to its ``(parent dict, leaf key)`` in ``tree``.

    The single definition of what a settable spec field *is*: unknown paths
    and non-leaf (section) paths raise :class:`ScenarioValidationError`.
    Paths may traverse table arrays by element name or index
    (``tenants.bursty.weight``, ``tenants.0.weight``).  Shared by
    :func:`apply_overrides` and the CLI's ``--set``/``--sweep`` surfaces so
    the two can never diverge.
    """
    parts = key.split(".")
    node: Any = tree
    for part in parts[:-1]:
        child = _descend(node, part)
        if not isinstance(child, (dict, list)):
            _fail(f"unknown scenario field {key!r}")
        node = child
    leaf = parts[-1]
    if not isinstance(node, dict) or leaf not in node or isinstance(node[leaf], dict):
        _fail(f"unknown scenario field {key!r}")
    return node, leaf


def field_value(spec: ScenarioSpec, key: str) -> Any:
    """The current value of one dotted spec field (unknown paths raise)."""
    node, leaf = _resolve_leaf(spec.to_dict(), key)
    return node[leaf]


def apply_overrides(spec: ScenarioSpec, overrides: Mapping[str, Any]) -> ScenarioSpec:
    """Rebuild ``spec`` with dotted-path overrides applied.

    Keys are dotted paths into the spec's dict form
    (``tier.admission.max_queue_depth``); unknown paths raise
    :class:`ScenarioValidationError`.  The returned spec is re-validated
    from scratch, so an override can never smuggle in an invalid knob.
    """
    tree = spec.to_dict()
    for key, value in overrides.items():
        node, leaf = _resolve_leaf(tree, key)
        node[leaf] = coerce_override(value, node[leaf], key)
    return ScenarioSpec.from_dict(tree)


# ---------------------------------------------------------------------------
# Minimal TOML emission (tomllib reads; nothing in the stdlib writes)
# ---------------------------------------------------------------------------


def _toml_scalar(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)  # valid TOML basic string
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_scalar(item) for item in value) + "]"
    raise ScenarioValidationError(f"cannot express {value!r} in a TOML scenario spec")


def _dump_toml(tree: Mapping[str, Any], prefix: str = "") -> str:
    """Emit the spec's nested-dict form as TOML; ``None`` values are omitted
    (TOML has no null — ``from_dict`` restores the field's default).

    Lists of tables (the ``faults`` clause list) emit as TOML
    arrays-of-tables (``[[faults]]`` per element); an empty list is dropped
    entirely, since ``from_dict`` defaults it and TOML's ``key = []`` form
    could not be reopened as a table array anyway.
    """
    scalars = []
    tables = []
    table_arrays = []
    for key, value in tree.items():
        if value is None:
            continue
        if isinstance(value, Mapping):
            tables.append((key, value))
        elif (
            isinstance(value, Sequence)
            and not isinstance(value, str)
            and any(isinstance(item, Mapping) for item in value)
        ):
            if not all(isinstance(item, Mapping) for item in value):
                raise ScenarioValidationError(
                    f"cannot express mixed table/scalar array {key!r} in TOML"
                )
            table_arrays.append((key, value))
        elif isinstance(value, Sequence) and not isinstance(value, str) and not value:
            continue
        else:
            scalars.append(f"{key} = {_toml_scalar(value)}")
    chunks = []
    if scalars:
        header = f"[{prefix}]\n" if prefix else ""
        chunks.append(header + "\n".join(scalars) + "\n")
    for key, value in tables:
        child_prefix = f"{prefix}.{key}" if prefix else key
        child = _dump_toml(value, prefix=child_prefix)
        if child:
            chunks.append(child)
    for key, items in table_arrays:
        child_prefix = f"{prefix}.{key}" if prefix else key
        for item in items:
            lines = [f"[[{child_prefix}]]"]
            for item_key, item_value in item.items():
                if item_value is None:
                    continue
                if isinstance(item_value, Mapping):
                    raise ScenarioValidationError(
                        f"cannot express nested table inside array {key!r} in TOML"
                    )
                lines.append(f"{item_key} = {_toml_scalar(item_value)}")
            chunks.append("\n".join(lines) + "\n")
    return "\n".join(chunks)
