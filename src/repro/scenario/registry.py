"""The scenario registry: named, ready-to-run specs.

Mirrors the workload registry's role one level up: where
:mod:`repro.workloads.registry` names what can be served, this registry
names whole serving *scenarios* — spec trees exercising each topology the
tier factory can build.  The bundled scenarios double as documentation (one
per topology/feature) and as the source of the checked-in example spec
files under ``examples/scenarios/``, which a test pins equal to the
registered specs so neither can rot.

``repro.cli run-scenario --name <scenario>`` runs a registered scenario
directly; ``register_scenario`` is the extension point for projects layering
their own.
"""

from __future__ import annotations

from repro.scenario.spec import (
    AdmissionSpec,
    ArrivalSpec,
    AutoscalerSpec,
    FaultSpec,
    RemediationSpec,
    ReplicationSpec,
    ScenarioSpec,
    TenantSpec,
    TierSpec,
    WorkloadMixSpec,
)

_REGISTRY: dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, replace_existing: bool = False) -> ScenarioSpec:
    """Register ``spec`` under its ``name``."""
    if spec.name in _REGISTRY and not replace_existing:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Return the registered scenario called ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown scenario {name!r}; registered scenarios: {known}") from exc


def list_scenarios() -> list[str]:
    """Names of every registered scenario, sorted."""
    return sorted(_REGISTRY)


def smoke_spec(spec: ScenarioSpec, num_rounds: int = 4, num_requests: int = 12) -> ScenarioSpec:
    """A shrunk copy of ``spec`` for smoke runs (CI, example validation).

    Caps the ingested rounds and the trace length while keeping every
    topology knob intact, so a smoke run still builds the same stack and
    still asserts conservation — it just finishes in well under a second.
    """
    overrides: dict = {
        "num_rounds": min(spec.num_rounds, num_rounds),
        "workload.num_requests": min(spec.workload.num_requests, num_requests),
    }
    for tenant in spec.tenants:
        overrides[f"tenants.{tenant.name}.num_requests"] = min(
            tenant.num_requests, num_requests
        )
    return spec.with_overrides(overrides)


# ---------------------------------------------------------------------------
# Bundled scenarios — one per topology/feature of the serving tier.
# ---------------------------------------------------------------------------

for _spec in (
    # The plain-engine open-loop baseline: one store, no front door.
    ScenarioSpec(
        name="engine-baseline",
        num_rounds=8,
        workload=WorkloadMixSpec(num_requests=48),
        arrival=ArrivalSpec(kind="poisson", utilization=1.0),
    ),
    # Four hashed shards under bursty overload with drop shedding.
    ScenarioSpec(
        name="sharded-burst",
        num_rounds=8,
        workload=WorkloadMixSpec(num_requests=64),
        arrival=ArrivalSpec(kind="bursty", utilization=2.0),
        tier=TierSpec(
            shards=4,
            router_kind="consistent-hash",
            admission=AdmissionSpec(max_queue_depth=8, shed_policy="drop"),
        ),
    ),
    # Load-aware routing on a hot-keyed mix: JSQ over the affinity
    # candidates, overflow degraded to the object-store bypass.
    ScenarioSpec(
        name="jsq-hotkey",
        num_rounds=8,
        workload=WorkloadMixSpec(workloads=("inference", "scheduling_perf"), num_requests=64),
        arrival=ArrivalSpec(kind="bursty", utilization=2.0),
        tier=TierSpec(
            shards=4,
            router_kind="jsq",
            admission=AdmissionSpec(max_queue_depth=6, shed_policy="degrade-to-objstore"),
        ),
    ),
    # The jsq-hotkey mix with hot-key replication: the P1 hot key is served
    # from two shards holding live replicas, so the hot shard's cache stops
    # being the throughput ceiling (compare max_shard_routed and p99 against
    # jsq-hotkey, or sweep tier.replication.factor=1,2).
    ScenarioSpec(
        name="hotkey-replicated",
        num_rounds=8,
        workload=WorkloadMixSpec(workloads=("inference", "scheduling_perf"), num_requests=64),
        arrival=ArrivalSpec(kind="bursty", utilization=2.0),
        tier=TierSpec(
            shards=4,
            router_kind="jsq",
            admission=AdmissionSpec(max_queue_depth=6, shed_policy="degrade-to-objstore"),
            replication=ReplicationSpec(factor=2, policy="hot-static"),
        ),
    ),
    # The resizable tier under a diurnal cycle, scaled ahead of the peak.
    ScenarioSpec(
        name="autoscale-diurnal",
        num_rounds=8,
        workload=WorkloadMixSpec(num_requests=96),
        arrival=ArrivalSpec(kind="diurnal", utilization=2.5),
        tier=TierSpec(
            shards=1,
            router_kind="consistent-hash",
            admission=AdmissionSpec(max_queue_depth=6, shed_policy="drop"),
            autoscaler=AutoscalerSpec(enabled=True, policy="predictive"),
        ),
    ),
    # Priority queues under bursty overload: P1 jumps the queue on two
    # shards with two warm slots per function, nothing shed.
    ScenarioSpec(
        name="priority-overload",
        num_rounds=8,
        workload=WorkloadMixSpec(num_requests=64),
        arrival=ArrivalSpec(kind="bursty", utilization=2.0),
        tier=TierSpec(
            shards=2,
            router_kind="consistent-hash",
            function_concurrency=2,
            queue_discipline="priority",
        ),
    ),
    # Raw speed: one plain tier under a million Poisson arrivals with
    # streaming metrics, served on the vectorized fast path — the
    # engine-core benchmark scenario (benchmarks/bench_million.py gates its
    # wall time at single-digit seconds).
    ScenarioSpec(
        name="million-request",
        num_rounds=12,
        workload=WorkloadMixSpec(num_requests=1_000_000),
        arrival=ArrivalSpec(kind="poisson", utilization=0.8),
        metrics="streaming",
    ),
    # Fault injection with the closed-loop repair: a three-shard JSQ tier
    # (load-balanced, so capacity genuinely matters) loses a shard mid-run;
    # the remediation controller detects the capacity loss, shadow-verifies
    # re-adding it, and actuates.
    ScenarioSpec(
        name="fault-recovery",
        num_rounds=8,
        workload=WorkloadMixSpec(num_requests=96),
        arrival=ArrivalSpec(kind="poisson", utilization=0.7),
        tier=TierSpec(
            shards=3,
            router_kind="jsq",
            admission=AdmissionSpec(max_queue_depth=8, shed_policy="drop"),
        ),
        faults=(FaultSpec(kind="shard-crash", onset_seconds=30.0, magnitude=1.0),),
        remediation=RemediationSpec(
            enabled=True, control_interval_seconds=5.0, shadow_requests=36
        ),
    ),
    # Multi-tenant SLO isolation: a well-behaved steady Poisson tenant
    # shares one warm slot with a bursty noisy neighbour offering twice its
    # arrival rate.  Under WFQ/DRR the steady tenant's 2:1 weight bounds its
    # p99 under its own SLO (zero violations at seed 7); sweep
    # tier.queue_discipline=fifo,wfq,drr (repro.cli run-tenants) to watch
    # FIFO hand the whole queue to the burst and push the steady tenant to
    # ~2x its SLO.
    ScenarioSpec(
        name="noisy-neighbor",
        num_rounds=8,
        tier=TierSpec(
            shards=1,
            function_concurrency=1,
            queue_discipline="wfq",
            admission=AdmissionSpec(max_queue_depth=16, shed_policy="drop"),
        ),
        tenants=(
            TenantSpec(
                name="steady",
                num_requests=48,
                arrival="poisson",
                utilization=0.5,
                slo_multiplier=10.0,
                weight=2.0,
            ),
            TenantSpec(
                name="bursty",
                num_requests=64,
                arrival="bursty",
                utilization=1.0,
                slo_multiplier=4.0,
                weight=1.0,
            ),
        ),
    ),
):
    register_scenario(_spec)

del _spec
