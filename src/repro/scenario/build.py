"""Building and running the serving stack a :class:`ScenarioSpec` describes.

:func:`build_tier` is the topology factory: it turns a validated spec into
the right stack — analytic ``FLStore`` shards behind an ``EngineFLStore``
facade, optionally a ``ShardedEngineFLStore`` routing front door, optionally
an ``Autoscaler`` control loop — without running anything.  :func:`run`
serves the spec's workload mix through that stack open-loop and returns a
:class:`RunReport`, the typed wrapper over the engine's
:func:`~repro.engine.flstore.build_load_report` with the conservation
invariant (``served + degraded + shed == offered``) asserted on every run.

Both are pure functions of the spec: same spec, same virtual timeline, same
report — which is what lets the sweep layer fan cells out to worker
processes and what pins the legacy ``run_*_sweep`` entrypoints byte-
identical to their pre-spec outputs.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, replace

import numpy as np

from repro.analysis import setup_cache
from repro.analysis.runner import prepare_setup
from repro.config import SimulationConfig
from repro.core.flstore import build_default_flstore
from repro.engine.autoscale import (
    AutoscaleConfig,
    Autoscaler,
    AutoscaleSummary,
    ScaleEvent,
    make_autoscaler_policy,
)
from repro.engine.faults import (
    FaultClause,
    FaultPlan,
    RecoveryMetrics,
    compute_recovery_metrics,
)
from repro.engine.flstore import EngineFLStore, LoadReport
from repro.engine.remediate import (
    RemediationConfig,
    RemediationController,
    RemediationSummary,
)
from repro.engine.sharded import ShardedEngineFLStore
from repro.engine.vectorized import fast_path_eligible, run_fast_path
from repro.routing import make_router
from repro.scenario.spec import ScenarioSpec
from repro.traces.arrivals import make_arrival_process


def paper_experiment_config(model_name: str, seed: int = 7) -> SimulationConfig:
    """The paper's evaluation configuration (reduced weight dimension).

    The single definition shared by the figure experiments
    (``repro.analysis.experiments``) and the scenario layer, so both draw on
    the same calibrations and setup snapshots — and can never drift apart.
    """
    return SimulationConfig.paper(model_name=model_name, seed=seed).with_job(reduced_dim=64)


def base_config(spec: ScenarioSpec) -> SimulationConfig:
    """The paper-evaluation config of the spec, before tier knobs."""
    return paper_experiment_config(spec.model, seed=spec.seed)


def scenario_config(spec: ScenarioSpec) -> SimulationConfig:
    """The full simulation config: base config plus the spec's tier knobs."""
    config = base_config(spec)
    return replace(
        config,
        serverless=replace(
            config.serverless,
            max_queue_depth=spec.tier.admission.max_queue_depth,
            shed_policy=spec.tier.admission.shed_policy,
            function_concurrency=spec.tier.function_concurrency,
            queue_discipline=spec.tier.queue_discipline,
        ),
    )


# Calibration memo: E[S] is a pure function of its key, and one sweep (or
# one CI smoke over many specs sharing a mix) asks for the same value
# repeatedly.  Obeys the setup-cache enable switch like every other memo.
_calibration_cache: dict[tuple, float] = {}


def clear_calibration_cache() -> None:
    """Drop memoized service-time calibrations (used by perf A/B runs)."""
    _calibration_cache.clear()


def calibrate_mean_service_seconds(
    model_name: str,
    workloads: tuple[str, ...],
    num_rounds: int,
    num_requests: int,
    seed: int,
) -> float:
    """Mean closed-loop service time of a workload mix (seconds).

    Serves the mix sequentially through a fresh engine (no queueing, no
    admission) and averages the per-request latency — the ``E[S]`` that
    turns a spec's ``utilization`` into an offered rate and its
    ``slo_multiplier`` into an SLO.  Uses the *base* config (tier knobs
    cannot change closed-loop service times, but keeping the config
    identical keeps the setup snapshots shared with the figure experiments).

    The closed-loop sample is capped at 256 requests: the mix cycles its
    signature classes within far fewer requests than that, so a longer
    sample only re-averages the same steady-state latencies — and a
    million-request spec must not pay a million-request calibration.  (Every
    pre-cap caller asked for <= 160, so capped and uncapped calibrations are
    identical where both exist.)
    """
    num_requests = min(num_requests, 256)
    key = (model_name, tuple(workloads), num_rounds, num_requests, seed)
    if setup_cache.enabled() and key in _calibration_cache:
        return _calibration_cache[key]
    config = paper_experiment_config(model_name, seed=seed)
    setup = prepare_setup(config, num_rounds=num_rounds, systems=("flstore",))
    engine = EngineFLStore(setup.flstore)
    trace = setup.generator.mixed_trace(list(workloads), num_requests)
    results = engine.run_closed_loop(trace)
    mean_service = float(np.mean([r.latency.total_seconds for r in results]))
    if setup_cache.enabled():
        _calibration_cache[key] = mean_service
    return mean_service


def calibrate(spec: ScenarioSpec) -> float:
    """The spec's calibrated mean service time (honouring any pinned value).

    Multi-tenant specs calibrate over the union of the tenants' workload
    mixes and their combined request count — one ``E[S]`` shared by every
    tenant's rate and SLO math, so tenant weights change scheduling, never
    the calibration.
    """
    if spec.mean_service_seconds is not None:
        return spec.mean_service_seconds
    if spec.tenants:
        workloads = tuple(
            sorted({name for tenant in spec.tenants for name in tenant.workloads})
        )
        num_requests = sum(tenant.num_requests for tenant in spec.tenants)
    else:
        workloads = spec.workload.workloads
        num_requests = spec.workload.num_requests
    return calibrate_mean_service_seconds(
        spec.model,
        workloads,
        spec.num_rounds,
        num_requests,
        spec.seed,
    )


@dataclass
class Tier:
    """A built (not yet run) serving stack plus the context to drive it."""

    spec: ScenarioSpec
    config: SimulationConfig
    #: ``EngineFLStore`` (plain topology) or ``ShardedEngineFLStore``.
    store: object
    #: Attached control loop, or ``None`` when the spec disables autoscaling.
    autoscaler: Autoscaler | None
    #: Trace generator seeded from the config (shard 0's catalog).
    generator: object
    #: The calibrated (or pinned) mean service time backing rate/SLO math.
    mean_service_seconds: float
    #: Scheduled fault clauses, or ``None`` when the spec is healthy.
    fault_plan: FaultPlan | None = None
    #: The remediation control loop, or ``None`` when the spec disables it.
    remediation: RemediationController | None = None

    @property
    def sharded(self) -> bool:
        """Whether the stack has a routing front door."""
        return isinstance(self.store, ShardedEngineFLStore)


def build_tier(spec: ScenarioSpec) -> Tier:
    """Construct the stack ``spec`` describes, without serving anything.

    * plain topology (``tier.router_kind is None``): one fully ingested
      ``FLStore`` behind an ``EngineFLStore`` facade;
    * sharded topology: ``tier.shards`` independent fully ingested stores
      behind a ``ShardedEngineFLStore`` with the named router;
    * autoscaled topology: the sharded tier made resizable (shard factory +
      warm-round replay) with an :class:`Autoscaler` attached — ``run``
      starts the control loop on the shared virtual timeline.

    A sharded tier with fault clauses or remediation enabled is also built
    resizable: a ``shard-crash`` retires a live shard and the controller's
    ``add-shard`` actuation re-provisions one, both of which need the shard
    factory.  Resizability alone changes no behavior — an untouched
    resizable tier runs byte-identical to a fixed one.
    """
    config = scenario_config(spec)
    mean_service = calibrate(spec)
    setups = [
        prepare_setup(config, num_rounds=spec.num_rounds, systems=("flstore",))
        for _ in range(spec.tier.shards)
    ]
    generator = setups[0].generator
    autoscaler = None
    resizable = spec.tier.autoscaler.enabled or bool(spec.faults) or spec.remediation.enabled
    if not spec.tier.sharded:
        store = EngineFLStore(setups[0].flstore)
    elif resizable:
        store = ShardedEngineFLStore(
            [setup.flstore for setup in setups],
            router=make_router(spec.tier.router_kind, spec.tier.shards),
            shard_factory=lambda: build_default_flstore(config),
            warm_rounds=setups[0].rounds,
            replication_factor=spec.tier.replication.factor,
            replication_policy=spec.tier.replication.policy,
            hot_threshold=spec.tier.replication.hot_threshold,
        )
        if spec.tier.autoscaler.enabled:
            autoscale_config = AutoscaleConfig(
                control_interval_seconds=spec.tier.autoscaler.control_interval_seconds
            )
            policy = make_autoscaler_policy(
                spec.tier.autoscaler.policy, autoscale_config, mean_service_seconds=mean_service
            )
            autoscaler = Autoscaler(store, policy, autoscale_config)
    else:
        store = ShardedEngineFLStore(
            [setup.flstore for setup in setups],
            router=make_router(spec.tier.router_kind, spec.tier.shards),
            replication_factor=spec.tier.replication.factor,
            replication_policy=spec.tier.replication.policy,
            hot_threshold=spec.tier.replication.hot_threshold,
        )
    if spec.tenants:
        store.configure_tenants(
            {tenant.name: tenant.weight for tenant in spec.tenants},
            {
                tenant.name: (
                    tenant.slo_multiplier * mean_service if tenant.slo_multiplier else None
                )
                for tenant in spec.tenants
            },
        )
    if autoscaler is not None and spec.tier.autoscaler.policy == "slo":
        # The SLO policy acts on violation deltas; arm tier-lifetime
        # violation counting against the spec's SLO (per-tenant SLOs, when
        # configured above, take precedence per tenant).
        store.watch_slo_seconds = (
            spec.slo_multiplier * mean_service if spec.slo_multiplier else None
        )
    fault_plan = None
    if spec.faults:
        clauses = [
            FaultClause(
                kind=clause.kind,
                onset_seconds=clause.onset_seconds,
                duration_seconds=clause.duration_seconds,
                magnitude=clause.magnitude,
                interval_seconds=clause.interval_seconds,
                zipf_exponent=clause.zipf_exponent,
            )
            for clause in spec.faults
        ]
        fault_plan = FaultPlan(store, clauses, seed=spec.seed)
    remediation = None
    if spec.remediation.enabled:
        remediation = RemediationController(
            store,
            config=RemediationConfig(
                control_interval_seconds=spec.remediation.control_interval_seconds,
                cooldown_seconds=spec.remediation.cooldown_seconds,
                max_actions=spec.remediation.max_actions,
            ),
            slo_seconds=spec.slo_multiplier * mean_service if spec.slo_multiplier else None,
            nominal_shards=spec.tier.shards,
            nominal_slots=spec.tier.function_concurrency,
            shadow_runner=make_shadow_runner(spec, mean_service),
        )
    return Tier(
        spec=spec,
        config=config,
        store=store,
        autoscaler=autoscaler,
        generator=generator,
        mean_service_seconds=mean_service,
        fault_plan=fault_plan,
        remediation=remediation,
    )


def make_shadow_runner(spec: ScenarioSpec, mean_service: float):
    """The bounded shadow simulation backing remediation verification.

    Returns ``callable(action, state) -> forecast`` for a
    :class:`~repro.engine.remediate.RemediationController`.  ``state`` is
    the tier's current degraded shape; the runner shrinks the scenario to
    the spec's shadow budget (``remediation.shadow_rounds`` x
    ``shadow_requests``), strips faults and control loops (so the shadow
    cannot recurse or re-fault), pins the calibration, and runs the
    degraded shape with and without the candidate action applied — same
    seed, so the arrival process replays the true arrival prefix.
    """
    base_overrides = {
        "faults": [],
        "remediation.enabled": False,
        "tier.autoscaler.enabled": False,
        "num_rounds": min(spec.num_rounds, spec.remediation.shadow_rounds),
        "workload.num_requests": min(
            spec.workload.num_requests, spec.remediation.shadow_requests
        ),
        "mean_service_seconds": mean_service,
    }

    def state_overrides(state: dict) -> dict:
        return {
            "tier.shards": state["shards"],
            "tier.function_concurrency": state["slots"],
            "tier.router_kind": state["router_kind"],
            "tier.admission.shed_policy": state["shed_policy"],
        }

    def shadow_runner(action: str, state: dict) -> dict:
        candidate = dict(state)
        if action == "add-shard":
            candidate["shards"] = state["shards"] + 1
        elif action == "promote-slots":
            candidate["slots"] = state["slots"] + 1
        elif action == "reroute-jsq":
            candidate["router_kind"] = "jsq"
        elif action == "shed-degrade":
            candidate["shed_policy"] = "degrade-to-objstore"
        baseline_spec = spec.with_overrides({**base_overrides, **state_overrides(state)})
        candidate_spec = spec.with_overrides(
            {**base_overrides, **state_overrides(candidate)}
        )
        baseline = run(baseline_spec)
        forecast = run(candidate_spec)
        return {
            "p99_baseline": baseline.load.p99_sojourn_seconds,
            "p99_candidate": forecast.load.p99_sojourn_seconds,
            "goodput_baseline": baseline.load.goodput_rps,
            "goodput_candidate": forecast.load.goodput_rps,
        }

    return shadow_runner


#: Schema version stamped into every serialized :class:`RunReport`.  Readers
#: tolerate unknown top-level keys and unknown ``load`` keys, so artifacts
#: written by a newer schema still load; bump this when a change is *not*
#: forward-compatible that way.
RUN_REPORT_SCHEMA_VERSION = 1


def attribute_warm_cost(tenant_rows: list[dict], total_cost: float) -> list[dict]:
    """Split a run's warm-capacity cost across tenants by share of served work.

    The warm-capacity integral is a tier-level quantity (capacity is shared;
    no slot belongs to a tenant), so attribution is proportional: each tenant
    carries the fraction of the cost matching its fraction of requests that
    actually consumed service (``served + requeued``; degraded and shed
    requests never occupied a warm slot).  An idle tier (nothing served)
    splits the cost evenly.  Returns new rows carrying ``warm_cost_share``
    and ``warm_cost_dollars``; shares sum to 1 and dollars to ``total_cost``.
    """
    weights = [row["served"] + row["requeued"] for row in tenant_rows]
    total = sum(weights)
    attributed = []
    for row, weight in zip(tenant_rows, weights):
        share = weight / total if total else 1.0 / len(tenant_rows)
        attributed.append(
            dict(row, warm_cost_share=share, warm_cost_dollars=total_cost * share)
        )
    return attributed


@dataclass
class RunReport:
    """The typed outcome of one scenario run.

    Wraps the engine's :class:`~repro.engine.flstore.LoadReport` with the
    scenario context (spec, calibration, offered rate), the tier-level
    accounting the sharded front door adds, and — when an autoscaler drove
    the run — its :class:`~repro.engine.autoscale.AutoscaleSummary`.
    Constructed only by :func:`run`, which has already asserted
    conservation, so a ``RunReport`` in hand means no request was lost.
    """

    spec: ScenarioSpec
    load: LoadReport
    mean_service_seconds: float
    slo_seconds: float | None
    offered_rate_rps: float
    conserved: bool
    cached_bytes: int
    live_keys: int
    warm_functions: int
    #: Requests routed to the hottest shard (``None`` for plain topologies):
    #: the hot-key imbalance measure the router comparison reads.
    max_shard_routed: int | None = None
    #: Hot-key replication accounting (replication-enabled tiers only):
    #: tracked hot keys, bytes held as tier replicas, arrivals served by a
    #: non-primary holder, and replica copies warmed by scheduled events.
    replicated_keys: int | None = None
    replica_bytes: int | None = None
    replica_hits: int | None = None
    replica_warm_events: int | None = None
    autoscale: AutoscaleSummary | None = None
    #: Fault accounting (``FaultPlan.summary()``), faulted runs only.
    faults: dict | None = None
    #: Remediation accounting, remediated runs only.
    remediation: RemediationSummary | None = None
    #: Windowed goodput analysis around the first fault onset, faulted runs only.
    recovery: RecoveryMetrics | None = None
    #: Per-tenant breakdown rows (``LoadReport.tenant_rows``), multi-tenant
    #: runs only.  Each row conserves ``served + requeued + degraded +
    #: shed == offered`` for its tenant, and carries that tenant's slice of
    #: the warm-capacity cost (``warm_cost_share`` / ``warm_cost_dollars``,
    #: see :func:`attribute_warm_cost`).
    tenants: list[dict] | None = None
    #: Total warm-capacity cost of the run in dollars (the autoscaler's
    #: provisioned-GB-seconds integral, or the static provisioned capacity
    #: times the horizon), multi-tenant runs only.
    warm_capacity_cost_dollars: float | None = None

    def row(self) -> dict:
        """One flat result row (tables, CSV/JSON export, sweep grids)."""
        spec = self.spec
        row: dict = {"scenario": spec.name, "shards": spec.tier.shards}
        if spec.tier.sharded:
            row["router"] = spec.tier.router_kind
        if self.autoscale is not None:
            row["autoscaler"] = self.autoscale.policy
        row["utilization"] = spec.arrival.utilization
        row.update(self.load.row())
        row["conserved"] = self.conserved
        if self.max_shard_routed is not None:
            row["max_shard_routed"] = self.max_shard_routed
            row["cached_bytes"] = self.cached_bytes
            row["live_keys"] = self.live_keys
            row["warm_functions"] = self.warm_functions
        if self.replicated_keys is not None:
            row["replicated_keys"] = self.replicated_keys
            row["replica_bytes"] = self.replica_bytes
            row["replica_hits"] = self.replica_hits
            row["replica_warm_events"] = self.replica_warm_events
        if self.autoscale is not None:
            row.update(
                {k: v for k, v in self.autoscale.row().items() if k != "autoscaler"}
            )
        if self.faults is not None:
            row["fault_clauses"] = self.faults["fault_clauses"]
            row["fault_events"] = self.faults["fault_events"]
        if self.recovery is not None:
            row.update(self.recovery.row())
        if self.remediation is not None:
            row.update(self.remediation.row())
        if self.warm_capacity_cost_dollars is not None:
            row["warm_capacity_cost_dollars"] = self.warm_capacity_cost_dollars
        if self.tenants:
            for tenant_row in self.tenants:
                name = tenant_row["tenant"]
                row[f"{name}_p99"] = tenant_row["p99_sojourn_seconds"]
                row[f"{name}_share"] = tenant_row["service_share"]
                row[f"{name}_violations"] = tenant_row["violation_rate"]
                if "warm_cost_dollars" in tenant_row:
                    row[f"{name}_warm_cost"] = tenant_row["warm_cost_dollars"]
        return row

    # -------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        """A stable, typed, JSON-ready view of this report.

        ``None``-valued optional sections are omitted (a plain-topology
        report carries no sharded columns at all), ``outcomes`` are never
        serialized (reports round-trip; raw rows do not), and nested
        summaries flatten to plain dicts — so
        ``RunReport.from_dict(report.to_dict())`` rebuilds an equivalent
        report and ``to_dict`` of the rebuilt report is byte-identical.
        """
        load = dataclasses.asdict(dataclasses.replace(self.load, outcomes=[]))
        del load["outcomes"]
        data: dict = {
            "schema_version": RUN_REPORT_SCHEMA_VERSION,
            "spec": self.spec.to_dict(),
            "load": load,
            "mean_service_seconds": self.mean_service_seconds,
            "slo_seconds": self.slo_seconds,
            "offered_rate_rps": self.offered_rate_rps,
            "conserved": self.conserved,
            "cached_bytes": self.cached_bytes,
            "live_keys": self.live_keys,
            "warm_functions": self.warm_functions,
        }
        if self.slo_seconds is None:
            del data["slo_seconds"]
        for key in (
            "max_shard_routed",
            "replicated_keys",
            "replica_bytes",
            "replica_hits",
            "replica_warm_events",
            "faults",
            "tenants",
            "warm_capacity_cost_dollars",
        ):
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        if self.autoscale is not None:
            data["autoscale"] = dataclasses.asdict(self.autoscale)
        if self.remediation is not None:
            summary = dataclasses.asdict(self.remediation)
            del summary["records"]
            del summary["anomalies"]
            data["remediation"] = summary
        if self.recovery is not None:
            data["recovery"] = dataclasses.asdict(self.recovery)
        return data

    def to_json(self, indent: int = 2) -> str:
        """The :meth:`to_dict` view serialized as JSON."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "RunReport":
        """Rebuild a typed report from a :meth:`to_dict` payload.

        The rebuilt report carries empty ``outcomes`` and (for remediated
        runs) empty remediation record/anomaly lists — everything
        :meth:`to_dict` serializes round-trips exactly.  Loading is
        forward-compatible: unknown top-level keys and unknown ``load`` keys
        (artifacts written by a newer ``schema_version``) are ignored rather
        than rejected, so a recorded fleet survives schema growth.
        """
        autoscale = None
        if "autoscale" in data:
            payload = dict(data["autoscale"])
            payload["events"] = [ScaleEvent(**event) for event in payload.get("events", [])]
            autoscale = AutoscaleSummary(**payload)
        remediation = None
        if "remediation" in data:
            remediation = RemediationSummary(**data["remediation"])
        recovery = None
        if "recovery" in data:
            recovery = RecoveryMetrics(**data["recovery"])
        load_fields = {field.name for field in dataclasses.fields(LoadReport)} - {"outcomes"}
        load = {key: value for key, value in data["load"].items() if key in load_fields}
        return cls(
            spec=ScenarioSpec.from_dict(data["spec"]),
            load=LoadReport(**load, outcomes=[]),
            mean_service_seconds=data["mean_service_seconds"],
            slo_seconds=data.get("slo_seconds"),
            offered_rate_rps=data["offered_rate_rps"],
            conserved=data["conserved"],
            cached_bytes=data["cached_bytes"],
            live_keys=data["live_keys"],
            warm_functions=data["warm_functions"],
            max_shard_routed=data.get("max_shard_routed"),
            replicated_keys=data.get("replicated_keys"),
            replica_bytes=data.get("replica_bytes"),
            replica_hits=data.get("replica_hits"),
            replica_warm_events=data.get("replica_warm_events"),
            autoscale=autoscale,
            faults=data.get("faults"),
            remediation=remediation,
            recovery=recovery,
            tenants=data.get("tenants"),
            warm_capacity_cost_dollars=data.get("warm_capacity_cost_dollars"),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        """Rebuild a typed report from a :meth:`to_json` string."""
        return cls.from_dict(json.loads(text))


def _merge_tenant_traces(spec: ScenarioSpec, tier: Tier, mean_service: float):
    """Time-merge every tenant's trace into one open-loop submission block.

    Each tenant draws its own deterministic trace
    (:meth:`~repro.traces.generator.RequestTraceGenerator.tenant_trace`) and
    its own arrival process at ``rate_rps`` or ``utilization / E[S]``,
    seeded per tenant so one tenant's knobs never perturb another's stream.
    The merged block is sorted by arrival instant (ties in spec tenant
    order), carries each tenant's spec ``priority``, and reports the
    aggregate offered rate.
    """
    merged: list[tuple[float, int, object, float]] = []
    total_rate = 0.0
    for index, tenant in enumerate(spec.tenants):
        trace = tier.generator.tenant_trace(
            tenant.name, list(tenant.workloads), tenant.num_requests
        )
        if tenant.rate_rps is not None:
            tenant_rate = tenant.rate_rps
        else:
            tenant_rate = tenant.utilization / mean_service
        total_rate += tenant_rate
        process = make_arrival_process(
            tenant.arrival, tenant_rate, seed=spec.seed + index + 1
        )
        for at, request in zip(process.times(len(trace)), trace):
            merged.append((float(at), index, request, tenant.priority))
    merged.sort(key=lambda item: (item[0], item[1]))
    trace = [item[2] for item in merged]
    arrivals = [item[0] for item in merged]
    priorities = [item[3] for item in merged]
    return trace, arrivals, priorities, total_rate


def run(spec: ScenarioSpec) -> RunReport:
    """Build the spec's stack, serve its mix open-loop, and report.

    The run replays the spec's deterministic workload mix with arrival
    instants drawn from the spec's process at ``utilization / E[S]`` (or the
    explicit ``rate_rps``), with keep-alive daemons live and — if the spec
    enables one — the autoscaler's control loop ticking on the same virtual
    timeline.  Conservation is asserted before the report is returned: a
    tier (resizing or not) must account for every offered request exactly
    once, as served, degraded, or shed.
    """
    tier = build_tier(spec)
    mean_service = tier.mean_service_seconds
    slo_seconds = spec.slo_multiplier * mean_service if spec.slo_multiplier else None
    if spec.tenants:
        trace, arrivals, priorities, rate = _merge_tenant_traces(spec, tier, mean_service)
    elif spec.arrival.rate_rps is not None:
        rate = spec.arrival.rate_rps
    else:
        rate = spec.arrival.utilization / mean_service
    if fast_path_eligible(spec):
        # The closed-form queueing path: no per-request objects, no event
        # loop — this is what makes million-request specs single-digit
        # seconds (see repro.engine.vectorized for what it approximates).
        arrival_process = make_arrival_process(spec.arrival.kind, rate, seed=spec.seed)
        report = run_fast_path(
            tier.store, spec, arrival_process, slo_seconds, label=spec.arrival.kind
        )
    else:
        if not spec.tenants:
            arrival_process = make_arrival_process(spec.arrival.kind, rate, seed=spec.seed)
            trace = tier.generator.mixed_trace(
                list(spec.workload.workloads), spec.workload.num_requests
            )
            arrivals = arrival_process.times(len(trace))
            priorities = None
        extras: dict = {}
        if priorities is not None:
            extras["priorities"] = priorities
        if tier.fault_plan is not None:
            extras["fault_plan"] = tier.fault_plan
        if tier.remediation is not None:
            extras["remediation"] = tier.remediation
        if tier.autoscaler is not None:
            label = f"{spec.arrival.kind}/{spec.tier.autoscaler.policy}"
            report = tier.store.run_open_loop(
                trace,
                arrivals,
                label=label,
                keepalive=True,
                slo_seconds=slo_seconds,
                autoscaler=tier.autoscaler,
                metrics=spec.metrics,
                **extras,
            )
        else:
            report = tier.store.run_open_loop(
                trace,
                arrivals,
                label=spec.arrival.kind,
                keepalive=True,
                slo_seconds=slo_seconds,
                metrics=spec.metrics,
                **extras,
            )
    if not report.conserved:
        raise RuntimeError(
            f"conservation violated in scenario {spec.name!r}: "
            f"{report.served} served + {report.degraded} degraded + {report.shed} shed "
            f"!= {report.submitted} offered"
        )
    store = tier.store
    replication_row: dict = {}
    if tier.sharded:
        max_shard_routed = max(store.routed_counts)
        cached_bytes = store.cached_bytes
        live_keys = store.live_key_count
        warm_functions = store.warm_function_count
        if spec.tier.replication.enabled:
            replication_row = {
                "replicated_keys": store.replicated_keys,
                "replica_bytes": store.replica_cached_bytes,
                "replica_hits": store.replica_hits,
                "replica_warm_events": store.replica_warm_events,
            }
    else:
        max_shard_routed = None
        cached_bytes = store.flstore.cached_bytes
        live_keys = store.flstore.cluster.live_key_count
        warm_functions = store.flstore.warm_function_count
    tenant_rows = report.tenant_rows or None
    warm_capacity_cost = None
    if tenant_rows:
        # Warm capacity is a shared tier resource; for tenant runs, price the
        # whole run (the autoscaler's exact provisioned-GB-seconds integral
        # when one drove the run, else static capacity x horizon) and split
        # it across tenants by share of requests that consumed service.
        price = store.config.pricing.lambda_provisioned_cost_per_gb_second
        if tier.autoscaler is not None:
            warm_capacity_cost = tier.autoscaler.warm_capacity_cost_dollars
        elif tier.sharded:
            warm_capacity_cost = store.provisioned_gb * report.horizon_seconds * price
        else:
            warm_capacity_cost = store.platform.provisioned_gb * report.horizon_seconds * price
        tenant_rows = attribute_warm_cost(tenant_rows, warm_capacity_cost)
    recovery = None
    if tier.fault_plan is not None and tier.fault_plan.first_onset_seconds is not None:
        recovery = compute_recovery_metrics(
            report.outcomes,
            onset_seconds=tier.fault_plan.first_onset_seconds,
            end_seconds=float(max(arrivals)) if len(arrivals) else 0.0,
            window_seconds=spec.remediation.control_interval_seconds,
            baseline_goodput_rps=rate,
        )
    return RunReport(
        spec=spec,
        load=report,
        mean_service_seconds=mean_service,
        slo_seconds=slo_seconds,
        offered_rate_rps=rate,
        conserved=True,
        cached_bytes=cached_bytes,
        live_keys=live_keys,
        warm_functions=warm_functions,
        max_shard_routed=max_shard_routed,
        **replication_row,
        autoscale=tier.autoscaler.summary() if tier.autoscaler is not None else None,
        faults=tier.fault_plan.summary() if tier.fault_plan is not None else None,
        remediation=tier.remediation.summary() if tier.remediation is not None else None,
        recovery=recovery,
        tenants=tenant_rows,
        warm_capacity_cost_dollars=warm_capacity_cost,
    )
