"""Programmatic report generation from recorded fleet artifacts.

The read side of the fleet: :func:`generate_report` renders the evaluation
report — the registered-scenario headline table plus every sweep section
(shard, autoscale, fault-recovery, replication, tenants) — as Markdown and
per-experiment CSV files, **purely from stored artifacts**.  It never runs a
scenario: a missing or stale cell fails the report loudly with the exact
``run-missing`` command that repairs it, which is what keeps the report an
honest function of the recorded artifact set.

Determinism is a feature, not an accident: rows render in plan order,
numbers format through the shared table formatter, and nothing time- or
machine-dependent enters the output — so two reports over the same artifacts
are byte-identical, and a report regenerated after an incremental
``run-missing`` changes only where the artifacts changed.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.analysis.export import export_csv
from repro.analysis.tables import format_markdown_table
from repro.fleet.manifest import ArtifactStore, FleetError
from repro.fleet.runner import FleetCell, FleetExperiment, plan
from repro.scenario.build import RunReport

#: Filename of the rendered Markdown report inside the output directory.
REPORT_FILENAME = "report.md"


def fix_command(artifacts_dir: str | Path, smoke: bool = False) -> str:
    """The exact CLI invocation that repairs a failed report."""
    command = f"PYTHONPATH=src python -m repro.cli run-missing --artifacts {artifacts_dir}"
    if smoke:
        command += " --smoke"
    return command


def collect_rows(cells: Sequence[FleetCell], store: ArtifactStore) -> list[dict]:
    """One flat result row per cell, loaded from its recorded artifact.

    Each row leads with the cell's axes (so sweep tables read axis-first),
    then carries the stored report's :meth:`~repro.scenario.build.RunReport.
    row` projection.  Artifacts are parsed through
    :meth:`RunReport.from_json`, so schema-versioned payloads with unknown
    future keys still load.
    """
    rows = []
    for cell in cells:
        report = RunReport.from_json(store.load_cell_json(cell.cell_id))
        row: dict = {"scenario": cell.scenario}
        for key, value in cell.axes.items():
            row[key] = value
        row.update(report.row())
        rows.append(row)
    return rows


def generate_report(
    experiments: Sequence[FleetExperiment],
    store: ArtifactStore,
    out_dir: str | Path,
    smoke: bool = False,
) -> dict:
    """Render the fleet's Markdown + CSV report from stored artifacts only.

    Raises :class:`FleetError` — listing every missing/stale cell and the
    ``run-missing`` command that computes them — rather than silently
    re-running or rendering a partial report.  Returns a summary dict with
    the written paths and per-experiment row counts.
    """
    cells = plan(experiments, store, smoke=smoke)
    broken = [cell for cell in cells if cell.status != "fresh"]
    if broken:
        listing = "\n".join(f"  - {cell.cell_id} [{cell.status}]" for cell in broken)
        raise FleetError(
            f"{len(broken)} of {len(cells)} fleet cells have no fresh artifact:\n"
            f"{listing}\n"
            f"run them first:\n  {fix_command(store.root, smoke=smoke)}"
        )
    out_dir = Path(out_dir)
    csv_dir = out_dir / "csv"
    titles = {experiment.name: experiment.title for experiment in experiments}
    by_experiment: dict[str, list[FleetCell]] = {}
    for cell in cells:
        by_experiment.setdefault(cell.experiment, []).append(cell)

    lines = [
        "# Evaluation fleet report",
        "",
        f"Variant: `{cells[0].variant if cells else 'full'}` · "
        f"{len(cells)} cells across {len(by_experiment)} experiments, "
        "rendered entirely from recorded artifacts (no scenario was re-run).",
        "",
    ]
    csv_paths: dict[str, str] = {}
    row_counts: dict[str, int] = {}
    for experiment_name, experiment_cells in by_experiment.items():
        rows = collect_rows(experiment_cells, store)
        lines.append(f"## {titles.get(experiment_name, experiment_name)}")
        lines.append("")
        lines.append(format_markdown_table(rows))
        lines.append("")
        csv_path = export_csv(rows, csv_dir / f"{experiment_name}.csv")
        csv_paths[experiment_name] = str(csv_path)
        row_counts[experiment_name] = len(rows)

    out_dir.mkdir(parents=True, exist_ok=True)
    report_path = out_dir / REPORT_FILENAME
    report_path.write_text("\n".join(lines).rstrip("\n") + "\n", encoding="utf-8")
    return {
        "report": str(report_path),
        "csv": csv_paths,
        "cells": len(cells),
        "rows": row_counts,
    }
