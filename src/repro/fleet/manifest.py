"""The content-addressed run manifest and artifact store.

Every fleet cell (one :class:`~repro.scenario.spec.ScenarioSpec` run) is
pinned by three coordinates:

* the **spec hash** — :meth:`ScenarioSpec.content_hash`, SHA-256 of the
  spec's canonical JSON, so any semantic knob change (and nothing else)
  re-addresses the cell;
* the **seed** — recorded explicitly even though it is part of the spec
  hash, so the manifest is greppable by seed;
* the **code fingerprint** — :func:`code_fingerprint`, a SHA-256 over the
  ``repro`` package's own source, so a code change marks every recorded
  artifact stale and the next ``run-missing`` recomputes the fleet.

The manifest itself (``<artifacts>/manifest.json``) maps stable *cell ids*
(experiment/scenario/axes/variant — what a cell *is*) to the coordinates and
artifact path of its last recorded run (what it *was* when last computed).
Staleness is exactly a coordinate mismatch: an entry whose ``spec_hash`` or
``fingerprint`` no longer matches, or whose artifact file is gone, must be
re-run; everything else is reused.

Artifacts are versioned :meth:`~repro.scenario.build.RunReport.to_json`
documents written atomically (temp file + ``os.replace``), so a crashed or
interrupted fleet run never leaves a half-written artifact behind a manifest
entry.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.common.errors import ConfigurationError

#: Version stamp of the manifest file layout.
MANIFEST_VERSION = 1

#: Name of the manifest file inside an artifact directory.
MANIFEST_FILENAME = "manifest.json"


class FleetError(ConfigurationError):
    """A fleet operation cannot proceed (corrupt manifest, missing cells)."""


# ---------------------------------------------------------------------------
# Code fingerprint
# ---------------------------------------------------------------------------

_fingerprint_cache: str | None = None

#: Source files excluded from the fingerprint.  The scenario registry is
#: pure *data* — every registered spec is already content-addressed by its
#: own hash, so editing one registered spec must stale exactly that
#: scenario's cells, not (via a source-file hash) the whole fleet.
_FINGERPRINT_EXCLUDED = ("scenario/registry.py",)


def code_fingerprint() -> str:
    """SHA-256 over the ``repro`` package's source files (sorted, keyed).

    The fingerprint folds each file's package-relative path and contents, so
    renames count as changes.  ``scenario/registry.py`` is excluded (see
    :data:`_FINGERPRINT_EXCLUDED`); everything else — engine, scenario
    build/sweep, analysis, the fleet code itself — participates, which is
    what makes "re-run after a code change" automatic: the next
    ``run-missing`` sees every recorded cell stale-by-fingerprint.

    Cached per process (source files do not change under a running fleet).
    """
    global _fingerprint_cache
    if _fingerprint_cache is not None:
        return _fingerprint_cache
    import repro

    root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root).as_posix()
        if relative in _FINGERPRINT_EXCLUDED:
            continue
        digest.update(relative.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    _fingerprint_cache = digest.hexdigest()
    return _fingerprint_cache


def clear_fingerprint_cache() -> None:
    """Drop the memoized code fingerprint (tests that monkeypatch sources)."""
    global _fingerprint_cache
    _fingerprint_cache = None


def params_hash(params: Mapping[str, Any]) -> str:
    """SHA-256 of a flat parameter mapping's canonical JSON.

    The sweep-artifact analog of :meth:`ScenarioSpec.content_hash`: the
    ``--save-artifact`` surface keys a recorded sweep on its full flag set,
    so re-running the same sweep overwrites its artifact in place while any
    changed flag records a new one.
    """
    canonical = json.dumps(dict(params), sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + rename)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


# ---------------------------------------------------------------------------
# Manifest
# ---------------------------------------------------------------------------


@dataclass
class ManifestEntry:
    """One recorded cell: the coordinates and artifact of its last run."""

    experiment: str
    scenario: str
    axes: dict[str, Any]
    variant: str
    spec_hash: str
    seed: int
    fingerprint: str
    #: Artifact path relative to the manifest's artifact directory.
    artifact: str

    def to_dict(self) -> dict:
        return {
            "experiment": self.experiment,
            "scenario": self.scenario,
            "axes": self.axes,
            "variant": self.variant,
            "spec_hash": self.spec_hash,
            "seed": self.seed,
            "fingerprint": self.fingerprint,
            "artifact": self.artifact,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ManifestEntry":
        known = {
            "experiment",
            "scenario",
            "axes",
            "variant",
            "spec_hash",
            "seed",
            "fingerprint",
            "artifact",
        }
        return cls(**{key: value for key, value in data.items() if key in known})


@dataclass
class RunManifest:
    """The manifest file: cell id -> :class:`ManifestEntry`, plus recorded sweeps."""

    root: Path
    cells: dict[str, ManifestEntry] = field(default_factory=dict)
    #: ``--save-artifact`` records: sweep id -> {command, params, params_hash,
    #: fingerprint, artifact}.  Kept as plain dicts — sweeps are open-schema.
    sweeps: dict[str, dict] = field(default_factory=dict)

    @property
    def path(self) -> Path:
        return self.root / MANIFEST_FILENAME

    @classmethod
    def load(cls, root: str | Path) -> "RunManifest":
        """Read the manifest under ``root`` (an empty one if none exists)."""
        root = Path(root)
        manifest = cls(root=root)
        path = root / MANIFEST_FILENAME
        if not path.exists():
            return manifest
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise FleetError(f"corrupt run manifest {path}: {exc}") from exc
        if not isinstance(data, dict):
            raise FleetError(f"corrupt run manifest {path}: expected a JSON object")
        for cell_id, entry in data.get("cells", {}).items():
            manifest.cells[cell_id] = ManifestEntry.from_dict(entry)
        manifest.sweeps = dict(data.get("sweeps", {}))
        return manifest

    def save(self) -> Path:
        """Write the manifest atomically (stable key order, so re-saving an
        unchanged manifest is byte-identical)."""
        payload = {
            "manifest_version": MANIFEST_VERSION,
            "cells": {cell_id: entry.to_dict() for cell_id, entry in self.cells.items()},
            "sweeps": self.sweeps,
        }
        _atomic_write_text(self.path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return self.path

    def artifact_path(self, entry: ManifestEntry) -> Path:
        """Absolute path of an entry's artifact file."""
        return self.root / entry.artifact


# ---------------------------------------------------------------------------
# Artifact store
# ---------------------------------------------------------------------------


class ArtifactStore:
    """Content-addressed artifact storage under one directory.

    The write side of the fleet: :meth:`record_cell` persists a run report
    and its manifest entry together (artifact first, manifest after, both
    atomic — a crash between the two leaves a re-runnable cell, never a
    dangling manifest entry), and :meth:`record_sweep` gives the legacy
    ``run-*`` sweep subcommands the same durability for their row lists
    (the ``--save-artifact`` flag).
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.manifest = RunManifest.load(self.root)

    def record_cell(
        self,
        cell_id: str,
        *,
        experiment: str,
        scenario: str,
        axes: Mapping[str, Any],
        variant: str,
        spec_hash: str,
        seed: int,
        artifact_relpath: str,
        report_json: str,
    ) -> ManifestEntry:
        """Persist one cell's report artifact and manifest entry."""
        entry = ManifestEntry(
            experiment=experiment,
            scenario=scenario,
            axes=dict(axes),
            variant=variant,
            spec_hash=spec_hash,
            seed=seed,
            fingerprint=code_fingerprint(),
            artifact=artifact_relpath,
        )
        _atomic_write_text(self.root / artifact_relpath, report_json)
        self.manifest.cells[cell_id] = entry
        self.manifest.save()
        return entry

    def load_cell_json(self, cell_id: str) -> str:
        """The recorded artifact text of ``cell_id`` (raises when absent)."""
        entry = self.manifest.cells.get(cell_id)
        if entry is None:
            raise FleetError(f"no recorded artifact for cell {cell_id!r}")
        path = self.manifest.artifact_path(entry)
        if not path.exists():
            raise FleetError(f"manifest entry for {cell_id!r} points at missing {path}")
        return path.read_text(encoding="utf-8")

    def record_sweep(
        self,
        command: str,
        params: Mapping[str, Any],
        rows: list[dict],
        extra: Mapping[str, Any] | None = None,
    ) -> Path:
        """Persist one legacy sweep's rows as a versioned artifact.

        The artifact is keyed by ``command`` plus :func:`params_hash` of the
        full flag set; re-running the identical sweep overwrites in place.
        Returns the artifact's absolute path.
        """
        digest = params_hash(params)
        relpath = f"sweeps/{command}-{digest[:12]}.json"
        payload: dict[str, Any] = {
            "schema_version": 1,
            "kind": "sweep",
            "command": command,
            "params": dict(params),
            "fingerprint": code_fingerprint(),
            "rows": rows,
        }
        if extra:
            payload.update(dict(extra))
        _atomic_write_text(
            self.root / relpath, json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"
        )
        sweep_id = f"{command}@{digest[:12]}"
        self.manifest.sweeps[sweep_id] = {
            "command": command,
            "params_hash": digest,
            "fingerprint": code_fingerprint(),
            "artifact": relpath,
        }
        self.manifest.save()
        return self.root / relpath
