"""The evaluation fleet: content-addressed manifest, incremental runner,
programmatic report.

The package turns the scenario registry into a self-maintaining evaluation
fleet, in three layers:

* :mod:`repro.fleet.manifest` — the content-addressed run manifest and
  artifact store: cells keyed by ``(spec hash, seed, axes, code
  fingerprint)``, artifacts as versioned ``RunReport.to_json`` files written
  atomically, staleness defined as hash-or-fingerprint mismatch;
* :mod:`repro.fleet.runner` — fleet definitions (:func:`default_fleet`
  derives the standing fleet from the scenario registry) and the
  incremental runner: ``run_missing`` plans every cell, executes only the
  absent/stale ones in parallel, and records artifacts as they land;
* :mod:`repro.fleet.report` — the report generator: Markdown + CSV tables
  rendered purely from stored artifacts, failing loudly (with the exact
  repair command) on any missing cell.

Surfaced as ``repro.cli run-missing`` and ``repro.cli report``.
"""

from repro.fleet.manifest import (
    MANIFEST_FILENAME,
    MANIFEST_VERSION,
    ArtifactStore,
    FleetError,
    ManifestEntry,
    RunManifest,
    clear_fingerprint_cache,
    code_fingerprint,
    params_hash,
)
from repro.fleet.report import collect_rows, fix_command, generate_report
from repro.fleet.runner import (
    CELL_STATUSES,
    FleetCell,
    FleetExperiment,
    cell_id,
    classify,
    default_fleet,
    load_fleet,
    plan,
    plan_cells,
    run_missing,
)

__all__ = [
    "CELL_STATUSES",
    "MANIFEST_FILENAME",
    "MANIFEST_VERSION",
    "ArtifactStore",
    "FleetCell",
    "FleetError",
    "FleetExperiment",
    "ManifestEntry",
    "RunManifest",
    "cell_id",
    "classify",
    "clear_fingerprint_cache",
    "code_fingerprint",
    "collect_rows",
    "default_fleet",
    "fix_command",
    "generate_report",
    "load_fleet",
    "params_hash",
    "plan",
    "plan_cells",
    "run_missing",
]
