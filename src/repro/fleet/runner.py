"""The incremental fleet runner: plan the registry's cells, run what's stale.

A *fleet* is a list of :class:`FleetExperiment` rows — each one a set of
registered scenarios crossed with optional sweep axes.  :func:`default_fleet`
derives the standing fleet from the scenario registry: every registered
scenario as one headline cell, plus the canonical sweeps (shard count,
autoscaler policy, fault-recovery controller on/off, replication factor,
tenant queue discipline) the repo's evaluation reports.

:func:`plan` resolves a fleet to concrete :class:`FleetCell`\\ s and classifies
each against the recorded manifest — ``fresh`` (hash and fingerprint match,
artifact on disk), ``missing`` (never recorded or artifact gone),
``stale-spec`` (the spec changed), or ``stale-code`` (the code fingerprint
changed).  :func:`run_missing` executes exactly the non-fresh cells through
:func:`repro.scenario.build.run`, fanning independent cells out to worker
processes via the same :func:`~repro.analysis.runner.map_tasks` pool the
figure experiments use, and records each artifact atomically as it lands —
an interrupted fleet resumes where it stopped.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.analysis.runner import map_tasks
from repro.fleet.manifest import ArtifactStore, FleetError, code_fingerprint
from repro.scenario.build import run
from repro.scenario.registry import get_scenario, list_scenarios, smoke_spec
from repro.scenario.spec import ScenarioSpec
from repro.scenario.sweep import expand_axes

#: Cell statuses, in the order the plan table reports them.
CELL_STATUSES = ("fresh", "missing", "stale-spec", "stale-code")


@dataclass(frozen=True)
class FleetExperiment:
    """One fleet row: a set of scenarios crossed with optional sweep axes.

    ``scenarios=None`` means "every registered scenario at plan time" — the
    headline experiment tracks the registry without being edited.
    """

    name: str
    title: str
    scenarios: tuple[str, ...] | None = None
    #: Dotted spec paths -> value tuples (first axis varies slowest).
    axes: tuple[tuple[str, tuple[Any, ...]], ...] = ()

    def resolved_scenarios(self) -> tuple[str, ...]:
        if self.scenarios is None:
            return tuple(list_scenarios())
        return self.scenarios

    def axes_mapping(self) -> dict[str, tuple[Any, ...]]:
        return {key: values for key, values in self.axes}


@dataclass(frozen=True)
class FleetCell:
    """One planned run: a fully resolved spec plus its manifest coordinates."""

    experiment: str
    scenario: str
    #: This cell's point on the experiment's axes (dotted path -> value).
    axes: dict[str, Any] = field(hash=False)
    #: ``"full"`` or ``"smoke"`` — smoke cells are shrunk for CI and live
    #: under their own manifest ids, so a smoke fleet never evicts real runs.
    variant: str
    spec: ScenarioSpec = field(hash=False)
    spec_hash: str
    status: str = "missing"

    @property
    def cell_id(self) -> str:
        return cell_id(self.experiment, self.scenario, self.axes, self.variant)

    @property
    def artifact_relpath(self) -> str:
        """Stable artifact path for this cell (independent of the spec hash,
        so a re-run of a stale cell overwrites its artifact in place)."""
        parts = [_slug(self.scenario)]
        parts.extend(
            f"{_slug(key.rsplit('.', 1)[-1])}-{_slug(value)}" for key, value in self.axes.items()
        )
        if self.variant != "full":
            parts.append(self.variant)
        tag = hashlib.sha256(self.cell_id.encode("utf-8")).hexdigest()[:8]
        return f"{_slug(self.experiment)}/{'-'.join(parts)}-{tag}.json"


def cell_id(experiment: str, scenario: str, axes: Mapping[str, Any], variant: str) -> str:
    """The stable identity of a cell: what it *is*, not what it computed.

    Two plans of the same fleet produce the same ids regardless of code or
    spec edits — which is exactly what lets the manifest detect that a
    recorded cell went stale rather than treating it as a brand-new one.
    """
    suffix = ""
    if axes:
        suffix = "?" + "&".join(f"{key}={value}" for key, value in axes.items())
    return f"{experiment}/{scenario}{suffix}#{variant}"


def _slug(value: Any) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "-", str(value)).strip("-") or "x"


# ---------------------------------------------------------------------------
# Fleet definitions
# ---------------------------------------------------------------------------


def default_fleet() -> list[FleetExperiment]:
    """The standing evaluation fleet, derived from the scenario registry.

    Always includes the ``scenarios`` headline experiment (one cell per
    registered scenario); each canonical sweep joins only when its base
    scenario is registered, so a project that prunes the registry prunes the
    fleet with it.
    """
    experiments = [
        FleetExperiment(
            name="scenarios",
            title="Registered scenarios (one headline run each)",
            scenarios=None,
        )
    ]
    registered = set(list_scenarios())
    for experiment in (
        FleetExperiment(
            name="shard-sweep",
            title="Shard count sweep (sharded-burst)",
            scenarios=("sharded-burst",),
            axes=(("tier.shards", (1, 2, 4)),),
        ),
        FleetExperiment(
            name="autoscale",
            title="Autoscaler policy comparison (autoscale-diurnal)",
            scenarios=("autoscale-diurnal",),
            axes=(("tier.autoscaler.policy", ("none", "reactive", "predictive")),),
        ),
        FleetExperiment(
            name="fault-recovery",
            title="Fault recovery: remediation controller on vs off",
            scenarios=("fault-recovery",),
            axes=(("remediation.enabled", (True, False)),),
        ),
        FleetExperiment(
            name="replication",
            title="Hot-key replication factor (hotkey-replicated)",
            scenarios=("hotkey-replicated",),
            axes=(("tier.replication.factor", (1, 2)),),
        ),
        FleetExperiment(
            name="tenants",
            title="Tenant isolation by queue discipline (noisy-neighbor)",
            scenarios=("noisy-neighbor",),
            axes=(("tier.queue_discipline", ("fifo", "wfq", "drr")),),
        ),
    ):
        if set(experiment.resolved_scenarios()) <= registered:
            experiments.append(experiment)
    return experiments


def load_fleet(path: str | Path) -> list[FleetExperiment]:
    """Read a fleet definition from a JSON file.

    The file holds ``{"experiments": [{"name": ..., "scenarios": [...],
    "axes": {...}, "title": ...}, ...]}``; ``scenarios`` may be omitted (or
    ``null``) for "every registered scenario", and ``title`` defaults to the
    name.
    """
    path = Path(path)
    if not path.exists():
        raise FleetError(f"fleet file {path} does not exist")
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise FleetError(f"invalid fleet file {path}: {exc}") from exc
    rows = data.get("experiments") if isinstance(data, dict) else None
    if not isinstance(rows, list) or not rows:
        raise FleetError(f"fleet file {path} must hold a non-empty 'experiments' list")
    experiments = []
    seen: set[str] = set()
    for index, row in enumerate(rows):
        if not isinstance(row, dict) or "name" not in row:
            raise FleetError(f"fleet file {path}: experiments[{index}] needs a 'name'")
        unknown = sorted(set(row) - {"name", "title", "scenarios", "axes"})
        if unknown:
            raise FleetError(f"fleet file {path}: unknown experiment keys {unknown}")
        name = row["name"]
        if name in seen:
            raise FleetError(f"fleet file {path}: duplicate experiment name {name!r}")
        seen.add(name)
        scenarios = row.get("scenarios")
        axes = row.get("axes", {})
        if not isinstance(axes, dict):
            raise FleetError(f"fleet file {path}: experiments[{index}].axes must be an object")
        experiments.append(
            FleetExperiment(
                name=name,
                title=row.get("title", name),
                scenarios=None if scenarios is None else tuple(scenarios),
                axes=tuple((key, tuple(values)) for key, values in axes.items()),
            )
        )
    return experiments


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------


def plan_cells(experiments: Sequence[FleetExperiment], smoke: bool = False) -> list[FleetCell]:
    """Resolve a fleet to concrete cells (no manifest classification yet).

    Cells come out in deterministic order: experiments as listed, scenarios
    as resolved, axes in grid order (first axis slowest) — the order the
    report renders rows in.
    """
    cells: list[FleetCell] = []
    for experiment in experiments:
        axes = experiment.axes_mapping()
        for scenario_name in experiment.resolved_scenarios():
            base = get_scenario(scenario_name)
            keys = list(axes)
            grid = expand_axes(base, {key: list(values) for key, values in axes.items()})
            combos = _axis_combos(axes)
            for spec, combo in zip(grid, combos):
                if smoke:
                    spec = smoke_spec(spec)
                cells.append(
                    FleetCell(
                        experiment=experiment.name,
                        scenario=scenario_name,
                        axes=dict(zip(keys, combo)),
                        variant="smoke" if smoke else "full",
                        spec=spec,
                        spec_hash=spec.content_hash(),
                    )
                )
    return cells


def _axis_combos(axes: Mapping[str, Sequence[Any]]) -> list[tuple]:
    if not axes:
        return [()]
    return list(itertools.product(*axes.values()))


def classify(cells: Sequence[FleetCell], store: ArtifactStore) -> list[FleetCell]:
    """Each cell with its staleness status against the recorded manifest."""
    fingerprint = code_fingerprint()
    classified = []
    for cell in cells:
        entry = store.manifest.cells.get(cell.cell_id)
        if entry is None or not store.manifest.artifact_path(entry).exists():
            status = "missing"
        elif entry.spec_hash != cell.spec_hash:
            status = "stale-spec"
        elif entry.fingerprint != fingerprint:
            status = "stale-code"
        else:
            status = "fresh"
        classified.append(
            FleetCell(
                experiment=cell.experiment,
                scenario=cell.scenario,
                axes=cell.axes,
                variant=cell.variant,
                spec=cell.spec,
                spec_hash=cell.spec_hash,
                status=status,
            )
        )
    return classified


def plan(
    experiments: Sequence[FleetExperiment], store: ArtifactStore, smoke: bool = False
) -> list[FleetCell]:
    """Resolve and classify the fleet's cells against ``store``'s manifest."""
    return classify(plan_cells(experiments, smoke=smoke), store)


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def _run_cell(spec: ScenarioSpec) -> str:
    """One fleet cell (module-level so worker processes can pickle it)."""
    return run(spec).to_json()


def run_missing(
    experiments: Sequence[FleetExperiment],
    store: ArtifactStore,
    smoke: bool = False,
    workers: int | None = None,
    dry_run: bool = False,
) -> dict:
    """Execute the fleet's absent/stale cells; reuse everything fresh.

    Returns a summary dict: ``cells`` (one row per planned cell with its
    status and action), plus ``planned``/``ran``/``reused`` counts.  With
    ``dry_run=True`` nothing executes and nothing is written — the summary
    shows what a real run would do.
    """
    cells = plan(experiments, store, smoke=smoke)
    to_run = [cell for cell in cells if cell.status != "fresh"]
    pending = "would-run" if dry_run else "run"
    rows = [
        {
            "cell": cell.cell_id,
            "status": cell.status,
            "action": pending if cell.status != "fresh" else "reuse",
            "artifact": cell.artifact_relpath,
        }
        for cell in cells
    ]
    summary = {
        "planned": len(cells),
        "ran": 0,
        "reused": len(cells) - len(to_run),
        "stale": sum(1 for cell in cells if cell.status.startswith("stale")),
        "missing": sum(1 for cell in cells if cell.status == "missing"),
        "dry_run": dry_run,
        "cells": rows,
    }
    if dry_run or not to_run:
        return summary
    reports = map_tasks(_run_cell, [cell.spec for cell in to_run], workers=workers)
    for cell, report_json in zip(to_run, reports):
        store.record_cell(
            cell.cell_id,
            experiment=cell.experiment,
            scenario=cell.scenario,
            axes=cell.axes,
            variant=cell.variant,
            spec_hash=cell.spec_hash,
            seed=cell.spec.seed,
            artifact_relpath=cell.artifact_relpath,
            report_json=report_json,
        )
    summary["ran"] = len(to_run)
    for row in rows:
        if row["action"] == "run":
            row["action"] = "ran"
    return summary
