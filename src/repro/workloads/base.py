"""Workload abstraction: data requirements, computation, and compute-time model.

Every non-training application in the paper (Table 1) is expressed as a
:class:`Workload` that declares

* which taxonomy category it belongs to (:class:`PolicyClass`, P1-P4), which
  tells FLStore's Cache Engine which tailored caching policy to apply,
* which concrete metadata objects a request needs (``required_keys``), which
  the serving systems use to fetch data (baselines) or route requests to the
  right functions (FLStore), and
* the actual computation (``compute``) plus an analytic compute-time model
  (``compute_seconds``) calibrated to the per-workload execution times the
  paper measures on serverless functions (Figure 4: ~2.8 s average;
  Figure 12: e.g. 0.03 s cosine similarity, ~1 s filtering/scheduling,
  ~6 s clustering for EfficientNet-sized updates).
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.common.errors import WorkloadError
from repro.common.units import KB
from repro.fl.catalog import RoundCatalog
from repro.fl.keys import DataKey
from repro.fl.models import ModelSpec, ModelUpdate


class PolicyClass(enum.Enum):
    """Taxonomy categories of Table 1, named after their caching policies."""

    #: Individual client updates / the final aggregated model.
    P1_INDIVIDUAL = "P1"
    #: All client updates of a specific round.
    P2_ROUND = "P2"
    #: One client's updates across consecutive rounds.
    P3_ACROSS_ROUNDS = "P3"
    #: Configuration and performance metadata (hyperparameters, resources).
    P4_METADATA = "P4"


@dataclass(frozen=True)
class WorkloadRequest:
    """One non-training request submitted to a serving system."""

    request_id: str
    workload: str
    round_id: int
    client_id: int | None = None
    #: For across-round workloads: how many past rounds of history to examine.
    history_rounds: int = 2
    params: Mapping[str, Any] = field(default_factory=dict)
    #: The tenant this request belongs to (``None`` on single-tenant traces).
    tenant_id: str | None = None

    def __post_init__(self) -> None:
        if self.round_id < 0:
            raise WorkloadError(f"request {self.request_id}: round_id must be non-negative")
        if self.history_rounds < 1:
            raise WorkloadError(f"request {self.request_id}: history_rounds must be >= 1")


#: Reference model size the compute-time coefficients are calibrated against
#: (EfficientNetV2-Small, the paper's headline model).
_REFERENCE_SIZE_MB = 82.7


class Workload(abc.ABC):
    """Base class of every non-training workload."""

    #: Machine-friendly name used in requests, registries, and traces.
    name: str = "workload"
    #: Label used by the paper's figures (e.g. ``"Sched. (Cluster)"``).
    display_name: str = "Workload"
    #: Taxonomy category, which selects the FLStore caching policy (Table 1).
    policy_class: PolicyClass = PolicyClass.P2_ROUND
    #: Fixed per-request computation time on the reference serverless function.
    base_compute_seconds: float = 0.1
    #: Additional computation time per required object, for a reference-sized model.
    per_item_compute_seconds: float = 0.05
    #: Serialized size of the result written back after execution.
    result_size_bytes: int = 16 * KB

    # ------------------------------------------------------------ interface

    @abc.abstractmethod
    def required_keys(self, request: WorkloadRequest, catalog: RoundCatalog) -> list[DataKey]:
        """The metadata objects needed to serve ``request``."""

    @abc.abstractmethod
    def compute(self, request: WorkloadRequest, data: Mapping[DataKey, Any]) -> dict[str, Any]:
        """Execute the workload over ``data`` and return its result."""

    # ----------------------------------------------------- shared behaviour

    def compute_seconds(self, model_spec: ModelSpec, num_items: int) -> float:
        """Analytic computation time on the reference serverless function.

        Scales linearly with the number of required objects and with model
        size relative to EfficientNetV2-Small.
        """
        size_scale = model_spec.size_mb / _REFERENCE_SIZE_MB
        return self.base_compute_seconds + self.per_item_compute_seconds * num_items * size_scale

    def validate_data(self, request: WorkloadRequest, data: Mapping[DataKey, Any], keys: list[DataKey]) -> None:
        """Raise :class:`WorkloadError` if any required object is missing."""
        missing = [key for key in keys if key not in data]
        if missing:
            raise WorkloadError(
                f"request {request.request_id} ({self.name}): missing {len(missing)} required "
                f"objects, e.g. {missing[0]}"
            )

    # --------------------------------------------------------------- helpers

    @staticmethod
    def updates_from(data: Mapping[DataKey, Any], keys: list[DataKey]) -> list[ModelUpdate]:
        """Extract the :class:`ModelUpdate` objects referenced by ``keys`` in order."""
        return [data[key] for key in keys if key in data and isinstance(data[key], ModelUpdate)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Workload {self.name} ({self.policy_class.value})>"
