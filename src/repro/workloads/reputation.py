"""Client reputation / contribution calculation (policy P2).

Approximates per-client contribution to the round's aggregate with a
leave-one-out marginal-contribution score — a cheap proxy for the Shapley
value contribution measures cited in Table 1 (ShapleyFL and similar) — and
combines it with the client's reported local accuracy into a reputation
score in [0, 1].
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.fl.catalog import RoundCatalog
from repro.fl.keys import DataKey
from repro.workloads.base import PolicyClass, Workload, WorkloadRequest


class ReputationWorkload(Workload):
    """Compute leave-one-out contribution and reputation scores for a round."""

    name = "reputation"
    display_name = "Reputation calc."
    policy_class = PolicyClass.P2_ROUND
    base_compute_seconds = 0.5
    per_item_compute_seconds = 0.2

    def required_keys(self, request: WorkloadRequest, catalog: RoundCatalog) -> list[DataKey]:
        """Every client update of the requested round."""
        return [DataKey.update(cid, request.round_id) for cid in catalog.participants(request.round_id)]

    def compute(self, request: WorkloadRequest, data: Mapping[DataKey, Any]) -> dict[str, Any]:
        keys = sorted(k for k in data if k.is_update and k.round_id == request.round_id)
        updates = self.updates_from(data, keys)
        if len(updates) < 2:
            return {"round_id": request.round_id, "reputations": {}, "contributions": {}}
        matrix = np.stack([u.weights for u in updates])
        weights = np.array([float(u.metrics.get("num_samples", 1.0)) for u in updates])
        weights = weights / weights.sum()
        full_aggregate = weights @ matrix

        contributions: dict[int, float] = {}
        for i, update in enumerate(updates):
            mask = np.ones(len(updates), dtype=bool)
            mask[i] = False
            reduced_weights = weights[mask] / weights[mask].sum()
            without_i = reduced_weights @ matrix[mask]
            # Marginal contribution: how much the aggregate moves when the
            # client is removed (larger movement toward degradation = more
            # valuable client, negative alignment = harmful client).
            shift = full_aggregate - without_i
            alignment = float(
                np.dot(shift, full_aggregate)
                / ((np.linalg.norm(shift) or 1e-9) * (np.linalg.norm(full_aggregate) or 1e-9))
            )
            contributions[update.client_id] = alignment * float(np.linalg.norm(shift))

        values = np.array(list(contributions.values()))
        spread = values.max() - values.min() or 1e-9
        reputations = {}
        for update in updates:
            normalized = (contributions[update.client_id] - values.min()) / spread
            accuracy = float(update.metrics.get("local_accuracy", 0.5))
            reputations[update.client_id] = float(np.clip(0.6 * normalized + 0.4 * accuracy, 0.0, 1.0))
        return {
            "round_id": request.round_id,
            "contributions": contributions,
            "reputations": reputations,
            "top_client": max(reputations, key=reputations.get),
        }
