"""Model inference / serving (policy P1).

Serves predictions from the latest aggregated model.  In the paper this is
the canonical P1 workload: only the final (or latest) aggregated model is
needed, so FLStore caches exactly that object.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.common.rng import derive_rng
from repro.fl.catalog import RoundCatalog
from repro.fl.keys import DataKey
from repro.fl.models import ModelUpdate
from repro.workloads.base import PolicyClass, Workload, WorkloadRequest


class InferenceWorkload(Workload):
    """Run a batch of predictions against the round's aggregated model."""

    name = "inference"
    display_name = "Inference"
    policy_class = PolicyClass.P1_INDIVIDUAL
    base_compute_seconds = 0.4
    per_item_compute_seconds = 0.6

    def required_keys(self, request: WorkloadRequest, catalog: RoundCatalog) -> list[DataKey]:
        """Only the aggregated model of the requested round is needed."""
        del catalog
        return [DataKey.aggregate(request.round_id)]

    def compute(self, request: WorkloadRequest, data: Mapping[DataKey, Any]) -> dict[str, Any]:
        keys = [DataKey.aggregate(request.round_id)]
        self.validate_data(request, data, keys)
        aggregate: ModelUpdate = data[keys[0]]
        batch_size = int(request.params.get("batch_size", 64))
        rng = derive_rng(hash(request.request_id) % (2**31), "inference-batch")
        inputs = rng.normal(0.0, 1.0, size=(batch_size, aggregate.dim))
        logits = inputs @ aggregate.weights
        probabilities = 1.0 / (1.0 + np.exp(-logits))
        predictions = (probabilities >= 0.5).astype(int)
        return {
            "round_id": request.round_id,
            "batch_size": batch_size,
            "positive_fraction": float(predictions.mean()),
            "mean_confidence": float(np.abs(probabilities - 0.5).mean() * 2.0),
            "predictions": predictions.tolist(),
        }
