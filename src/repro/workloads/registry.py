"""Workload registry and the Table 1 taxonomy mapping.

The registry is the single place that maps workload names to implementations
and to the FLStore caching policy class each one requires (the taxonomy of
Table 1).  New workloads register themselves with :func:`register_workload`,
which is the extension point the paper describes for adding applications to
FLStore "by adding a new caching policy" or mapping onto an existing one.
"""

from __future__ import annotations

from repro.workloads.base import PolicyClass, Workload
from repro.workloads.clustering import ClusteringWorkload
from repro.workloads.cosine_similarity import CosineSimilarityWorkload
from repro.workloads.debugging import DebuggingWorkload
from repro.workloads.hyperparams import HyperparameterTuningWorkload
from repro.workloads.incentives import IncentivesWorkload
from repro.workloads.inference import InferenceWorkload
from repro.workloads.malicious_filtering import MaliciousFilteringWorkload
from repro.workloads.personalization import PersonalizationWorkload
from repro.workloads.reputation import ReputationWorkload
from repro.workloads.scheduling import ClusterSchedulingWorkload, PerformanceSchedulingWorkload

_REGISTRY: dict[str, Workload] = {}


def register_workload(workload: Workload, replace: bool = False) -> Workload:
    """Register ``workload`` under its ``name``.

    Parameters
    ----------
    workload:
        The workload instance to register.
    replace:
        Allow overwriting an existing registration (used by tests and by
        users extending a stock workload).
    """
    if workload.name in _REGISTRY and not replace:
        raise ValueError(f"workload {workload.name!r} is already registered")
    _REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    """Return the registered workload called ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown workload {name!r}; registered workloads: {known}") from exc


def list_workloads() -> list[str]:
    """Names of every registered workload, sorted."""
    return sorted(_REGISTRY)


def policy_for_workload(name: str) -> PolicyClass:
    """The Table 1 policy class of workload ``name``."""
    return get_workload(name).policy_class


def workload_priority(name: str) -> float:
    """Queue priority of workload ``name`` under the ``priority`` discipline.

    Derived from the Table 1 taxonomy: P1 (latency-critical serving) maps
    to 1.0 and P4 (batch metadata analytics) to 4.0; lower values are
    served first, so inference jumps the queue ahead of batch work when
    they contend for the same execution slots.
    """
    return float(get_workload(name).policy_class.value[1:])


# --------------------------------------------------------------------------
# Stock workloads (the ten applications of the paper's evaluation plus
# hyperparameter tuning from Table 1's P4 row).
# --------------------------------------------------------------------------

for _workload in (
    InferenceWorkload(),
    PersonalizationWorkload(),
    ClusteringWorkload(),
    DebuggingWorkload(),
    MaliciousFilteringWorkload(),
    IncentivesWorkload(),
    ReputationWorkload(),
    ClusterSchedulingWorkload(),
    PerformanceSchedulingWorkload(),
    CosineSimilarityWorkload(),
    HyperparameterTuningWorkload(),
):
    register_workload(_workload)


#: The Table 1 taxonomy: workload name -> policy class identifier.
TAXONOMY: dict[str, str] = {name: _REGISTRY[name].policy_class.value for name in _REGISTRY}

#: Figure-label mapping used by the analysis harness.
WORKLOAD_DISPLAY_NAMES: dict[str, str] = {name: _REGISTRY[name].display_name for name in _REGISTRY}

#: The ten workloads shown in Figures 1, 7, 8, 10 and 11.
EVALUATION_WORKLOADS: tuple[str, ...] = (
    "personalization",
    "clustering",
    "debugging",
    "malicious_filtering",
    "incentives",
    "scheduling_cluster",
    "reputation",
    "scheduling_perf",
    "cosine_similarity",
    "inference",
)

#: The six workloads of the Cache-Agg comparison (Figure 9).
CACHE_AGG_WORKLOADS: tuple[str, ...] = (
    "cosine_similarity",
    "scheduling_cluster",
    "inference",
    "malicious_filtering",
    "scheduling_perf",
    "incentives",
)

__all__ = [
    "CACHE_AGG_WORKLOADS",
    "EVALUATION_WORKLOADS",
    "TAXONOMY",
    "WORKLOAD_DISPLAY_NAMES",
    "get_workload",
    "list_workloads",
    "policy_for_workload",
    "register_workload",
    "workload_priority",
]
