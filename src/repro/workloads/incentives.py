"""Incentive / payout distribution (policy P4).

Computes token payouts for clients from their recent participation metadata
(accuracy, samples contributed, dropouts) over the most recent ``R`` rounds —
the TIFF-style incentive mechanisms of Table 1.  Only small metadata records
are needed, which is why the paper maps incentive monitoring to policy P4.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Mapping

import numpy as np

from repro.fl.catalog import RoundCatalog
from repro.fl.keys import DataKey
from repro.fl.metadata import ClientRoundMetadata
from repro.workloads.base import PolicyClass, Workload, WorkloadRequest


class IncentivesWorkload(Workload):
    """Distribute a per-round incentive budget according to recent contributions."""

    name = "incentives"
    display_name = "Incentives"
    policy_class = PolicyClass.P4_METADATA
    base_compute_seconds = 0.4
    per_item_compute_seconds = 0.01

    def required_keys(self, request: WorkloadRequest, catalog: RoundCatalog) -> list[DataKey]:
        """Metadata of every participant in the most recent ``R`` rounds."""
        recent = int(request.params.get("recent_rounds", 10))
        keys: list[DataKey] = []
        for round_id in catalog.recent_rounds(recent, up_to=request.round_id):
            keys.extend(DataKey.metadata(cid, round_id) for cid in catalog.metadata_clients(round_id))
        return keys

    def compute(self, request: WorkloadRequest, data: Mapping[DataKey, Any]) -> dict[str, Any]:
        records = [value for value in data.values() if isinstance(value, ClientRoundMetadata)]
        if not records:
            return {"round_id": request.round_id, "payouts": {}, "budget": 0.0}
        budget = float(request.params.get("budget_dollars", 100.0))
        scores: dict[int, float] = defaultdict(float)
        for record in records:
            contribution = record.local_accuracy * np.log1p(record.num_samples)
            if record.dropped_out:
                contribution *= 0.25
            scores[record.client_id] += float(contribution)
        total = sum(scores.values()) or 1e-9
        payouts = {cid: budget * score / total for cid, score in scores.items()}
        return {
            "round_id": request.round_id,
            "budget": budget,
            "payouts": payouts,
            "num_clients": len(payouts),
            "top_earner": max(payouts, key=payouts.get),
        }
