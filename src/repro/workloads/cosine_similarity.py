"""Pairwise cosine-similarity analysis of a round's client updates (policy P2).

Used by client-clustering and scheduling systems (Auxo and similar) to group
clients whose updates point in similar directions.  The computation is a
single vectorised pairwise-similarity matrix, which is why it is the fastest
workload in the paper's Figure 12 (~0.03 s of compute).
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.fl.catalog import RoundCatalog
from repro.fl.keys import DataKey
from repro.workloads.base import PolicyClass, Workload, WorkloadRequest


def pairwise_cosine(matrix: np.ndarray) -> np.ndarray:
    """Pairwise cosine-similarity matrix of the rows of ``matrix``."""
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms = np.where(norms == 0, 1.0, norms)
    normalized = matrix / norms
    return normalized @ normalized.T


class CosineSimilarityWorkload(Workload):
    """Compute the pairwise cosine-similarity matrix of a round's updates."""

    name = "cosine_similarity"
    display_name = "Cosine similarity"
    policy_class = PolicyClass.P2_ROUND
    base_compute_seconds = 0.01
    per_item_compute_seconds = 0.002

    def required_keys(self, request: WorkloadRequest, catalog: RoundCatalog) -> list[DataKey]:
        """Every client update of the requested round."""
        return [DataKey.update(cid, request.round_id) for cid in catalog.participants(request.round_id)]

    def compute(self, request: WorkloadRequest, data: Mapping[DataKey, Any]) -> dict[str, Any]:
        keys = sorted(k for k in data if k.is_update and k.round_id == request.round_id)
        updates = self.updates_from(data, keys)
        if not updates:
            return {"round_id": request.round_id, "clients": [], "mean_similarity": 0.0}
        matrix = np.stack([u.weights for u in updates])
        similarity = pairwise_cosine(matrix)
        off_diagonal = similarity[~np.eye(len(updates), dtype=bool)]
        return {
            "round_id": request.round_id,
            "clients": [u.client_id for u in updates],
            "similarity_matrix": similarity.tolist(),
            "mean_similarity": float(off_diagonal.mean()) if off_diagonal.size else 1.0,
            "min_similarity": float(off_diagonal.min()) if off_diagonal.size else 1.0,
        }
