"""The non-training FL workloads evaluated in the paper."""

from repro.workloads.base import PolicyClass, Workload, WorkloadRequest
from repro.workloads.registry import (
    TAXONOMY,
    WORKLOAD_DISPLAY_NAMES,
    get_workload,
    list_workloads,
    policy_for_workload,
)

__all__ = [
    "PolicyClass",
    "TAXONOMY",
    "WORKLOAD_DISPLAY_NAMES",
    "Workload",
    "WorkloadRequest",
    "get_workload",
    "list_workloads",
    "policy_for_workload",
]
