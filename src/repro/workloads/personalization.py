"""Personalized FL model construction (policy P2).

Builds per-group personalized models by grouping a round's clients by update
similarity and blending each group's mean update with the global aggregate
(the clustered-personalization family of approaches cited in Table 1).
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.fl.catalog import RoundCatalog
from repro.fl.keys import DataKey
from repro.workloads.base import PolicyClass, Workload, WorkloadRequest
from repro.workloads.clustering import kmeans


class PersonalizationWorkload(Workload):
    """Produce per-cluster personalized models from a round's updates."""

    name = "personalization"
    display_name = "Personalized"
    policy_class = PolicyClass.P2_ROUND
    base_compute_seconds = 0.8
    per_item_compute_seconds = 0.25

    def required_keys(self, request: WorkloadRequest, catalog: RoundCatalog) -> list[DataKey]:
        """Every client update of the requested round plus its aggregate."""
        keys = [DataKey.update(cid, request.round_id) for cid in catalog.participants(request.round_id)]
        keys.append(DataKey.aggregate(request.round_id))
        return keys

    def compute(self, request: WorkloadRequest, data: Mapping[DataKey, Any]) -> dict[str, Any]:
        update_keys = sorted(k for k in data if k.is_update and k.round_id == request.round_id)
        updates = self.updates_from(data, update_keys)
        aggregate_key = DataKey.aggregate(request.round_id)
        if not updates or aggregate_key not in data:
            return {"round_id": request.round_id, "groups": {}, "personalized_models": 0}
        aggregate = data[aggregate_key]
        mix = float(request.params.get("personalization_mix", 0.5))
        k = int(request.params.get("num_groups", 3))
        matrix = np.stack([u.weights for u in updates])
        labels, _ = kmeans(matrix, k, seed=request.round_id + 1)
        groups: dict[int, list[int]] = {}
        personalized_norms: dict[int, float] = {}
        for cluster in sorted(set(labels.tolist())):
            members = [updates[i] for i in range(len(updates)) if labels[i] == cluster]
            groups[cluster] = sorted(u.client_id for u in members)
            group_mean = np.stack([u.weights for u in members]).mean(axis=0)
            personalized = mix * group_mean + (1.0 - mix) * aggregate.weights
            personalized_norms[cluster] = float(np.linalg.norm(personalized))
        return {
            "round_id": request.round_id,
            "groups": groups,
            "personalized_models": len(groups),
            "personalized_model_norms": personalized_norms,
            "mix": mix,
        }
