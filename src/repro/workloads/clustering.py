"""Client clustering over a round's updates (policy P2).

Groups the clients of a round by the direction of their model updates using
k-means on the reduced weight vectors (the clustered-FL approach of Ghosh et
al. and Auxo).  Clustering is the heaviest non-training computation in the
paper's Figure 12 (~6 s for EfficientNet-sized updates).
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.common.rng import derive_rng
from repro.fl.catalog import RoundCatalog
from repro.fl.keys import DataKey
from repro.workloads.base import PolicyClass, Workload, WorkloadRequest


def kmeans(matrix: np.ndarray, k: int, seed: int = 0, max_iterations: int = 50) -> tuple[np.ndarray, np.ndarray]:
    """Plain k-means (Lloyd's algorithm) on the rows of ``matrix``.

    Returns ``(labels, centers)``.  Implemented here (rather than depending on
    scikit-learn) because the simulator only needs a small, deterministic
    clustering primitive.
    """
    n = matrix.shape[0]
    k = max(1, min(k, n))
    rng = derive_rng(seed, "kmeans-init")
    centers = matrix[rng.choice(n, size=k, replace=False)]
    labels = np.zeros(n, dtype=int)
    for _ in range(max_iterations):
        distances = np.linalg.norm(matrix[:, None, :] - centers[None, :, :], axis=2)
        new_labels = distances.argmin(axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for cluster in range(k):
            members = matrix[labels == cluster]
            if len(members):
                centers[cluster] = members.mean(axis=0)
    return labels, centers


class ClusteringWorkload(Workload):
    """Cluster a round's client updates into ``k`` groups."""

    name = "clustering"
    display_name = "Clustering"
    policy_class = PolicyClass.P2_ROUND
    base_compute_seconds = 1.0
    per_item_compute_seconds = 0.5

    def required_keys(self, request: WorkloadRequest, catalog: RoundCatalog) -> list[DataKey]:
        """Every client update of the requested round."""
        return [DataKey.update(cid, request.round_id) for cid in catalog.participants(request.round_id)]

    def compute(self, request: WorkloadRequest, data: Mapping[DataKey, Any]) -> dict[str, Any]:
        keys = sorted(k for k in data if k.is_update and k.round_id == request.round_id)
        updates = self.updates_from(data, keys)
        if not updates:
            return {"round_id": request.round_id, "assignments": {}, "num_clusters": 0}
        k = int(request.params.get("num_clusters", 3))
        matrix = np.stack([u.weights for u in updates])
        labels, centers = kmeans(matrix, k, seed=request.round_id)
        assignments = {u.client_id: int(labels[i]) for i, u in enumerate(updates)}
        sizes = np.bincount(labels, minlength=centers.shape[0]).tolist()
        inertia = float(
            sum(np.linalg.norm(matrix[i] - centers[labels[i]]) ** 2 for i in range(len(updates)))
        )
        return {
            "round_id": request.round_id,
            "assignments": assignments,
            "num_clusters": int(centers.shape[0]),
            "cluster_sizes": sizes,
            "inertia": inertia,
        }
