"""Client-selection scheduling workloads.

Two schedulers from the paper's evaluation:

* **Sched. (Cluster)** — clustered/tier-based scheduling (TiFL-style): groups
  a round's clients into performance tiers from their model updates and
  round metadata; mapped to policy **P2** because it needs every update of
  the round.
* **Sched. (Perf.)** — performance-aware guided selection (Oort-style):
  scores clients from their recent metadata (train time, accuracy,
  availability) to pick the next round's participants; mapped to policy
  **P4** because it only needs recent configuration/performance metadata.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Mapping

import numpy as np

from repro.fl.catalog import RoundCatalog
from repro.fl.keys import DataKey
from repro.fl.metadata import ClientRoundMetadata
from repro.workloads.base import PolicyClass, Workload, WorkloadRequest
from repro.workloads.clustering import kmeans


class ClusterSchedulingWorkload(Workload):
    """Tier clients of a round by update direction and training speed."""

    name = "scheduling_cluster"
    display_name = "Sched. (Cluster)"
    policy_class = PolicyClass.P2_ROUND
    base_compute_seconds = 0.3
    per_item_compute_seconds = 0.075

    def required_keys(self, request: WorkloadRequest, catalog: RoundCatalog) -> list[DataKey]:
        """All updates plus the metadata of the requested round."""
        participants = catalog.participants(request.round_id)
        keys = [DataKey.update(cid, request.round_id) for cid in participants]
        keys.extend(DataKey.metadata(cid, request.round_id) for cid in catalog.metadata_clients(request.round_id))
        return keys

    def compute(self, request: WorkloadRequest, data: Mapping[DataKey, Any]) -> dict[str, Any]:
        update_keys = sorted(k for k in data if k.is_update and k.round_id == request.round_id)
        updates = self.updates_from(data, update_keys)
        if not updates:
            return {"round_id": request.round_id, "tiers": {}, "num_tiers": 0}
        num_tiers = int(request.params.get("num_tiers", 3))
        matrix = np.stack([u.weights for u in updates])
        labels, _ = kmeans(matrix, num_tiers, seed=request.round_id + 17)

        train_seconds = {}
        for key, value in data.items():
            if isinstance(value, ClientRoundMetadata):
                train_seconds[value.client_id] = value.train_seconds

        tiers: dict[int, list[int]] = defaultdict(list)
        for i, update in enumerate(updates):
            tiers[int(labels[i])].append(update.client_id)
        tier_speed = {
            tier: float(np.mean([train_seconds.get(cid, 60.0) for cid in members]))
            for tier, members in tiers.items()
        }
        schedule = [cid for tier in sorted(tier_speed, key=tier_speed.get) for cid in sorted(tiers[tier])]
        return {
            "round_id": request.round_id,
            "tiers": {tier: sorted(members) for tier, members in tiers.items()},
            "tier_mean_train_seconds": tier_speed,
            "num_tiers": len(tiers),
            "schedule": schedule,
        }


class PerformanceSchedulingWorkload(Workload):
    """Score clients from recent metadata and propose the next round's participants."""

    name = "scheduling_perf"
    display_name = "Sched. (Perf.)"
    policy_class = PolicyClass.P4_METADATA
    base_compute_seconds = 0.35
    per_item_compute_seconds = 0.01

    def required_keys(self, request: WorkloadRequest, catalog: RoundCatalog) -> list[DataKey]:
        """Metadata of every participant in the most recent ``R`` rounds."""
        recent = int(request.params.get("recent_rounds", 10))
        keys: list[DataKey] = []
        for round_id in catalog.recent_rounds(recent, up_to=request.round_id):
            keys.extend(DataKey.metadata(cid, round_id) for cid in catalog.metadata_clients(round_id))
        return keys

    def compute(self, request: WorkloadRequest, data: Mapping[DataKey, Any]) -> dict[str, Any]:
        records = [value for value in data.values() if isinstance(value, ClientRoundMetadata)]
        if not records:
            return {"round_id": request.round_id, "selected_clients": [], "scores": {}}
        target = int(request.params.get("clients_to_select", 10))
        deadline = float(request.params.get("round_deadline_seconds", 120.0))

        utility: dict[int, list[float]] = defaultdict(list)
        for record in records:
            # Oort-style utility: statistical utility (accuracy) discounted by
            # how badly the client overshoots the round deadline.
            time_penalty = min(1.0, deadline / max(record.round_duration_seconds, 1e-3))
            score = record.local_accuracy * record.resources.availability * time_penalty
            if record.dropped_out:
                score *= 0.5
            utility[record.client_id].append(float(score))
        scores = {cid: float(np.mean(values)) for cid, values in utility.items()}
        ranked = sorted(scores, key=scores.get, reverse=True)
        return {
            "round_id": request.round_id,
            "scores": scores,
            "selected_clients": ranked[:target],
            "num_candidates": len(scores),
        }
