"""Malicious-client filtering (policy P2).

Screens every client update of a round for adversarial behaviour using two
complementary signals: the update's distance from the round's robust centre
(coordinate-wise median) and its cosine alignment with that centre.  Updates
that are both far and misaligned are flagged, mirroring the per-round
filtering systems cited by the paper (TIFF and similar).
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.fl.catalog import RoundCatalog
from repro.fl.keys import DataKey
from repro.workloads.base import PolicyClass, Workload, WorkloadRequest


class MaliciousFilteringWorkload(Workload):
    """Flag adversarial updates in a round via robust-distance and alignment tests."""

    name = "malicious_filtering"
    display_name = "Malicious Filtering"
    policy_class = PolicyClass.P2_ROUND
    base_compute_seconds = 0.3
    per_item_compute_seconds = 0.075

    #: Robust z-score beyond which a distance is considered anomalous.
    distance_threshold: float = 2.5
    #: Cosine alignment below which an update is considered misaligned.
    alignment_threshold: float = 0.0

    def required_keys(self, request: WorkloadRequest, catalog: RoundCatalog) -> list[DataKey]:
        """Every client update of the requested round."""
        return [DataKey.update(cid, request.round_id) for cid in catalog.participants(request.round_id)]

    def compute(self, request: WorkloadRequest, data: Mapping[DataKey, Any]) -> dict[str, Any]:
        keys = sorted(k for k in data if k.is_update and k.round_id == request.round_id)
        updates = self.updates_from(data, keys)
        if len(updates) < 2:
            return {"round_id": request.round_id, "flagged_clients": [], "scores": {}}
        matrix = np.stack([u.weights for u in updates])
        center = np.median(matrix, axis=0)
        distances = np.linalg.norm(matrix - center, axis=1)
        med = np.median(distances)
        mad = np.median(np.abs(distances - med)) or 1e-9
        robust_z = (distances - med) / (1.4826 * mad)

        center_norm = np.linalg.norm(center) or 1e-9
        row_norms = np.linalg.norm(matrix, axis=1)
        row_norms = np.where(row_norms == 0, 1e-9, row_norms)
        alignments = (matrix @ center) / (row_norms * center_norm)

        flagged = [
            updates[i].client_id
            for i in range(len(updates))
            if robust_z[i] > self.distance_threshold and alignments[i] < self.alignment_threshold
        ]
        scores = {
            updates[i].client_id: {
                "robust_z": float(robust_z[i]),
                "alignment": float(alignments[i]),
            }
            for i in range(len(updates))
        }
        return {
            "round_id": request.round_id,
            "flagged_clients": sorted(flagged),
            "scores": scores,
            "num_examined": len(updates),
        }
