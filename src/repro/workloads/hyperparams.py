"""Hyperparameter tracking and tuning (policy P4).

Aggregates the hyperparameter/performance metadata of the most recent ``R``
rounds to recommend the next round's configuration — the single-shot/federated
hyperparameter-tuning use cases of Table 1.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Mapping

import numpy as np

from repro.fl.catalog import RoundCatalog
from repro.fl.keys import DataKey
from repro.fl.metadata import ClientRoundMetadata
from repro.workloads.base import PolicyClass, Workload, WorkloadRequest


class HyperparameterTuningWorkload(Workload):
    """Recommend the next round's hyperparameters from recent round metadata."""

    name = "hyperparameter_tuning"
    display_name = "Hyperparam. tuning"
    policy_class = PolicyClass.P4_METADATA
    base_compute_seconds = 0.3
    per_item_compute_seconds = 0.008

    def required_keys(self, request: WorkloadRequest, catalog: RoundCatalog) -> list[DataKey]:
        """Metadata of every participant in the most recent ``R`` rounds."""
        recent = int(request.params.get("recent_rounds", 10))
        keys: list[DataKey] = []
        for round_id in catalog.recent_rounds(recent, up_to=request.round_id):
            keys.extend(DataKey.metadata(cid, round_id) for cid in catalog.metadata_clients(round_id))
        return keys

    def compute(self, request: WorkloadRequest, data: Mapping[DataKey, Any]) -> dict[str, Any]:
        records = [value for value in data.values() if isinstance(value, ClientRoundMetadata)]
        if not records:
            return {"round_id": request.round_id, "recommended": {}, "num_configurations": 0}

        # Group observed configurations by (learning-rate bucket, batch size)
        # and score each group by mean local accuracy.
        grouped: dict[tuple[float, int], list[float]] = defaultdict(list)
        for record in records:
            lr_bucket = float(10 ** np.round(np.log10(max(record.hyperparameters.learning_rate, 1e-6))))
            key = (lr_bucket, record.hyperparameters.batch_size)
            grouped[key].append(record.local_accuracy)
        scored = {key: float(np.mean(values)) for key, values in grouped.items()}
        best_key = max(scored, key=scored.get)
        return {
            "round_id": request.round_id,
            "num_configurations": len(scored),
            "configuration_scores": {f"lr~{k[0]:g}/bs{k[1]}": v for k, v in scored.items()},
            "recommended": {"learning_rate": best_key[0], "batch_size": best_key[1]},
            "expected_accuracy": scored[best_key],
        }
