"""FL debugging / provenance tracking (policy P3).

Follows a single client's model updates across consecutive rounds — the
FedDebug-style rewind/inspect workflow and the provenance/lineage use cases
of Table 1.  Each request examines the requested round plus a window of
preceding rounds for the same client and reports update drift, norm growth,
and differential behaviour against the corresponding aggregates, flagging
rounds where the client behaved anomalously.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.fl.catalog import RoundCatalog
from repro.fl.keys import DataKey
from repro.workloads.base import PolicyClass, Workload, WorkloadRequest


class DebuggingWorkload(Workload):
    """Trace one client's behaviour across a window of rounds."""

    name = "debugging"
    display_name = "Debugging"
    policy_class = PolicyClass.P3_ACROSS_ROUNDS
    base_compute_seconds = 1.0
    per_item_compute_seconds = 0.4

    #: Relative norm growth between consecutive rounds considered anomalous.
    norm_growth_threshold: float = 3.0

    def required_keys(self, request: WorkloadRequest, catalog: RoundCatalog) -> list[DataKey]:
        """The target client's updates for the requested round and its history window."""
        client_id = request.client_id
        if client_id is None:
            # Fall back to the first participant of the round so a malformed
            # request still resolves to a concrete data need.
            participants = catalog.participants(request.round_id)
            client_id = participants[0] if participants else 0
        rounds = catalog.rounds_for_client(client_id, up_to=request.round_id)
        window = rounds[-request.history_rounds:] if rounds else [request.round_id]
        keys = [DataKey.update(client_id, r) for r in window]
        keys.extend(DataKey.aggregate(r) for r in window)
        return keys

    def compute(self, request: WorkloadRequest, data: Mapping[DataKey, Any]) -> dict[str, Any]:
        update_keys = sorted(k for k in data if k.is_update)
        updates = self.updates_from(data, update_keys)
        if not updates:
            return {"client_id": request.client_id, "rounds": [], "anomalous_rounds": []}
        client_id = updates[0].client_id
        rounds = [u.round_id for u in updates]
        norms = [u.l2_norm() for u in updates]
        drifts = [0.0]
        for previous, current in zip(updates, updates[1:]):
            drifts.append(previous.distance_to(current))

        divergence: dict[int, float] = {}
        for update in updates:
            aggregate_key = DataKey.aggregate(update.round_id)
            if aggregate_key in data:
                divergence[update.round_id] = float(update.distance_to(data[aggregate_key]))

        anomalous = []
        for i in range(1, len(norms)):
            if norms[i - 1] > 0 and norms[i] / norms[i - 1] > self.norm_growth_threshold:
                anomalous.append(rounds[i])
        if divergence:
            values = np.array(list(divergence.values()))
            threshold = values.mean() + 2.0 * (values.std() or 1e-9)
            anomalous.extend(r for r, d in divergence.items() if d > threshold)

        return {
            "client_id": client_id,
            "rounds": rounds,
            "update_norms": norms,
            "round_to_round_drift": drifts,
            "divergence_from_aggregate": divergence,
            "anomalous_rounds": sorted(set(anomalous)),
        }
