"""Adapters for plugging FLStore into existing FL frameworks (Appendix D)."""

from repro.integrations.adapter import FrameworkAdapter, RoundEvent

__all__ = ["FrameworkAdapter", "RoundEvent"]
