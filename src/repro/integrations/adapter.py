"""Framework integration adapter.

The paper integrates FLStore with existing FL frameworks (Flower, IBMFL) by
asynchronously relaying the client updates and metadata the aggregator
receives into FLStore's cache, leaving training untouched (Appendix A,
"Modular design", and Appendix D, "FLStore Integration").

:class:`FrameworkAdapter` reproduces that integration surface without
depending on any external framework: a host framework (here, our
:class:`~repro.fl.trainer.FLJobSimulator`, or any code that can produce
per-client update vectors) reports round events through a small callback API
and the adapter converts them into :class:`~repro.fl.rounds.RoundRecord`
objects and feeds FLStore.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.common.errors import ConfigurationError
from repro.core.flstore import FLStore
from repro.fl.aggregation import fedavg
from repro.fl.metadata import ClientRoundMetadata, HyperParameters, ResourceProfile
from repro.fl.models import ModelUpdate, get_model_spec
from repro.fl.rounds import RoundRecord


@dataclass
class RoundEvent:
    """Everything a host framework reports about one finished round."""

    round_id: int
    #: ``client_id -> weight vector`` (any 1-D array-like).
    client_weights: Mapping[int, np.ndarray]
    #: Optional per-client training metrics (accuracy, loss, num_samples...).
    client_metrics: Mapping[int, Mapping[str, float]] = field(default_factory=dict)
    #: Optional pre-computed aggregate; FedAvg is applied when omitted.
    aggregate_weights: np.ndarray | None = None


class FrameworkAdapter:
    """Relays a host FL framework's round events into an FLStore instance."""

    def __init__(self, flstore: FLStore, model_name: str | None = None) -> None:
        self.flstore = flstore
        self.model_spec = get_model_spec(model_name or flstore.config.job.model_name)
        self.rounds_relayed = 0

    # ------------------------------------------------------------- callbacks

    def on_round_complete(self, event: RoundEvent) -> RoundRecord:
        """Convert ``event`` into a :class:`RoundRecord` and ingest it.

        Returns the ingested record so callers can inspect what was stored.
        """
        if not event.client_weights:
            raise ConfigurationError(f"round {event.round_id} reported no client updates")
        updates = {
            client_id: self._to_update(client_id, event, weights)
            for client_id, weights in event.client_weights.items()
        }
        if event.aggregate_weights is not None:
            reference = next(iter(updates.values()))
            aggregate = ModelUpdate(
                client_id=-1,
                round_id=event.round_id,
                model_name=self.model_spec.name,
                weights=np.asarray(event.aggregate_weights, dtype=float),
                size_bytes=reference.size_bytes,
            )
        else:
            aggregate = fedavg(list(updates.values()), round_id=event.round_id)
        metadata = {
            client_id: self._to_metadata(client_id, event)
            for client_id in event.client_weights
        }
        record = RoundRecord(
            round_id=event.round_id, updates=updates, aggregate=aggregate, metadata=metadata
        )
        self.flstore.ingest_round(record)
        self.rounds_relayed += 1
        return record

    # --------------------------------------------------------------- helpers

    def _to_update(self, client_id: int, event: RoundEvent, weights: np.ndarray) -> ModelUpdate:
        metrics = dict(event.client_metrics.get(client_id, {}))
        metrics.setdefault("num_samples", 1.0)
        return ModelUpdate(
            client_id=client_id,
            round_id=event.round_id,
            model_name=self.model_spec.name,
            weights=np.asarray(weights, dtype=float),
            size_bytes=self.model_spec.size_bytes,
            metrics=metrics,
        )

    def _to_metadata(self, client_id: int, event: RoundEvent) -> ClientRoundMetadata:
        metrics = event.client_metrics.get(client_id, {})
        return ClientRoundMetadata(
            client_id=client_id,
            round_id=event.round_id,
            hyperparameters=HyperParameters(
                learning_rate=float(metrics.get("learning_rate", 0.01)),
                local_epochs=int(metrics.get("local_epochs", 5)),
                batch_size=int(metrics.get("batch_size", 32)),
            ),
            resources=ResourceProfile(),
            local_accuracy=float(np.clip(metrics.get("local_accuracy", 0.0), 0.0, 1.0)),
            local_loss=float(metrics.get("local_loss", 1.0)),
            train_seconds=float(metrics.get("train_seconds", 0.0)),
            upload_seconds=float(metrics.get("upload_seconds", 0.0)),
            num_samples=max(1, int(metrics.get("num_samples", 1))),
        )
