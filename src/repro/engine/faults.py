"""Typed fault injection across the serving tier, scheduled as engine events.

The seed's :class:`~repro.serverless.faults.ZipfianFaultInjector` samples
function reclamations on the analytic serve path; everything built since —
the discrete-event engine, the sharded front door, the router, the
autoscaler — had never seen a fault.  This module closes that gap: a
:class:`FaultPlan` turns a list of typed :class:`FaultClause` rows (kind,
onset, duration, magnitude) into scheduled events on the tier's event loop,
so faults strike *mid-run*, interleaved with arrivals, control ticks, and
daemons on one virtual timeline.

Four fault kinds, chosen to hit different layers of the stack:

* ``shard-crash`` — the front door loses whole shards
  (:meth:`~repro.engine.sharded.ShardedEngineFLStore.crash_shard`): the ring
  rebuilds, queued waiters drain as ``requeued``, warm capacity is gone.
* ``reclamation-storm`` — correlated burst reclamations: every
  ``interval_seconds`` within the fault window, a Zipf-sized set of warm
  functions is force-reclaimed *across every shard*
  (:meth:`~repro.engine.flstore.EngineFLStore.force_reclaim`), draining
  their waiters as ``requeued`` and dropping cached keys.
* ``slow-shard`` — gray degradation: one shard's executions hold their
  slots ``magnitude`` times as long (``service_time_multiplier``), while
  its analytic latency records stay healthy — only sojourn times and queue
  depths reveal it.
* ``network-spike`` — a transient network fault: requests served inside the
  window have the communication components of their latency and cost scaled
  by ``magnitude`` (:func:`repro.network.model.spike_latency` /
  :func:`~repro.network.model.spike_cost`).

Every clause draws from an independently derived RNG stream
(``derive_rng(seed, f"fault-{kind}-{i}")``), so adding a clause never
perturbs the randomness of the others.  Conservation
(``served + degraded + shed == offered``, requeued counted inside served)
holds through every fault kind — the injected paths reuse the engine's
existing drain/shed semantics rather than inventing new exits.

:func:`compute_recovery_metrics` quantifies the damage: windowed goodput
against the pre-onset baseline gives a time-to-recovery and a goodput-dip
area, the two numbers the fault-recovery sweep compares with and without
the remediation controller (:mod:`repro.engine.remediate`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.common.errors import ConfigurationError
from repro.common.rng import derive_rng

#: The fault taxonomy (see the module docstring and EXPERIMENTS.md).
FAULT_KINDS: tuple[str, ...] = (
    "shard-crash",
    "reclamation-storm",
    "slow-shard",
    "network-spike",
)


@dataclass(frozen=True)
class FaultClause:
    """One typed fault: what breaks, when, for how long, how hard.

    ``magnitude`` is kind-specific: shards to crash (``shard-crash``),
    a scale factor on the Zipf-drawn reclamation count
    (``reclamation-storm``), or the service-time / network multiplier
    (``slow-shard`` / ``network-spike``).  ``interval_seconds`` spaces the
    bursts of a reclamation storm; ``zipf_exponent`` shapes each burst's
    size draw.
    """

    kind: str
    onset_seconds: float
    duration_seconds: float = 0.0
    magnitude: float = 1.0
    interval_seconds: float = 5.0
    zipf_exponent: float = 2.5

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.onset_seconds < 0:
            raise ConfigurationError(f"fault onset must be >= 0, got {self.onset_seconds}")
        if self.duration_seconds < 0:
            raise ConfigurationError(
                f"fault duration must be >= 0, got {self.duration_seconds}"
            )
        if self.magnitude <= 0:
            raise ConfigurationError(f"fault magnitude must be > 0, got {self.magnitude}")
        if self.interval_seconds <= 0:
            raise ConfigurationError(
                f"fault interval must be > 0, got {self.interval_seconds}"
            )
        if self.zipf_exponent <= 1.0:
            raise ConfigurationError(
                f"fault zipf_exponent must be > 1, got {self.zipf_exponent}"
            )
        if (
            self.kind in ("reclamation-storm", "slow-shard", "network-spike")
            and self.duration_seconds == 0
        ):
            raise ConfigurationError(
                f"a {self.kind} fault needs duration_seconds > 0 (a zero-length "
                "multiplier window would be a no-op)"
            )


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault event on the run's virtual timeline."""

    time: float
    clause_index: int
    kind: str
    detail: str


class FaultPlan:
    """Schedules a list of fault clauses as events on a tier's event loop.

    Works against either topology: a
    :class:`~repro.engine.sharded.ShardedEngineFLStore` front door (all four
    kinds) or a plain :class:`~repro.engine.flstore.EngineFLStore`
    (everything except ``shard-crash``, which needs a ring to lose a shard
    from).  ``start()`` is called by ``run_open_loop`` after arrivals are
    scheduled; onsets are relative to that instant.
    """

    def __init__(self, tier, clauses: Sequence[FaultClause], seed: int = 7) -> None:
        self.tier = tier
        self.clauses = list(clauses)
        self.seed = seed
        self.records: list[FaultRecord] = []
        self._rngs = [
            derive_rng(seed, f"fault-{clause.kind}-{index}")
            for index, clause in enumerate(self.clauses)
        ]
        self._started = False
        sharded = hasattr(tier, "crash_shard")
        for clause in self.clauses:
            if clause.kind == "shard-crash" and not sharded:
                raise ConfigurationError(
                    "a shard-crash fault needs a sharded tier (a plain engine "
                    "has no front door to lose a shard from)"
                )

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Schedule every clause's events (called once, at run start)."""
        if self._started:
            raise RuntimeError("a FaultPlan instance drives exactly one run")
        self._started = True
        base = self.tier.loop.now
        for index, clause in enumerate(self.clauses):
            if clause.kind == "shard-crash":
                self.tier.loop.schedule_at(
                    base + clause.onset_seconds, self._make_crash(index, clause)
                )
            elif clause.kind == "reclamation-storm":
                self.tier.loop.schedule_at(
                    base + clause.onset_seconds,
                    self._make_storm(index, clause, base + clause.onset_seconds),
                )
            elif clause.kind == "slow-shard":
                self.tier.loop.schedule_at(
                    base + clause.onset_seconds, self._make_slowdown(index, clause)
                )
            elif clause.kind == "network-spike":
                self.tier.loop.schedule_at(
                    base + clause.onset_seconds, self._make_spike(index, clause)
                )

    # ------------------------------------------------------------ fault kinds

    def _engines(self) -> list:
        """The engine facades the fault surface spans (active shards or self)."""
        active = getattr(self.tier, "active_shards", None)
        return list(active) if active is not None else [self.tier]

    def _record(self, index: int, kind: str, detail: str) -> None:
        self.records.append(FaultRecord(self.tier.loop.now, index, kind, detail))

    def _make_crash(self, index: int, clause: FaultClause):
        def _crash() -> None:
            for _ in range(max(int(clause.magnitude), 1)):
                shard_index = self.tier.crash_shard()
                self._record(index, clause.kind, f"shard {shard_index} crashed")

        return _crash

    def _make_storm(self, index: int, clause: FaultClause, onset: float):
        rng = self._rngs[index]
        window_end = onset + clause.duration_seconds

        def _burst() -> None:
            total = 0
            for engine in self._engines():
                warm = list(engine.flstore.cluster.function_ids())
                if not warm:
                    continue
                count = int(math.ceil(float(rng.zipf(clause.zipf_exponent)) * clause.magnitude))
                count = min(count, len(warm))
                chosen = rng.choice(warm, size=count, replace=False)
                reclaimed = engine.force_reclaim(str(fid) for fid in chosen)
                total += len(reclaimed)
            self._record(
                index, clause.kind, f"burst reclaimed {total} warm functions tier-wide"
            )
            next_at = self.tier.loop.now + clause.interval_seconds
            if next_at <= window_end:
                self.tier.loop.schedule_at(next_at, _burst)

        return _burst

    def _make_slowdown(self, index: int, clause: FaultClause):
        rng = self._rngs[index]

        def _degrade() -> None:
            engines = self._engines()
            victim = engines[int(rng.integers(len(engines)))]
            victim.service_time_multiplier = clause.magnitude
            self._record(
                index,
                clause.kind,
                f"service time x{clause.magnitude:g} for {clause.duration_seconds:g}s",
            )

            def _heal() -> None:
                victim.service_time_multiplier = 1.0
                self._record(index, clause.kind, "slow shard healed")

            self.tier.loop.schedule(clause.duration_seconds, _heal)

        return _degrade

    def _make_spike(self, index: int, clause: FaultClause):
        def _spike() -> None:
            # The spike hits every shard's network path at once (a regional
            # event, not a per-shard one); shards added mid-window join at
            # the healthy multiplier, as a freshly provisioned path would.
            victims = self._engines()
            for engine in victims:
                engine.network_fault_multiplier = clause.magnitude
            self._record(
                index,
                clause.kind,
                f"network x{clause.magnitude:g} for {clause.duration_seconds:g}s",
            )

            def _clear() -> None:
                for engine in victims:
                    engine.network_fault_multiplier = 1.0
                self._record(index, clause.kind, "network spike cleared")

            self.tier.loop.schedule(clause.duration_seconds, _clear)

        return _spike

    # ------------------------------------------------------------- reporting

    @property
    def first_onset_seconds(self) -> float | None:
        """The earliest clause onset (what recovery metrics measure from)."""
        if not self.clauses:
            return None
        return min(clause.onset_seconds for clause in self.clauses)

    def summary(self) -> dict:
        """Scalar accounting of the injected faults (for report rows)."""
        by_kind: dict[str, int] = {}
        for record in self.records:
            by_kind[record.kind] = by_kind.get(record.kind, 0) + 1
        return {
            "fault_clauses": len(self.clauses),
            "fault_events": len(self.records),
            "fault_events_by_kind": by_kind,
        }


# ---------------------------------------------------------------------------
# Recovery metrics
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RecoveryMetrics:
    """How a run's goodput weathered its faults.

    Goodput here counts strictly ``served`` completions (requeued and
    degraded requests finished, but not the way anyone wanted), against the
    pre-onset baseline rate.

    ``time_to_recovery_seconds`` is the *last* instant (measured from fault
    onset) at which the cumulative served rate since onset sat below
    ``recovery_fraction`` of the baseline — after it, the run has served, on
    average over the whole incident, at least that fraction of what a
    healthy tier would have.  The cumulative form makes the clock robust to
    sparse-traffic noise (a single empty 5-second window does not reset it),
    while a run that keeps re-dipping (an unremediated storm) or never
    regains capacity keeps its clock running to the horizon
    (``recovered=False``).  ``goodput_dip_area`` integrates the windowed
    deficit (``max(0, baseline - goodput) x window`` over windows of
    ``window_seconds``) across the post-onset horizon: the number of
    requests' worth of serving capacity the fault destroyed.
    """

    onset_seconds: float
    window_seconds: float
    baseline_goodput_rps: float
    time_to_recovery_seconds: float
    goodput_dip_area: float
    recovered: bool

    def row(self) -> dict:
        """The scalar columns of these metrics (for tables and JSON export)."""
        return {
            "time_to_recovery_seconds": self.time_to_recovery_seconds,
            "goodput_dip_area": self.goodput_dip_area,
            "baseline_goodput_rps": self.baseline_goodput_rps,
            "recovered": self.recovered,
        }


def compute_recovery_metrics(
    outcomes,
    onset_seconds: float,
    end_seconds: float,
    window_seconds: float = 5.0,
    recovery_fraction: float = 0.9,
    baseline_goodput_rps: float | None = None,
) -> RecoveryMetrics:
    """Windowed goodput analysis of ``outcomes`` around a fault onset.

    ``outcomes`` are the run's :class:`~repro.engine.flstore.EngineOutcome`
    rows; ``onset_seconds`` is the (absolute) virtual time of the first
    fault; ``end_seconds`` bounds the analysis horizon (typically the last
    arrival instant, so the post-run drain does not read as a dip).

    ``baseline_goodput_rps`` is what a healthy tier would serve.  The
    scenario layer passes the spec's offered rate (exact, and equal to the
    healthy serving rate whenever the tier keeps up); when ``None``, the
    baseline is estimated as the mean served rate over the pre-onset span —
    a noisy estimate when few requests complete before onset.
    """
    if window_seconds <= 0:
        raise ConfigurationError(f"window_seconds must be > 0, got {window_seconds}")
    if not 0 < recovery_fraction <= 1:
        raise ConfigurationError(
            f"recovery_fraction must be in (0, 1], got {recovery_fraction}"
        )
    served_times = sorted(
        o.completed_at for o in outcomes if o.disposition == "served"
    )
    if baseline_goodput_rps is not None:
        baseline = baseline_goodput_rps
    else:
        start = min((o.arrived_at for o in outcomes), default=0.0)
        pre_span = onset_seconds - start
        pre_count = sum(1 for t in served_times if t < onset_seconds)
        baseline = pre_count / pre_span if pre_span > 0 else 0.0
    horizon = end_seconds - onset_seconds
    if horizon <= 0 or baseline == 0.0:
        return RecoveryMetrics(
            onset_seconds=onset_seconds,
            window_seconds=window_seconds,
            baseline_goodput_rps=baseline,
            time_to_recovery_seconds=0.0,
            goodput_dip_area=0.0,
            recovered=baseline > 0.0,
        )
    threshold = recovery_fraction * baseline
    dip_area = 0.0
    num_windows = int(math.ceil(horizon / window_seconds))
    for k in range(num_windows):
        lo = onset_seconds + k * window_seconds
        hi = min(lo + window_seconds, end_seconds)
        width = hi - lo
        if width <= 0:
            break
        count = sum(1 for t in served_times if lo <= t < hi)
        dip_area += max(0.0, baseline - count / width) * width
    # Cumulative catch-up clock: the rate-since-onset ratio decays between
    # completions and jumps at each one, so its local minima sit just before
    # each completion and at the horizon — checking those points finds the
    # last instant the run was still behind.
    post = [t for t in served_times if onset_seconds < t <= end_seconds]
    last_below = 0.0
    for index, t in enumerate(post):
        elapsed = t - onset_seconds
        if index / elapsed < threshold:
            last_below = elapsed
    if len(post) / horizon < threshold:
        last_below = horizon
    recovered = last_below < horizon
    return RecoveryMetrics(
        onset_seconds=onset_seconds,
        window_seconds=window_seconds,
        baseline_goodput_rps=baseline,
        time_to_recovery_seconds=last_below,
        goodput_dip_area=dip_area,
        recovered=recovered,
    )


__all__ = [
    "FAULT_KINDS",
    "FaultClause",
    "FaultPlan",
    "FaultRecord",
    "RecoveryMetrics",
    "compute_recovery_metrics",
]
