"""Discrete-event concurrency engine for the FLStore simulator.

:mod:`repro.engine.kernel` provides the generic substrate (event heap,
:class:`SimTask` futures, generator processes); :mod:`repro.engine.flstore`
builds the serving semantics on top: overlapping requests, per-function
concurrency limits with FIFO/priority queues, admission control with
shedding (drop / degrade-to-objstore), and keep-alive/reclamation as
scheduled events.  :mod:`repro.engine.sharded` puts a routing front door
over N independent engine-backed shards on one shared event loop.
Open-loop arrival processes live in :mod:`repro.traces.arrivals`; key-to-
shard placement lives in :mod:`repro.routing`.
"""

from repro.engine.flstore import (
    DISPOSITIONS,
    EngineFLStore,
    EngineOutcome,
    LoadReport,
    build_load_report,
    rejection_result,
    serve_degraded,
)
from repro.engine.kernel import EventLoop, SimTask, Timeout
from repro.engine.sharded import ShardedEngineFLStore, merge_depth_samples

__all__ = [
    "DISPOSITIONS",
    "EngineFLStore",
    "EngineOutcome",
    "EventLoop",
    "LoadReport",
    "ShardedEngineFLStore",
    "SimTask",
    "Timeout",
    "build_load_report",
    "merge_depth_samples",
    "rejection_result",
    "serve_degraded",
]
