"""Discrete-event concurrency engine for the FLStore simulator.

:mod:`repro.engine.kernel` provides the generic substrate (event heap,
:class:`SimTask` futures, generator processes); :mod:`repro.engine.flstore`
builds the serving semantics on top: overlapping requests, per-function
concurrency limits with FIFO/priority queues, and keep-alive/reclamation as
scheduled events.  Open-loop arrival processes live in
:mod:`repro.traces.arrivals`.
"""

from repro.engine.flstore import EngineFLStore, EngineOutcome, LoadReport
from repro.engine.kernel import EventLoop, SimTask, Timeout

__all__ = [
    "EngineFLStore",
    "EngineOutcome",
    "EventLoop",
    "LoadReport",
    "SimTask",
    "Timeout",
]
