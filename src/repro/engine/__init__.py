"""Discrete-event concurrency engine for the FLStore simulator.

:mod:`repro.engine.kernel` provides the generic substrate (event heap,
:class:`SimTask` futures, generator processes); :mod:`repro.engine.flstore`
builds the serving semantics on top: overlapping requests, per-function
concurrency limits with FIFO/priority queues, admission control with
shedding (drop / degrade-to-objstore), and keep-alive/reclamation as
scheduled events.  :mod:`repro.engine.sharded` puts a routing front door
over N independent engine-backed shards on one shared event loop, and
:mod:`repro.engine.autoscale` closes the control loop over it: policies
sample queue-depth/arrival-rate signals on scheduled control ticks and
spawn/retire warm capacity (per-function slots, whole shards) online.
:mod:`repro.engine.faults` schedules typed fault clauses (shard crashes,
reclamation storms, gray slowdowns, network spikes) as events on the same
timeline, and :mod:`repro.engine.remediate` closes the repair loop: a
controller that detects anomalies against EWMA baselines, proposes ranked
actions, verifies the top one in a bounded shadow simulation, and actuates
only on an accepted forecast.  Open-loop arrival processes live in
:mod:`repro.traces.arrivals`; key-to-shard placement lives in
:mod:`repro.routing`.
"""

from repro.engine.autoscale import (
    AUTOSCALER_KINDS,
    AutoscaleConfig,
    AutoscaleSummary,
    Autoscaler,
    AutoscalerPolicy,
    ControlSignals,
    NullAutoscaler,
    PredictiveAutoscaler,
    ReactiveThresholdAutoscaler,
    ScaleDecision,
    ScaleEvent,
    make_autoscaler_policy,
)
from repro.engine.faults import (
    FAULT_KINDS,
    FaultClause,
    FaultPlan,
    FaultRecord,
    RecoveryMetrics,
    compute_recovery_metrics,
)
from repro.engine.flstore import (
    DISPOSITIONS,
    EngineFLStore,
    EngineOutcome,
    LoadReport,
    build_load_report,
    rejection_result,
    serve_degraded,
)
from repro.engine.kernel import EventLoop, SimTask, Timeout
from repro.engine.remediate import (
    REMEDIATION_ACTIONS,
    Anomaly,
    Proposal,
    RemediationConfig,
    RemediationController,
    RemediationRecord,
    RemediationSummary,
)
from repro.engine.sharded import (
    REPLICATION_POLICIES,
    ShardedEngineFLStore,
    merge_depth_samples,
)

__all__ = [
    "AUTOSCALER_KINDS",
    "FAULT_KINDS",
    "REMEDIATION_ACTIONS",
    "REPLICATION_POLICIES",
    "Anomaly",
    "AutoscaleConfig",
    "AutoscaleSummary",
    "Autoscaler",
    "AutoscalerPolicy",
    "ControlSignals",
    "DISPOSITIONS",
    "EngineFLStore",
    "EngineOutcome",
    "EventLoop",
    "FaultClause",
    "FaultPlan",
    "FaultRecord",
    "LoadReport",
    "NullAutoscaler",
    "PredictiveAutoscaler",
    "Proposal",
    "ReactiveThresholdAutoscaler",
    "RecoveryMetrics",
    "RemediationConfig",
    "RemediationController",
    "RemediationRecord",
    "RemediationSummary",
    "ScaleDecision",
    "ScaleEvent",
    "ShardedEngineFLStore",
    "SimTask",
    "Timeout",
    "build_load_report",
    "compute_recovery_metrics",
    "merge_depth_samples",
    "rejection_result",
    "serve_degraded",
]
