"""The vectorized fast path: million-request single-tier runs in seconds.

The discrete-event path costs a few microseconds per request — generator
processes, heap traffic, per-request ``FLStore.serve`` calls — which is the
right price for faulted, autoscaled, or admission-controlled topologies, and
the wrong one for the raw-speed question ("what does this tier do under a
million requests?").  This module answers that question in single-digit
seconds by replacing the event loop with closed-form queueing:

* **compact trace** — the request stream is represented as one int64 array
  of *signature classes* (workload x target round), drawn from the same RNG
  stream as :meth:`repro.traces.generator.RequestTraceGenerator.mixed_trace`
  (``Generator.choice`` is stream-identical drawn scalar or batched), so the
  fast path serves the same request sequence without materializing a million
  ``WorkloadRequest`` objects.
* **oracle memoization** — each distinct class is served through the real
  analytic :class:`~repro.core.flstore.FLStore` twice (a warm pass that
  pays the cold start and fills the cache, then a steady pass whose result
  is memoized), so per-class service times, costs, and execution-function
  routing come from the true oracle, not a model of it.
* **slot recurrence** — FIFO per-function c-slot queueing collapses to
  ``start = max(arrival, earliest-free-slot)``; a tight per-function
  busy-until recurrence (plain array for c=1, heap otherwise) computes every
  start time in arrival order.
* **array folding** — waits/sojourns/completions are pure ndarray math,
  folded chunk-wise into a :class:`~repro.engine.streaming.
  StreamingLoadCollector`; the mean queue depth is exact (total wait over
  the horizon), the max depth comes from a sorted +1/-1 event sweep.

What the fast path approximates, relative to the event path: per-request
cache-state evolution (every request of a class gets the class's
steady-state oracle result; only the first few serves of a run differ),
same-instant tie ordering in the max-depth column, the sketched percentile
columns, and the keep-alive/reclamation daemons (not scheduled — eligibility
requires a fault-free tier, where they only add report counters).  Counts,
conservation, means, rates, and the mean queue depth are exact given the
memoized oracle.

Eligibility (:func:`fast_path_eligible`) is deliberately narrow: a plain
(unsharded) tier, FIFO discipline, unbounded admission, no faults, no
autoscaler, no remediation, and ``metrics="streaming"``.  Everything else
takes the event path, which remains the semantic reference.
"""

from __future__ import annotations

import heapq
from math import inf

import numpy as np

from repro.common.ids import IdGenerator
from repro.common.rng import derive_rng
from repro.engine.streaming import StreamingLoadCollector
from repro.workloads.base import PolicyClass, WorkloadRequest
from repro.workloads.registry import get_workload

#: Chunk size for the per-request loops and folds: large enough to amortize
#: numpy dispatch, small enough that transient Python floats stay ~6 MB even
#: on a million-request run.
_CHUNK = 65536


def fast_path_eligible(spec) -> bool:
    """Whether ``spec`` can run on the vectorized fast path.

    True only for the topology whose queueing is closed-form: one plain
    engine tier, FIFO queues, unbounded admission, nothing dynamic (no
    faults, autoscaler, or remediation controller mutating the tier
    mid-run), and streaming metrics (the fast path retains no rows).
    """
    return not explain_fast_path(spec)


def explain_fast_path(spec) -> list[str]:
    """The knobs disqualifying ``spec`` from the fast path (empty = eligible).

    The event-path fallback is silent by design (the run is still correct,
    just slower); this is the diagnostic surface — ``run-scenario --smoke``
    prints it, so a spec author can see exactly which knob keeps a scenario
    off the vectorized path.  Reasons mirror :func:`fast_path_eligible`'s
    conditions one-for-one, in the same order.
    """
    reasons: list[str] = []
    if spec.metrics != "streaming":
        reasons.append(f'metrics={spec.metrics!r} retains rows (needs "streaming")')
    if spec.tier.sharded:
        reasons.append(f"tier.router_kind={spec.tier.router_kind!r} builds a sharded front door")
    if spec.tier.queue_discipline != "fifo":
        reasons.append(
            f"tier.queue_discipline={spec.tier.queue_discipline!r} reorders the queue "
            '(needs "fifo")'
        )
    if spec.tier.admission.max_queue_depth != 0:
        reasons.append(
            f"tier.admission.max_queue_depth={spec.tier.admission.max_queue_depth} bounds "
            "admission (needs 0 = unbounded)"
        )
    if spec.tenants:
        reasons.append(
            f"{len(spec.tenants)} tenant(s) need per-flow scheduling and SLO accounting"
        )
    if spec.faults:
        reasons.append(f"{len(spec.faults)} fault clause(s) mutate the tier mid-run")
    if spec.remediation.enabled:
        reasons.append("remediation.enabled attaches the repair control loop")
    if spec.tier.autoscaler.enabled:
        reasons.append("tier.autoscaler.enabled resizes the tier mid-run")
    return reasons


def _class_table(catalog, workload_names):
    """Map every (workload, trace position round) pair to a signature class.

    Mirrors ``mixed_trace``'s per-request construction: P1 workloads always
    target the newest round (one class per workload), P3 workloads follow
    the round's first participant, P2/P4 target the cycled round itself.
    Returns the ``(workload index, round position) -> class`` lookup plus
    each class's ``(workload, round, client)`` exemplar signature.
    """
    rounds = catalog.rounds()
    latest = catalog.latest_round
    classes: dict[tuple, int] = {}
    signatures: list[tuple] = []
    lookup = np.empty((len(workload_names), len(rounds)), dtype=np.int64)
    for name_index, name in enumerate(workload_names):
        workload = get_workload(name)
        for round_position, round_id in enumerate(rounds):
            request_round = round_id
            client_id = None
            if workload.policy_class is PolicyClass.P1_INDIVIDUAL:
                request_round = latest
            elif workload.policy_class is PolicyClass.P3_ACROSS_ROUNDS:
                participants = catalog.participants(round_id)
                client_id = participants[0] if participants else None
            key = (name, request_round, client_id)
            if key not in classes:
                classes[key] = len(signatures)
                signatures.append(key)
            lookup[name_index, round_position] = classes[key]
    return lookup, signatures


def _memoize_oracle(flstore, signatures):
    """Serve each signature class through the analytic oracle; memoize.

    Two passes: the first pays each class's cold start and fills the cache
    (exactly what the head of an event-path run does), the second serves
    against the warmed store and its results — service time, cost, execution
    function — stand in for every request of the class.  Request ids are
    unique per serve (the store's tracker rejects duplicates).
    """
    ids = IdGenerator(prefix="fastpath-req", width=6)

    def serve(signature):
        name, round_id, client_id = signature
        return flstore.serve(
            WorkloadRequest(
                request_id=ids.next(),
                workload=name,
                round_id=round_id,
                client_id=client_id,
            )
        )

    for signature in signatures:
        serve(signature)
    return [serve(signature) for signature in signatures]


def _class_stream(seed, num_classes_lookup, num_workloads, num_rounds, num_requests):
    """The per-request class indices, chunk-drawn from the mixed-trace RNG."""
    rng = derive_rng(seed, "mixed-trace")
    per_round = num_workloads
    class_index = np.empty(num_requests, dtype=np.int64)
    for start in range(0, num_requests, _CHUNK):
        stop = min(start + _CHUNK, num_requests)
        name_index = rng.choice(num_workloads, size=stop - start)
        round_position = (np.arange(start, stop) // per_round) % num_rounds
        class_index[start:stop] = num_classes_lookup[name_index, round_position]
    return class_index


def _start_times(arrivals, function_index, service, num_functions, slots):
    """FIFO c-slot start times, in arrival order.

    Each function owns ``slots`` execution slots; a request starts at
    ``max(arrival, earliest slot free)`` and occupies the slot for its
    service time.  Requests with no function (index -1) start immediately.
    The loop runs chunk-wise over plain Python floats (ndarray scalar access
    is several times slower) but never holds more than one chunk of them.
    """
    n = arrivals.size
    starts = np.empty(n, dtype=np.float64)
    if slots == 1:
        busy = [-inf] * num_functions
        for chunk_start in range(0, n, _CHUNK):
            stop = min(chunk_start + _CHUNK, n)
            arrived = arrivals[chunk_start:stop].tolist()
            functions = function_index[chunk_start:stop].tolist()
            services = service[chunk_start:stop].tolist()
            out = arrived
            for i, at in enumerate(arrived):
                f = functions[i]
                if f < 0:
                    continue
                free_at = busy[f]
                begin = at if at > free_at else free_at
                out[i] = begin
                busy[f] = begin + services[i]
            starts[chunk_start:stop] = out
        return starts
    heaps = [[-inf] * slots for _ in range(num_functions)]
    heapreplace = heapq.heapreplace
    for chunk_start in range(0, n, _CHUNK):
        stop = min(chunk_start + _CHUNK, n)
        arrived = arrivals[chunk_start:stop].tolist()
        functions = function_index[chunk_start:stop].tolist()
        services = service[chunk_start:stop].tolist()
        out = arrived
        for i, at in enumerate(arrived):
            f = functions[i]
            if f < 0:
                continue
            heap = heaps[f]
            free_at = heap[0]
            begin = at if at > free_at else free_at
            out[i] = begin
            heapreplace(heap, begin + services[i])
        starts[chunk_start:stop] = out
    return starts


def _max_queue_depth(arrivals, starts, waits):
    """Peak concurrent waiters, from a sorted +1 (enqueue) / -1 (start) sweep.

    At exactly-equal instants the -1 sorts first, so a slot handoff at time
    ``t`` is counted after the departing waiter leaves — deterministic, and
    within one of the event path's sample-order-dependent value.
    """
    queued = waits > 0.0
    count = int(np.count_nonzero(queued))
    if count == 0:
        return 0
    times = np.concatenate([arrivals[queued], starts[queued]])
    deltas = np.concatenate(
        [np.ones(count, dtype=np.int64), np.full(count, -1, dtype=np.int64)]
    )
    order = np.lexsort((deltas, times))
    return int(np.cumsum(deltas[order]).max())


def run_fast_path(store, spec, arrival_process, slo_seconds, label):
    """Serve ``spec``'s mix on the fast path; return a streaming ``LoadReport``.

    ``store`` is the built (fully ingested) plain :class:`~repro.engine.
    flstore.EngineFLStore`; the caller has already checked
    :func:`fast_path_eligible`.  The report has the streaming pipeline's
    shape: ``outcomes`` empty, percentiles sketched, every other column
    closed-form.
    """
    workload_names = list(spec.workload.workloads)
    num_requests = spec.workload.num_requests
    lookup, signatures = _class_table(store.catalog, workload_names)
    results = _memoize_oracle(store.flstore, signatures)

    service_by_class = np.array(
        [result.latency.total_seconds for result in results], dtype=np.float64
    )
    functions: dict[str, int] = {}
    function_by_class = np.empty(len(results), dtype=np.int64)
    for class_id, result in enumerate(results):
        function_id = result.execution_function
        if function_id is not None and store.platform.has_function(function_id):
            function_by_class[class_id] = functions.setdefault(function_id, len(functions))
        else:
            function_by_class[class_id] = -1

    arrivals = arrival_process.times_array(num_requests)
    class_index = _class_stream(
        spec.seed, lookup, len(workload_names), lookup.shape[1], num_requests
    )
    service = service_by_class[class_index]
    function_index = function_by_class[class_index]

    starts = _start_times(
        arrivals,
        function_index,
        service,
        num_functions=len(functions),
        slots=spec.tier.function_concurrency,
    )
    waits = starts - arrivals
    completions = starts + service
    sojourns = completions - arrivals

    collector = StreamingLoadCollector(slo_seconds)
    for start in range(0, num_requests, _CHUNK):
        stop = min(start + _CHUNK, num_requests)
        collector.fold_served_arrays(sojourns[start:stop], waits[start:stop])

    first_arrival = float(arrivals[0]) if num_requests else 0.0
    last_arrival = float(arrivals[-1]) if num_requests else 0.0
    last_completion = float(completions.max()) if num_requests else 0.0
    collector.note_completion_time(last_completion)
    horizon = last_completion - first_arrival
    mean_depth = float(waits.sum()) / horizon if horizon > 0 else 0.0
    max_depth = _max_queue_depth(arrivals, starts, waits)
    return collector.build_report(
        label,
        submitted=num_requests,
        first_arrival=first_arrival,
        last_arrival=last_arrival,
        depth_profile=(mean_depth, max_depth),
    )
