"""Serving FLStore requests as timed processes on the discrete-event kernel.

:class:`EngineFLStore` is a facade over :class:`repro.core.flstore.FLStore`
that admits *overlapping* requests.  The analytic core stays the oracle for
what a request does (which keys it touches, which function executes it, what
its service latency and dollar cost are); the engine adds what the analytic
path cannot express:

* requests arrive at virtual times (open-loop load from
  :mod:`repro.traces.arrivals`) instead of back to back,
* each execution function admits ``config.serverless.function_concurrency``
  concurrent requests; excess requests wait in the function's FIFO/priority
  queue (:class:`repro.serverless.function.RequestQueue`), so *sojourn time*
  (queue wait + service) degrades under load,
* keep-alive pings and provider reclamations fire as *scheduled events* on
  the event heap instead of eager per-request callbacks.

Closed-loop equivalence is the design invariant: when requests arrive
sequentially (each one after the previous completed), the engine reproduces
the direct ``FLStore.serve`` path byte for byte — same :class:`ServeResult`
latencies, costs, hit counts, and routing.  ``tests/test_engine.py`` enforces
this for every registered workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.core.flstore import FLStore, ServeResult, build_default_flstore
from repro.engine.kernel import EventLoop, SimTask, Timeout
from repro.serverless.faults import ZipfianFaultInjector
from repro.simulation.metrics import RequestRecord
from repro.simulation.records import LatencyBreakdown
from repro.workloads.base import WorkloadRequest


@dataclass(slots=True)
class EngineOutcome:
    """One request's trip through the engine: analytic result plus timing."""

    request: WorkloadRequest
    result: ServeResult
    arrived_at: float
    started_at: float
    completed_at: float

    @property
    def wait_seconds(self) -> float:
        """Time spent queued for an execution slot."""
        return self.started_at - self.arrived_at

    @property
    def sojourn_seconds(self) -> float:
        """Arrival-to-completion time (queue wait + service)."""
        return self.completed_at - self.arrived_at

    def to_record(self, system: str, model_name: str) -> RequestRecord:
        """A :class:`RequestRecord` whose queueing component includes the wait."""
        latency = self.result.latency + LatencyBreakdown(queueing_seconds=self.wait_seconds)
        return RequestRecord(
            request_id=self.request.request_id,
            system=system,
            workload=self.request.workload,
            model_name=model_name,
            round_id=self.request.round_id,
            latency=latency,
            cost=self.result.cost,
            cache_hits=self.result.cache_hits,
            cache_misses=self.result.cache_misses,
            client_id=self.request.client_id,
        )


@dataclass
class LoadReport:
    """Aggregate outcome of one open-loop run (one arrival process, one rate)."""

    label: str
    submitted: int
    completed: int
    offered_rps: float
    goodput_rps: float
    horizon_seconds: float
    mean_sojourn_seconds: float
    p50_sojourn_seconds: float
    p95_sojourn_seconds: float
    p99_sojourn_seconds: float
    mean_wait_seconds: float
    mean_service_seconds: float
    mean_queue_depth: float
    max_queue_depth: int
    keepalive_pings: int = 0
    reclamations: int = 0
    outcomes: list[EngineOutcome] = field(default_factory=list, repr=False)

    def row(self) -> dict:
        """The scalar columns of this report (for tables and JSON export)."""
        return {
            "process": self.label,
            "offered_rps": self.offered_rps,
            "goodput_rps": self.goodput_rps,
            "completed": self.completed,
            "p50_sojourn_seconds": self.p50_sojourn_seconds,
            "p95_sojourn_seconds": self.p95_sojourn_seconds,
            "p99_sojourn_seconds": self.p99_sojourn_seconds,
            "mean_wait_seconds": self.mean_wait_seconds,
            "mean_queue_depth": self.mean_queue_depth,
            "max_queue_depth": self.max_queue_depth,
        }

    def to_records(self, system: str = "engine-flstore", model_name: str = "unknown") -> list[RequestRecord]:
        """Per-request :class:`RequestRecord` rows (completion order)."""
        return [outcome.to_record(system, model_name) for outcome in self.outcomes]


class EngineFLStore:
    """Discrete-event serving facade over an analytic :class:`FLStore`.

    Parameters
    ----------
    flstore:
        The analytic core used as the serving oracle.  It must *not* carry
        its own fault injector — the engine schedules reclamations as events
        (pass ``fault_injector`` here instead).
    loop:
        Event loop to run on (a fresh one by default).
    fault_injector:
        Optional reclamation sampler; fired every
        ``reclamation_interval_seconds`` of virtual time as a scheduled
        event rather than eagerly inside each serve.
    reclamation_interval_seconds:
        Virtual-time spacing of reclamation events.
    """

    system_name = "engine-flstore"

    def __init__(
        self,
        flstore: FLStore,
        loop: EventLoop | None = None,
        fault_injector: ZipfianFaultInjector | None = None,
        reclamation_interval_seconds: float = 60.0,
    ) -> None:
        if flstore.fault_injector is not None:
            raise ValueError(
                "the engine schedules reclamations itself; build the FLStore "
                "without a fault injector and pass it to EngineFLStore instead"
            )
        self.flstore = flstore
        self.loop = loop or EventLoop()
        self.platform = flstore.platform
        self.fault_injector = fault_injector
        self.reclamation_interval_seconds = reclamation_interval_seconds
        self.keepalive_pings = 0
        self.reclamations = 0
        self._outstanding = 0
        self._waiting = 0
        self._depth_samples: list[tuple[float, int]] = []
        self._completed: list[EngineOutcome] = []

    @classmethod
    def build(
        cls,
        config=None,
        policy_mode: str = "tailored",
        fault_injector: ZipfianFaultInjector | None = None,
        **kwargs,
    ) -> "EngineFLStore":
        """Build a fresh analytic FLStore and wrap it in an engine facade."""
        flstore = build_default_flstore(config, policy_mode=policy_mode)
        return cls(flstore, fault_injector=fault_injector, **kwargs)

    # --------------------------------------------------------- passthroughs

    @property
    def catalog(self):
        """The round catalog of the underlying FLStore."""
        return self.flstore.catalog

    @property
    def config(self):
        """The simulation configuration of the underlying FLStore."""
        return self.flstore.config

    def ingest_round(self, record):
        """Ingest a training round into the underlying FLStore."""
        return self.flstore.ingest_round(record)

    # ------------------------------------------------------------ submission

    def submit(self, request: WorkloadRequest, at: float, priority: float = 0.0) -> SimTask:
        """Schedule ``request`` to arrive at virtual time ``at``.

        Returns the request's task; it resolves with an
        :class:`EngineOutcome` when the request completes.
        """
        task = SimTask(self.loop, name=request.request_id)
        self._outstanding += 1

        def _arrive() -> None:
            self.loop.process(self._request_process(request, priority), task=task)

        self.loop.schedule_at(at, _arrive)
        return task

    def _request_process(self, request: WorkloadRequest, priority: float):
        """One request as a timed process: serve oracle, queue, execute, release."""
        arrived_at = self.loop.now
        result = self.flstore.serve(request)
        function_id = result.execution_function
        holds_slot = False
        if function_id is not None and self.platform.has_function(function_id):
            if self.platform.try_acquire_slot(function_id):
                holds_slot = True
            else:
                token = SimTask(self.loop, name=f"slot:{request.request_id}")
                self.platform.enqueue_waiter(function_id, token, priority)
                self._note_queue_change(+1)
                granted = yield token
                self._note_queue_change(-1)
                # A False grant means the function was reclaimed while the
                # request waited; it proceeds without holding a slot (its
                # analytic outcome already happened at arrival).
                holds_slot = bool(granted)
        started_at = self.loop.now
        service_seconds = result.latency.total_seconds
        if service_seconds > 0:
            yield Timeout(service_seconds)
        if holds_slot:
            next_token = self.platform.release_slot(function_id)
            if next_token is not None:
                next_token.resolve(True)
        outcome = EngineOutcome(
            request=request,
            result=result,
            arrived_at=arrived_at,
            started_at=started_at,
            completed_at=self.loop.now,
        )
        self._completed.append(outcome)
        self._outstanding -= 1
        return outcome

    def _note_queue_change(self, delta: int) -> None:
        self._waiting += delta
        self._depth_samples.append((self.loop.now, self._waiting))

    # --------------------------------------------------- lifecycle as events

    def schedule_keepalive(self, interval_seconds: float | None = None) -> None:
        """Ping warm functions every ``interval_seconds`` of virtual time.

        The recurring event first advances the shared analytic clock to the
        engine's virtual time (monotonically), then pings every warm
        function, so ``last_invoked_at`` stamps track the open-loop timeline
        rather than the analytic per-request one.  It re-arms itself while
        requests are outstanding — a periodic daemon on the event heap
        instead of an eager callback per request.
        """
        interval = (
            interval_seconds
            if interval_seconds is not None
            else self.flstore.config.serverless.keepalive_interval_seconds
        )
        if interval <= 0:
            raise ValueError(f"keepalive interval must be positive, got {interval}")

        def _ping() -> None:
            self.flstore.clock.advance_to(self.loop.now)
            for function in self.platform.warm_functions():
                self.platform.ping(function.function_id)
                self.keepalive_pings += 1
            if self._outstanding > 0:
                self.loop.schedule(interval, _ping)

        self.loop.schedule(interval, _ping)

    def schedule_reclamations(self, interval_seconds: float | None = None) -> None:
        """Sample provider reclamations on a timer instead of per request."""
        if self.fault_injector is None:
            return
        interval = (
            interval_seconds if interval_seconds is not None else self.reclamation_interval_seconds
        )
        if interval <= 0:
            raise ValueError(f"reclamation interval must be positive, got {interval}")

        def _reclaim() -> None:
            reclaimed = self.fault_injector.sample_reclamations(
                self.flstore.cluster.function_ids()
            )
            for function_id in reclaimed:
                self.platform.reclaim_function(function_id)
                self.reclamations += 1
                # Resuming a waiter (resolve) re-enters its process, which
                # performs its own queue-depth decrement.
                for token in self.platform.drain_waiters(function_id):
                    token.resolve(False)
            if reclaimed:
                self.flstore.engine.drop_lost_keys()
            if self._outstanding > 0:
                self.loop.schedule(interval, _reclaim)

        self.loop.schedule(interval, _reclaim)

    # ------------------------------------------------------------ run modes

    def run_closed_loop(self, requests: Iterable[WorkloadRequest]) -> list[ServeResult]:
        """Serve ``requests`` sequentially through the engine.

        Each request arrives exactly when the previous one completed, so no
        request ever queues and the returned :class:`ServeResult` sequence is
        byte-identical to calling ``FLStore.serve`` directly.
        """
        results: list[ServeResult] = []
        for request in requests:
            task = self.submit(request, at=self.loop.now)
            self.loop.run()
            results.append(task.result.result)
        return results

    def run_open_loop(
        self,
        requests: Sequence[WorkloadRequest],
        arrival_times: Sequence[float],
        priorities: Sequence[float] | None = None,
        label: str = "open-loop",
        keepalive: bool = False,
    ) -> LoadReport:
        """Serve ``requests`` at the given arrival times; report load metrics.

        ``arrival_times`` come from an arrival process
        (:mod:`repro.traces.arrivals`) and are relative to the start of this
        run (the loop's current virtual time), so repeated runs on one
        engine compose; overlapping requests contend for execution slots and
        queue per function.  With ``keepalive`` the keep-alive daemon runs
        as a recurring event; a fault injector (if configured) adds
        reclamation events.  Per-run counters (queue-depth samples,
        keep-alive pings, reclamations) are reported per run, not
        engine-lifetime.
        """
        if len(requests) != len(arrival_times):
            raise ValueError("requests and arrival_times must have the same length")
        base = self.loop.now
        absolute_times = [base + float(at) for at in arrival_times]
        start_count = len(self._completed)
        pings_before = self.keepalive_pings
        reclamations_before = self.reclamations
        self._depth_samples = []
        for index, (request, at) in enumerate(zip(requests, absolute_times)):
            priority = priorities[index] if priorities is not None else 0.0
            self.submit(request, at=at, priority=priority)
        if keepalive:
            self.schedule_keepalive()
        self.schedule_reclamations()
        self.loop.run()
        outcomes = self._completed[start_count:]
        return self._build_report(
            outcomes,
            absolute_times,
            label,
            keepalive_pings=self.keepalive_pings - pings_before,
            reclamations=self.reclamations - reclamations_before,
        )

    # ------------------------------------------------------------- reporting

    def _build_report(
        self,
        outcomes: list[EngineOutcome],
        arrival_times: Sequence[float],
        label: str,
        keepalive_pings: int = 0,
        reclamations: int = 0,
    ) -> LoadReport:
        submitted = len(arrival_times)
        completed = len(outcomes)
        first_arrival = min(arrival_times) if submitted else 0.0
        last_completion = max((o.completed_at for o in outcomes), default=first_arrival)
        horizon = max(last_completion - first_arrival, 0.0)
        arrival_span = max(arrival_times) - first_arrival if submitted > 1 else 0.0
        # Degenerate spans (a single request, an instantaneous burst) report
        # 0.0 rather than infinity so exported JSON stays strictly valid.
        offered = submitted / arrival_span if arrival_span > 0 else 0.0
        goodput = completed / horizon if horizon > 0 else 0.0
        sojourns = np.array([o.sojourn_seconds for o in outcomes], dtype=float)
        waits = np.array([o.wait_seconds for o in outcomes], dtype=float)
        services = sojourns - waits
        mean_depth, max_depth = self._queue_depth_profile(first_arrival, last_completion)
        return LoadReport(
            label=label,
            submitted=submitted,
            completed=completed,
            offered_rps=offered,
            goodput_rps=goodput,
            horizon_seconds=horizon,
            mean_sojourn_seconds=float(sojourns.mean()) if completed else 0.0,
            p50_sojourn_seconds=float(np.percentile(sojourns, 50)) if completed else 0.0,
            p95_sojourn_seconds=float(np.percentile(sojourns, 95)) if completed else 0.0,
            p99_sojourn_seconds=float(np.percentile(sojourns, 99)) if completed else 0.0,
            mean_wait_seconds=float(waits.mean()) if completed else 0.0,
            mean_service_seconds=float(services.mean()) if completed else 0.0,
            mean_queue_depth=mean_depth,
            max_queue_depth=max_depth,
            keepalive_pings=keepalive_pings,
            reclamations=reclamations,
            outcomes=outcomes,
        )

    def _queue_depth_profile(self, start: float, end: float) -> tuple[float, int]:
        """Time-weighted mean and maximum of the waiting-request count."""
        samples = self._depth_samples
        if not samples or end <= start:
            return 0.0, max((depth for _, depth in samples), default=0)
        max_depth = 0
        weighted = 0.0
        prev_time = start
        prev_depth = 0
        for time_point, depth in samples:
            clamped = min(max(time_point, start), end)
            weighted += prev_depth * (clamped - prev_time)
            prev_time = clamped
            prev_depth = depth
            max_depth = max(max_depth, depth)
        weighted += prev_depth * (end - prev_time)
        return weighted / (end - start), max_depth
