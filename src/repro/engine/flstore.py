"""Serving FLStore requests as timed processes on the discrete-event kernel.

:class:`EngineFLStore` is a facade over :class:`repro.core.flstore.FLStore`
that admits *overlapping* requests.  The analytic core stays the oracle for
what a request does (which keys it touches, which function executes it, what
its service latency and dollar cost are); the engine adds what the analytic
path cannot express:

* requests arrive at virtual times (open-loop load from
  :mod:`repro.traces.arrivals`) instead of back to back,
* each execution function admits ``config.serverless.function_concurrency``
  concurrent requests; excess requests wait in the function's FIFO/priority
  queue (:class:`repro.serverless.function.RequestQueue`), so *sojourn time*
  (queue wait + service) degrades under load,
* keep-alive pings and provider reclamations fire as *scheduled events* on
  the event heap instead of eager per-request callbacks.

Closed-loop equivalence is the design invariant: when requests arrive
sequentially (each one after the previous completed), the engine reproduces
the direct ``FLStore.serve`` path byte for byte — same :class:`ServeResult`
latencies, costs, hit counts, and routing.  ``tests/test_engine.py`` enforces
this for every registered workload.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.common.units import GB
from repro.core.flstore import FLStore, ServeResult, build_default_flstore
from repro.engine.kernel import EventLoop, SimTask, Timeout
from repro.engine.streaming import StreamingLoadCollector, check_metrics_mode
from repro.network.model import spike_cost, spike_latency
from repro.serverless.faults import ZipfianFaultInjector
from repro.simulation.metrics import RequestRecord
from repro.simulation.records import (
    CostAccumulator,
    CostBreakdown,
    LatencyAccumulator,
    LatencyBreakdown,
)
from repro.workloads.base import WorkloadRequest
from repro.workloads.registry import get_workload

#: How a request left the engine:
#: ``served`` — executed on the serving tier (possibly after queueing);
#: ``requeued`` — its function was reclaimed while it waited, so it finished
#: without holding a slot (the PR-2 behaviour, now accounted for);
#: ``degraded`` — shed by admission control onto the object-store bypass;
#: ``shed`` — rejected outright at a full queue.
DISPOSITIONS: tuple[str, ...] = ("served", "requeued", "degraded", "shed")


@dataclass(slots=True)
class EngineOutcome:
    """One request's trip through the engine: analytic result plus timing."""

    request: WorkloadRequest
    result: ServeResult
    arrived_at: float
    started_at: float
    completed_at: float
    disposition: str = "served"

    def __post_init__(self) -> None:
        if self.disposition not in DISPOSITIONS:
            raise ValueError(
                f"unknown disposition {self.disposition!r}; expected one of {DISPOSITIONS}"
            )

    @property
    def tenant_id(self) -> str | None:
        """The tenant the request belongs to (``None`` on single-tenant runs)."""
        return self.request.tenant_id

    @property
    def wait_seconds(self) -> float:
        """Time spent queued for an execution slot."""
        return self.started_at - self.arrived_at

    @property
    def sojourn_seconds(self) -> float:
        """Arrival-to-completion time (queue wait + service)."""
        return self.completed_at - self.arrived_at

    def to_record(self, system: str, model_name: str) -> RequestRecord:
        """A :class:`RequestRecord` whose queueing component includes the wait."""
        latency = self.result.latency + LatencyBreakdown(queueing_seconds=self.wait_seconds)
        return RequestRecord(
            request_id=self.request.request_id,
            system=system,
            workload=self.request.workload,
            model_name=model_name,
            round_id=self.request.round_id,
            latency=latency,
            cost=self.result.cost,
            cache_hits=self.result.cache_hits,
            cache_misses=self.result.cache_misses,
            client_id=self.request.client_id,
        )


def rejection_result(flstore: FLStore, request: WorkloadRequest) -> ServeResult:
    """The :class:`ServeResult` of a request rejected by admission control.

    The client still pays the front-door round trip to learn about the
    rejection; nothing executes, so there is no compute latency or cost.
    """
    return ServeResult(
        request_id=request.request_id,
        workload=request.workload,
        result={"admitted": False, "shed_policy": "drop"},
        latency=LatencyBreakdown(communication_seconds=flstore.topology.client.rtt_seconds),
        cost=CostBreakdown.zero(),
    )


def serve_degraded(flstore: FLStore, request: WorkloadRequest) -> ServeResult:
    """Serve ``request`` on the degraded object-store bypass path.

    Models the ``degrade-to-objstore`` shedding policy: an ephemeral cold
    function fetches every required object from the persistent store,
    computes the workload, and writes the result back — never touching the
    serving tier's cache, queues, policies, or analytic clock, so admitted
    traffic is byte-unaffected by concurrent degraded serves.  The latency
    is dominated by the cold start plus the object-store fetches, which is
    exactly the regime FLStore exists to avoid; shedding onto it trades
    tail latency for availability.
    """
    workload = get_workload(request.workload)
    required = workload.required_keys(request, flstore.catalog)
    serverless = flstore.config.serverless
    latency = LatencyAccumulator()
    cost = CostAccumulator()
    latency.add_communication(flstore.topology.client.rtt_seconds)
    latency.add(LatencyBreakdown(cold_start_seconds=serverless.cold_start_seconds))

    data = {}
    fetch_seconds = 0.0
    for key in required:
        fetch_latency, fetch_cost, value = flstore._fetch_from_persistent(key)
        latency.add(fetch_latency)
        cost.add(fetch_cost)
        fetch_seconds += fetch_latency.total_seconds
        if value is not None:
            data[key] = value

    compute_seconds = workload.compute_seconds(flstore.model_spec, max(len(required), 1))
    latency.add(
        LatencyBreakdown(
            computation_seconds=compute_seconds,
            communication_seconds=serverless.invocation_overhead_seconds,
        )
    )
    # The ephemeral function is occupied (and billed) for the fetches and
    # the compute; it holds no cache, so it is billed at the default size.
    memory_gb = serverless.default_function_memory_bytes / GB
    billed_seconds = max(fetch_seconds + compute_seconds, 0.001)
    cost.add(flstore.cost_model.lambda_execution_cost(memory_gb, billed_seconds))

    result = workload.compute(request, data)
    latency.add_communication(flstore.topology.client.transfer_seconds(workload.result_size_bytes))
    store_result = flstore.persistent_store.put(
        ("result", request.request_id), result, size_bytes=workload.result_size_bytes
    )
    cost.add(store_result.cost)  # asynchronous: cost counted, latency off the critical path

    return ServeResult(
        request_id=request.request_id,
        workload=request.workload,
        result=result,
        latency=latency.finalize(),
        cost=cost.finalize(),
        cache_hits=0,
        cache_misses=len(required),
    )


@dataclass
class LoadReport:
    """Aggregate outcome of one open-loop run (one arrival process, one rate)."""

    label: str
    submitted: int
    completed: int
    offered_rps: float
    goodput_rps: float
    horizon_seconds: float
    mean_sojourn_seconds: float
    p50_sojourn_seconds: float
    p95_sojourn_seconds: float
    p99_sojourn_seconds: float
    mean_wait_seconds: float
    mean_service_seconds: float
    mean_queue_depth: float
    max_queue_depth: int
    keepalive_pings: int = 0
    reclamations: int = 0
    #: Admission-control accounting: every submitted request ends up in
    #: exactly one of served / requeued / degraded / shed, so
    #: ``served + requeued + degraded + shed == submitted`` always holds.
    served: int = 0
    requeued: int = 0
    degraded: int = 0
    shed: int = 0
    shed_rate: float = 0.0
    #: Fraction of completed (non-shed) requests whose sojourn exceeded the
    #: SLO (0.0 when no SLO was set for the run).
    violation_rate: float = 0.0
    slo_seconds: float | None = None
    #: Per-tenant breakdown rows (empty on single-tenant runs).  Each row
    #: counts ``served`` strictly (requeued listed separately), so the
    #: per-tenant conservation invariant reads ``served + requeued +
    #: degraded + shed == offered``.
    tenant_rows: list[dict] = field(default_factory=list)
    outcomes: list[EngineOutcome] = field(default_factory=list, repr=False)

    @property
    def conserved(self) -> bool:
        """Whether every submitted request is accounted for exactly once.

        ``served`` already includes ``requeued`` (both finished on the
        serving tier), so conservation reads ``served + degraded + shed ==
        submitted`` — the invariant every sweep asserts.
        """
        return self.served + self.degraded + self.shed == self.submitted

    def row(self) -> dict:
        """The scalar columns of this report (for tables and JSON export)."""
        return {
            "process": self.label,
            "offered_rps": self.offered_rps,
            "goodput_rps": self.goodput_rps,
            "completed": self.completed,
            "p50_sojourn_seconds": self.p50_sojourn_seconds,
            "p95_sojourn_seconds": self.p95_sojourn_seconds,
            "p99_sojourn_seconds": self.p99_sojourn_seconds,
            "mean_wait_seconds": self.mean_wait_seconds,
            "mean_queue_depth": self.mean_queue_depth,
            "max_queue_depth": self.max_queue_depth,
            "served": self.served,
            "shed": self.shed,
            "degraded": self.degraded,
            "requeued": self.requeued,
            "shed_rate": self.shed_rate,
            "violation_rate": self.violation_rate,
        }

    def to_records(self, system: str = "engine-flstore", model_name: str = "unknown") -> list[RequestRecord]:
        """Per-request :class:`RequestRecord` rows (completion order)."""
        return [outcome.to_record(system, model_name) for outcome in self.outcomes]


def build_tenant_rows(
    outcomes: Sequence[EngineOutcome],
    tenant_slos: "Mapping[str, float | None] | None" = None,
) -> list[dict]:
    """Per-tenant breakdown rows aggregated from tagged outcomes.

    Tenants are reported in sorted-name order.  ``served`` counts strictly
    served requests (requeued is its own column), so each row satisfies
    ``served + requeued + degraded + shed == offered``.  ``service_share``
    is the tenant's fraction of all finished (non-shed) tenant requests —
    the quantity WFQ/DRR drive toward the configured weight shares.
    ``tenant_slos`` supplies each tenant's own SLO for the row's
    ``violation_rate`` (tenants absent from the map report 0.0).
    """
    by_tenant: dict[str, list[EngineOutcome]] = {}
    for outcome in outcomes:
        tenant = outcome.request.tenant_id
        if tenant is not None:
            by_tenant.setdefault(tenant, []).append(outcome)
    if not by_tenant:
        return []
    slos = tenant_slos or {}
    total_finished = sum(
        1 for rows in by_tenant.values() for o in rows if o.disposition != "shed"
    )
    tenant_rows = []
    for tenant in sorted(by_tenant):
        rows = by_tenant[tenant]
        finished = [o for o in rows if o.disposition != "shed"]
        sojourns = np.array([o.sojourn_seconds for o in finished], dtype=float)
        slo = slos.get(tenant)
        violations = int(np.count_nonzero(sojourns > slo)) if slo is not None else 0
        tenant_rows.append(
            {
                "tenant": tenant,
                "offered": len(rows),
                "served": sum(1 for o in rows if o.disposition == "served"),
                "requeued": sum(1 for o in rows if o.disposition == "requeued"),
                "degraded": sum(1 for o in rows if o.disposition == "degraded"),
                "shed": sum(1 for o in rows if o.disposition == "shed"),
                "service_share": len(finished) / total_finished if total_finished else 0.0,
                "mean_sojourn_seconds": float(sojourns.mean()) if finished else 0.0,
                "p50_sojourn_seconds": float(np.percentile(sojourns, 50)) if finished else 0.0,
                "p99_sojourn_seconds": float(np.percentile(sojourns, 99)) if finished else 0.0,
                "violation_rate": violations / len(finished) if finished else 0.0,
                "slo_seconds": slo,
            }
        )
    return tenant_rows


def build_load_report(
    outcomes: list[EngineOutcome],
    arrival_times: Sequence[float],
    label: str,
    depth_samples: Sequence[tuple[float, int]],
    keepalive_pings: int = 0,
    reclamations: int = 0,
    slo_seconds: float | None = None,
    tenant_slos: "Mapping[str, float | None] | None" = None,
) -> LoadReport:
    """Aggregate ``outcomes`` into a :class:`LoadReport`.

    Shared by :class:`EngineFLStore` and the sharded front door
    (:class:`repro.engine.sharded.ShardedEngineFLStore`), so a one-shard
    sharded run reports through exactly the same code path as the plain
    engine.  Sojourn statistics cover completed (non-shed) requests; shed
    rejections count toward ``shed``/``shed_rate`` only.
    """
    submitted = len(arrival_times)
    finished = [o for o in outcomes if o.disposition != "shed"]
    served = sum(1 for o in outcomes if o.disposition in ("served", "requeued"))
    requeued = sum(1 for o in outcomes if o.disposition == "requeued")
    degraded = sum(1 for o in outcomes if o.disposition == "degraded")
    shed = len(outcomes) - len(finished)
    completed = len(finished)
    first_arrival = min(arrival_times) if submitted else 0.0
    last_completion = max((o.completed_at for o in outcomes), default=first_arrival)
    horizon = max(last_completion - first_arrival, 0.0)
    arrival_span = max(arrival_times) - first_arrival if submitted > 1 else 0.0
    # Degenerate spans (a single request, an instantaneous burst) report
    # 0.0 rather than infinity so exported JSON stays strictly valid.
    offered = submitted / arrival_span if arrival_span > 0 else 0.0
    goodput = served / horizon if horizon > 0 else 0.0
    sojourns = np.array([o.sojourn_seconds for o in finished], dtype=float)
    waits = np.array([o.wait_seconds for o in finished], dtype=float)
    services = sojourns - waits
    violations = int(np.count_nonzero(sojourns > slo_seconds)) if slo_seconds is not None else 0
    mean_depth, max_depth = _queue_depth_profile(depth_samples, first_arrival, last_completion)
    return LoadReport(
        label=label,
        submitted=submitted,
        completed=completed,
        offered_rps=offered,
        goodput_rps=goodput,
        horizon_seconds=horizon,
        mean_sojourn_seconds=float(sojourns.mean()) if completed else 0.0,
        p50_sojourn_seconds=float(np.percentile(sojourns, 50)) if completed else 0.0,
        p95_sojourn_seconds=float(np.percentile(sojourns, 95)) if completed else 0.0,
        p99_sojourn_seconds=float(np.percentile(sojourns, 99)) if completed else 0.0,
        mean_wait_seconds=float(waits.mean()) if completed else 0.0,
        mean_service_seconds=float(services.mean()) if completed else 0.0,
        mean_queue_depth=mean_depth,
        max_queue_depth=max_depth,
        keepalive_pings=keepalive_pings,
        reclamations=reclamations,
        served=served,
        requeued=requeued,
        degraded=degraded,
        shed=shed,
        shed_rate=shed / submitted if submitted else 0.0,
        violation_rate=violations / completed if completed else 0.0,
        slo_seconds=slo_seconds,
        tenant_rows=build_tenant_rows(outcomes, tenant_slos),
        outcomes=outcomes,
    )


def _queue_depth_profile(
    samples: Sequence[tuple[float, int]], start: float, end: float
) -> tuple[float, int]:
    """Time-weighted mean and maximum of the waiting-request count."""
    if not samples or end <= start:
        return 0.0, max((depth for _, depth in samples), default=0)
    max_depth = 0
    weighted = 0.0
    prev_time = start
    prev_depth = 0
    for time_point, depth in samples:
        clamped = min(max(time_point, start), end)
        weighted += prev_depth * (clamped - prev_time)
        prev_time = clamped
        prev_depth = depth
        max_depth = max(max_depth, depth)
    weighted += prev_depth * (end - prev_time)
    return weighted / (end - start), max_depth


class EngineFLStore:
    """Discrete-event serving facade over an analytic :class:`FLStore`.

    Parameters
    ----------
    flstore:
        The analytic core used as the serving oracle.  It must *not* carry
        its own fault injector — the engine schedules reclamations as events
        (pass ``fault_injector`` here instead).
    loop:
        Event loop to run on (a fresh one by default).
    fault_injector:
        Optional reclamation sampler; fired every
        ``reclamation_interval_seconds`` of virtual time as a scheduled
        event rather than eagerly inside each serve.
    reclamation_interval_seconds:
        Virtual-time spacing of reclamation events.
    max_queue_depth:
        Admission bound — maximum number of requests waiting for a slot on
        this engine before new arrivals are shed.  Defaults to
        ``config.serverless.max_queue_depth``; ``0`` means unbounded.
    shed_policy:
        What happens to shed arrivals (``"drop"`` or
        ``"degrade-to-objstore"``).  Defaults to
        ``config.serverless.shed_policy``.
    """

    system_name = "engine-flstore"

    def __init__(
        self,
        flstore: FLStore,
        loop: EventLoop | None = None,
        fault_injector: ZipfianFaultInjector | None = None,
        reclamation_interval_seconds: float = 60.0,
        max_queue_depth: int | None = None,
        shed_policy: str | None = None,
    ) -> None:
        if flstore.fault_injector is not None:
            raise ValueError(
                "the engine schedules reclamations itself; build the FLStore "
                "without a fault injector and pass it to EngineFLStore instead"
            )
        self.flstore = flstore
        self.loop = loop or EventLoop()
        self.platform = flstore.platform
        self.fault_injector = fault_injector
        self.reclamation_interval_seconds = reclamation_interval_seconds
        serverless = flstore.config.serverless
        self.max_queue_depth = (
            serverless.max_queue_depth if max_queue_depth is None else int(max_queue_depth)
        )
        self.shed_policy = serverless.shed_policy if shed_policy is None else shed_policy
        # Keep the per-function queue capacities in lockstep with the bound
        # admission control actually enforces; otherwise an override looser
        # than config.max_queue_depth would admit a request only for the
        # function queue to reject it mid-simulation.
        self.platform.set_queue_capacity(self.max_queue_depth)
        self.keepalive_pings = 0
        self.reclamations = 0
        self.shed_requests = 0
        self.degraded_requests = 0
        self.requeued_requests = 0
        #: Gray-degradation lever (:mod:`repro.engine.faults`): executions on
        #: this engine hold their slot ``multiplier`` times as long, but the
        #: analytic latency/cost records are untouched — a slow shard looks
        #: healthy in its own metrics and only sojourn times reveal it.
        self.service_time_multiplier = 1.0
        #: Transient network-spike lever: requests served while it is above
        #: 1.0 have the communication components of their latency and cost
        #: scaled (``repro.network.model.spike_latency`` / ``spike_cost``) —
        #: unlike the gray multiplier, the surcharge is visible in records.
        self.network_fault_multiplier = 1.0
        self._outstanding = 0
        self._waiting = 0
        self._depth_samples: list[tuple[float, int]] = []
        self._completed: list[EngineOutcome] = []
        #: Lifetime completion counters, maintained in O(1) per outcome.
        #: The remediation controller samples SLO compliance from these
        #: (``watch_slo_seconds`` arms the violation counter) instead of
        #: re-scanning ``_completed`` every control tick, and the streaming
        #: metrics mode depends on them because it retains no rows at all.
        self.completed_total = 0
        self.finished_total = 0
        self.slo_violations_total = 0
        self.watch_slo_seconds: float | None = None
        #: Multi-tenant state (empty on single-tenant engines, which keeps
        #: every untagged code path byte-identical).  Weights feed the
        #: wfq/drr queue disciplines; per-tenant SLOs and the lifetime
        #: violation/finished counters feed SLO-aware shedding and the
        #: ``slo`` autoscaler policy.
        self._tenant_weights: dict[str, float] = {}
        self.tenant_slo_seconds: dict[str, float] = {}
        self.tenant_finished: dict[str, int] = {}
        self.tenant_slo_violations: dict[str, int] = {}
        self._tenant_waiting: dict[str, int] = {}
        #: Streaming-mode hooks: when set, completed outcomes / queue-depth
        #: changes flow to these callbacks *instead of* the retained
        #: ``_completed`` / ``_depth_samples`` lists (``metrics="streaming"``
        #: keeps memory flat in request count).  ``None`` (the default)
        #: preserves the retained-row pipeline byte for byte.
        self.outcome_sink: Callable[[EngineOutcome], None] | None = None
        self.depth_listener: Callable[["EngineFLStore", float, int], None] | None = None
        #: Re-arm predicate for the keep-alive/reclamation daemons.  Stand-
        #: alone, an engine keeps them alive while it has submitted-but-
        #: incomplete requests; a routing front door overrides this with its
        #: own in-flight count, because under route-at-arrival a shard only
        #: learns about a request when it arrives — its local count going
        #: momentarily to zero must not kill the daemons while the tier
        #: still has traffic coming.
        self.daemon_alive: Callable[[], bool] | None = None
        # One daemon of each kind at a time: a shard retired and re-activated
        # within one interval would otherwise end up with two concurrent
        # daemons (the old one has not yet observed its dead re-arm check).
        self._keepalive_daemon = False
        self._reclaim_daemon = False

    @classmethod
    def build(
        cls,
        config=None,
        policy_mode: str = "tailored",
        fault_injector: ZipfianFaultInjector | None = None,
        **kwargs,
    ) -> "EngineFLStore":
        """Build a fresh analytic FLStore and wrap it in an engine facade."""
        flstore = build_default_flstore(config, policy_mode=policy_mode)
        return cls(flstore, fault_injector=fault_injector, **kwargs)

    # --------------------------------------------------------- passthroughs

    @property
    def catalog(self):
        """The round catalog of the underlying FLStore."""
        return self.flstore.catalog

    @property
    def config(self):
        """The simulation configuration of the underlying FLStore."""
        return self.flstore.config

    def ingest_round(self, record):
        """Ingest a training round into the underlying FLStore."""
        return self.flstore.ingest_round(record)

    # ---------------------------------------------------------------- tenancy

    def configure_tenants(
        self,
        weights: Mapping[str, float],
        slo_seconds: Mapping[str, float | None] | None = None,
    ) -> None:
        """Arm the engine's tenant policy state.

        ``weights`` drive the ``wfq``/``drr`` queue disciplines and the
        push-out victim ranking; ``slo_seconds`` gives each tenant its own
        sojourn SLO (``None`` entries disable violation accounting for that
        tenant).  An empty ``weights`` mapping disarms tenancy entirely —
        the engine is then byte-identical to a pre-tenant build.
        """
        self._tenant_weights = dict(weights)
        self.tenant_slo_seconds = {
            tenant: slo
            for tenant, slo in (slo_seconds or {}).items()
            if slo is not None
        }

    def tenant_violation_rate(self, tenant: str | None) -> float:
        """Lifetime SLO-violation rate of ``tenant`` (0.0 before any finish)."""
        if tenant is None:
            return 0.0
        finished = self.tenant_finished.get(tenant, 0)
        if not finished:
            return 0.0
        return self.tenant_slo_violations.get(tenant, 0) / finished

    def _pushout_victim(
        self, arriving: str | None, queued: Mapping[str, int]
    ) -> str | None:
        """Which queued tenant's newest waiter to shed instead of the arrival.

        SLO-aware admission: among tenants with queued requests, the one
        with the highest lifetime violation rate (ties broken by backlog
        per unit weight, then name for determinism) is pushed out — but
        only when its violation rate strictly exceeds the arriving
        tenant's, so a well-behaved arrival is never traded for an
        equally well-behaved waiter.  Returns ``None`` to shed the arrival
        as before.
        """
        arriving_rate = self.tenant_violation_rate(arriving)
        victim = None
        best: tuple[float, float, str] | None = None
        for flow, depth in queued.items():
            if flow is None or depth <= 0:
                continue
            rate = self.tenant_violation_rate(flow)
            if rate <= arriving_rate:
                continue
            key = (rate, depth / self._tenant_weights.get(flow, 1.0), str(flow))
            if best is None or key > best:
                best = key
                victim = flow
        return victim

    def _try_pushout(self, request: WorkloadRequest) -> bool:
        """Shed a worse-violating queued tenant's request to admit ``request``.

        Returns whether a victim was evicted (its waiter resumes
        synchronously with a ``"shed"`` grant and records its own shed
        outcome), leaving admission room for the arrival.
        """
        if not self._tenant_weights:
            return False
        victim = self._pushout_victim(request.tenant_id, self._tenant_waiting)
        if victim is None:
            return False
        token = self.platform.evict_waiter(victim)
        if token is None:
            return False
        token.resolve("shed")
        return True

    # ------------------------------------------------------------ submission

    def submit(self, request: WorkloadRequest, at: float, priority: float = 0.0) -> SimTask:
        """Schedule ``request`` to arrive at virtual time ``at``.

        Returns the request's task; it resolves with an
        :class:`EngineOutcome` when the request completes.  Admission
        control runs at arrival time: when ``max_queue_depth`` requests are
        already waiting, the arrival is shed per ``shed_policy`` *before*
        the serving oracle runs, so a dropped request leaves no trace in
        the cache, the policies, or the analytic clock.
        """
        task = SimTask(self.loop, name=request.request_id)
        self._outstanding += 1

        def _arrive() -> None:
            if (
                self.max_queue_depth > 0
                and self._waiting >= self.max_queue_depth
                and not self._try_pushout(request)
            ):
                self._shed(request, task)
            else:
                self.loop.process(self._request_process(request, priority), task=task)

        self.loop.schedule_at(at, _arrive)
        return task

    def _shed(self, request: WorkloadRequest, task: SimTask) -> None:
        """Apply the shedding policy to an arrival refused admission."""
        if self.shed_policy == "degrade-to-objstore":
            self.degraded_requests += 1
            self.platform.stats.requests_degraded += 1
            self.loop.process(self._degraded_process(request), task=task)
            return
        self.shed_requests += 1
        self.platform.stats.requests_shed += 1
        now = self.loop.now
        outcome = EngineOutcome(
            request=request,
            result=rejection_result(self.flstore, request),
            arrived_at=now,
            started_at=now,
            completed_at=now,
            disposition="shed",
        )
        self._record(outcome)
        self._outstanding -= 1
        task.resolve(outcome)

    def _degraded_process(self, request: WorkloadRequest):
        """A shed request served on the object-store bypass (no queue, no cache)."""
        arrived_at = self.loop.now
        result = serve_degraded(self.flstore, request)
        result = self._apply_network_fault(result)
        service_seconds = result.latency.total_seconds * self.service_time_multiplier
        if service_seconds > 0:
            yield Timeout(service_seconds)
        outcome = EngineOutcome(
            request=request,
            result=result,
            arrived_at=arrived_at,
            started_at=arrived_at,
            completed_at=self.loop.now,
            disposition="degraded",
        )
        self._record(outcome)
        self._outstanding -= 1
        return outcome

    def _request_process(self, request: WorkloadRequest, priority: float):
        """One request as a timed process: serve oracle, queue, execute, release."""
        arrived_at = self.loop.now
        disposition = "served"
        result = self._apply_network_fault(self.flstore.serve(request))
        function_id = result.execution_function
        holds_slot = False
        if function_id is not None and self.platform.has_function(function_id):
            if self.platform.try_acquire_slot(function_id):
                holds_slot = True
            else:
                token = SimTask(self.loop, name=f"slot:{request.request_id}")
                tenant = request.tenant_id
                weight = self._tenant_weights.get(tenant, 1.0) if tenant else 1.0
                queue = self.platform.request_queue(function_id)
                if self._tenant_weights and queue.full:
                    # A cross-function push-out freed global admission room
                    # but this particular function's queue is still at
                    # capacity: evict its worst-scored flow locally so the
                    # admitted arrival has somewhere to wait.
                    flows = queue.queued_flows()
                    local_victim = max(
                        flows,
                        key=lambda f: (
                            self.tenant_violation_rate(f),
                            flows[f] / self._tenant_weights.get(f, 1.0),
                            str(f),
                        ),
                    )
                    evicted = queue.evict(local_victim)
                    if evicted is not None:
                        evicted.resolve("shed")
                self.platform.enqueue_waiter(
                    function_id, token, priority, flow=tenant, weight=weight
                )
                if tenant is not None:
                    self._tenant_waiting[tenant] = self._tenant_waiting.get(tenant, 0) + 1
                self._note_queue_change(+1)
                granted = yield token
                self._note_queue_change(-1)
                if tenant is not None:
                    remaining = self._tenant_waiting.get(tenant, 0) - 1
                    if remaining > 0:
                        self._tenant_waiting[tenant] = remaining
                    else:
                        self._tenant_waiting.pop(tenant, None)
                if granted == "shed":
                    # Pushed out of the queue by SLO-aware admission in
                    # favour of a better-behaved arrival.  The request is
                    # shed per ``shed_policy`` from the moment of eviction;
                    # its serving-oracle side effects stand (like a
                    # requeued request's).
                    evicted_at = self.loop.now
                    if self.shed_policy == "degrade-to-objstore":
                        self.degraded_requests += 1
                        self.platform.stats.requests_degraded += 1
                        result = self._apply_network_fault(serve_degraded(self.flstore, request))
                        service_seconds = result.latency.total_seconds * self.service_time_multiplier
                        if service_seconds > 0:
                            yield Timeout(service_seconds)
                        disposition = "degraded"
                    else:
                        self.shed_requests += 1
                        self.platform.stats.requests_shed += 1
                        result = rejection_result(self.flstore, request)
                        disposition = "shed"
                    outcome = EngineOutcome(
                        request=request,
                        result=result,
                        arrived_at=arrived_at,
                        started_at=evicted_at,
                        completed_at=self.loop.now,
                        disposition=disposition,
                    )
                    self._record(outcome)
                    self._outstanding -= 1
                    return outcome
                # A False grant means the function was reclaimed while the
                # request waited; it proceeds without holding a slot (its
                # analytic outcome already happened at arrival) and is
                # accounted as requeued rather than silently passing.
                holds_slot = bool(granted)
                if not holds_slot:
                    disposition = "requeued"
                    self.requeued_requests += 1
                    self.platform.stats.requests_requeued += 1
        started_at = self.loop.now
        service_seconds = result.latency.total_seconds * self.service_time_multiplier
        if service_seconds > 0:
            yield Timeout(service_seconds)
        if holds_slot:
            next_token = self.platform.release_slot(function_id)
            if next_token is not None:
                next_token.resolve(True)
        outcome = EngineOutcome(
            request=request,
            result=result,
            arrived_at=arrived_at,
            started_at=started_at,
            completed_at=self.loop.now,
            disposition=disposition,
        )
        self._record(outcome)
        self._outstanding -= 1
        return outcome

    def _record(self, outcome: EngineOutcome) -> None:
        """Account one completed outcome: counters, then retain or stream it."""
        self.completed_total += 1
        if outcome.disposition != "shed":
            self.finished_total += 1
            watch = self.watch_slo_seconds
            tenant = outcome.request.tenant_id
            if tenant is None:
                if watch is not None and outcome.sojourn_seconds > watch:
                    self.slo_violations_total += 1
            else:
                self.tenant_finished[tenant] = self.tenant_finished.get(tenant, 0) + 1
                slo = self.tenant_slo_seconds.get(tenant, watch)
                if slo is not None and outcome.sojourn_seconds > slo:
                    self.slo_violations_total += 1
                    self.tenant_slo_violations[tenant] = (
                        self.tenant_slo_violations.get(tenant, 0) + 1
                    )
        sink = self.outcome_sink
        if sink is None:
            self._completed.append(outcome)
        else:
            sink(outcome)

    def _note_queue_change(self, delta: int) -> None:
        self._waiting += delta
        listener = self.depth_listener
        if listener is None:
            self._depth_samples.append((self.loop.now, self._waiting))
        else:
            listener(self, self.loop.now, self._waiting)

    def _apply_network_fault(self, result: ServeResult) -> ServeResult:
        """Scale a result's communication latency/cost during a network spike."""
        if self.network_fault_multiplier == 1.0:
            return result
        return dataclasses.replace(
            result,
            latency=spike_latency(result.latency, self.network_fault_multiplier),
            cost=spike_cost(result.cost, self.network_fault_multiplier),
        )

    # ------------------------------------------------------- capacity scaling

    @property
    def waiting(self) -> int:
        """Requests currently queued for an execution slot on this engine."""
        return self._waiting

    @property
    def outstanding(self) -> int:
        """Requests submitted but not yet completed (queued, executing, or scheduled)."""
        return self._outstanding

    def set_function_concurrency(self, limit: int) -> int:
        """Re-scale per-function concurrency; resume waiters granted new slots.

        The autoscaler's within-shard actuator: raising ``limit`` models
        spawning extra warm instances behind each logical function (queued
        requests start executing immediately), lowering it retires instances
        lazily as their executions finish.  Returns the number of waiters
        granted a slot by the change.
        """
        granted = self.platform.set_function_concurrency(limit)
        for token in granted:
            # Resuming a waiter (resolve) re-enters its process, which
            # performs its own queue-depth decrement.
            token.resolve(True)
        return len(granted)

    def force_reclaim(self, function_ids: Iterable[str]) -> list[str]:
        """Reclaim the named warm functions *now* (a correlated fault burst).

        The storm-injection actuator (:mod:`repro.engine.faults`): unlike the
        sampled reclamation daemon, the caller decides exactly which
        functions die.  Waiters queued on a reclaimed function resume without
        a slot and are accounted as ``requeued`` — the same conservation
        semantics as the daemon — and the cache drops the lost keys.
        Returns the function ids actually reclaimed (cold ones are skipped).
        """
        reclaimed: list[str] = []
        for function_id in function_ids:
            if not self.platform.has_function(function_id):
                continue
            if not self.platform.get_function(function_id).is_warm:
                continue
            self.platform.reclaim_function(function_id)
            self.reclamations += 1
            reclaimed.append(function_id)
            # Resuming a waiter (resolve) re-enters its process, which
            # performs its own queue-depth decrement.
            for token in self.platform.drain_waiters(function_id):
                token.resolve(False)
        if reclaimed:
            self.flstore.engine.drop_lost_keys()
        return reclaimed

    def retire(self) -> None:
        """Take this shard out of service: drain waiters, release warm capacity.

        Queued waiters resume without a slot and are accounted as
        ``requeued`` (the same semantics as a reclamation draining them), so
        conservation holds across the resize; in-flight executions finish on
        the shared loop.  Warm functions are reclaimed, so the shard stops
        counting toward the tier's warm capacity and cache liveness.
        """
        for function in list(self.platform.functions()):
            function_id = function.function_id
            for token in self.platform.drain_waiters(function_id):
                token.resolve(False)
            if function.is_warm:
                self.platform.reclaim_function(function_id)
        self.flstore.engine.drop_lost_keys()
        # A retired shard has nothing to keep warm and samples no further
        # reclamations; let its daemons wind down at their next tick.
        self.daemon_alive = lambda: False

    # --------------------------------------------------- lifecycle as events

    def _daemons_live(self) -> bool:
        """Whether the keep-alive/reclamation daemons should re-arm."""
        if self.daemon_alive is not None:
            return self.daemon_alive()
        return self._outstanding > 0

    def schedule_keepalive(self, interval_seconds: float | None = None) -> None:
        """Ping warm functions every ``interval_seconds`` of virtual time.

        The recurring event first advances the shared analytic clock to the
        engine's virtual time (monotonically), then pings every warm
        function, so ``last_invoked_at`` stamps track the open-loop timeline
        rather than the analytic per-request one.  It re-arms itself while
        requests are outstanding — a periodic daemon on the event heap
        instead of an eager callback per request.
        """
        interval = (
            interval_seconds
            if interval_seconds is not None
            else self.flstore.config.serverless.keepalive_interval_seconds
        )
        if interval <= 0:
            raise ValueError(f"keepalive interval must be positive, got {interval}")
        if self._keepalive_daemon:
            return
        self._keepalive_daemon = True

        def _ping() -> None:
            self.flstore.clock.advance_to(self.loop.now)
            for function in self.platform.warm_functions():
                self.platform.ping(function.function_id)
                self.keepalive_pings += 1
            if self._daemons_live():
                self.loop.schedule(interval, _ping)
            else:
                self._keepalive_daemon = False

        self.loop.schedule(interval, _ping)

    def schedule_reclamations(self, interval_seconds: float | None = None) -> None:
        """Sample provider reclamations on a timer instead of per request."""
        if self.fault_injector is None:
            return
        interval = (
            interval_seconds if interval_seconds is not None else self.reclamation_interval_seconds
        )
        if interval <= 0:
            raise ValueError(f"reclamation interval must be positive, got {interval}")
        if self._reclaim_daemon:
            return
        self._reclaim_daemon = True

        def _reclaim() -> None:
            reclaimed = self.fault_injector.sample_reclamations(
                self.flstore.cluster.function_ids(), now=self.loop.now
            )
            for function_id in reclaimed:
                self.platform.reclaim_function(function_id)
                self.reclamations += 1
                # Resuming a waiter (resolve) re-enters its process, which
                # performs its own queue-depth decrement.
                for token in self.platform.drain_waiters(function_id):
                    token.resolve(False)
            if reclaimed:
                self.flstore.engine.drop_lost_keys()
            if self._daemons_live():
                self.loop.schedule(interval, _reclaim)
            else:
                self._reclaim_daemon = False

        self.loop.schedule(interval, _reclaim)

    # ------------------------------------------------------------ run modes

    def run_closed_loop(self, requests: Iterable[WorkloadRequest]) -> list[ServeResult]:
        """Serve ``requests`` sequentially through the engine.

        Each request arrives exactly when the previous one completed, so no
        request ever queues and the returned :class:`ServeResult` sequence is
        byte-identical to calling ``FLStore.serve`` directly.
        """
        results: list[ServeResult] = []
        for request in requests:
            task = self.submit(request, at=self.loop.now)
            self.loop.run()
            results.append(task.result.result)
        return results

    def _submit_block(
        self,
        requests: Sequence[WorkloadRequest],
        absolute_times: Sequence[float],
        priorities: Sequence[float] | None,
    ) -> None:
        """Submit one open-loop block, bulk-scheduling sorted arrivals.

        Arrival processes produce non-decreasing instants, so the common
        case consumes them through :meth:`EventLoop.schedule_many` (one
        sorted-array cursor) instead of N individual pushes; a contiguous
        sequence block is reserved up front, so the event order — and
        therefore every report — is byte-identical to per-request
        :meth:`submit` calls.  Unsorted inputs fall back to those calls.
        """
        count = len(requests)
        if count == 0:
            return
        times = np.asarray(absolute_times, dtype=np.float64)
        if count > 1 and not bool(np.all(times[1:] >= times[:-1])):
            for index, (request, at) in enumerate(zip(requests, absolute_times)):
                priority = priorities[index] if priorities is not None else 0.0
                self.submit(request, at=at, priority=priority)
            return
        tasks = [SimTask(self.loop, name=request.request_id) for request in requests]
        self._outstanding += count

        def _arrive(index: int) -> None:
            request = requests[index]
            task = tasks[index]
            if (
                self.max_queue_depth > 0
                and self._waiting >= self.max_queue_depth
                and not self._try_pushout(request)
            ):
                self._shed(request, task)
            else:
                priority = priorities[index] if priorities is not None else 0.0
                self.loop.process(self._request_process(request, priority), task=task)

        self.loop.schedule_many(times, _arrive)

    def run_open_loop(
        self,
        requests: Sequence[WorkloadRequest],
        arrival_times: Sequence[float],
        priorities: Sequence[float] | None = None,
        label: str = "open-loop",
        keepalive: bool = False,
        slo_seconds: float | None = None,
        fault_plan=None,
        metrics: str = "full",
    ) -> LoadReport:
        """Serve ``requests`` at the given arrival times; report load metrics.

        ``arrival_times`` come from an arrival process
        (:mod:`repro.traces.arrivals`) and are relative to the start of this
        run (the loop's current virtual time), so repeated runs on one
        engine compose; overlapping requests contend for execution slots and
        queue per function.  With ``keepalive`` the keep-alive daemon runs
        as a recurring event; a fault injector (if configured) adds
        reclamation events.  ``slo_seconds`` (optional) sets the sojourn-time
        SLO the report's ``violation_rate`` is measured against.  Per-run
        counters (queue-depth samples, keep-alive pings, reclamations, shed
        accounting) are reported per run, not engine-lifetime.  A
        ``fault_plan`` (:class:`repro.engine.faults.FaultPlan`) schedules its
        fault clauses as events on the same virtual timeline.

        ``metrics`` selects the report pipeline: ``"full"`` (default)
        retains every outcome and reports exact percentiles — byte-identical
        to the pre-knob behaviour — while ``"streaming"`` folds outcomes
        into O(1)-memory accumulators (:mod:`repro.engine.streaming`) as
        they complete: every scalar column except the three percentile
        sketches is still exact, and ``report.outcomes`` is empty.
        """
        if len(requests) != len(arrival_times):
            raise ValueError("requests and arrival_times must have the same length")
        check_metrics_mode(metrics)
        base = self.loop.now
        absolute_times = [base + float(at) for at in arrival_times]
        start_count = len(self._completed)
        pings_before = self.keepalive_pings
        reclamations_before = self.reclamations
        self._depth_samples = []
        collector: StreamingLoadCollector | None = None
        if metrics == "streaming":
            collector = StreamingLoadCollector(
                slo_seconds, tenant_slos=self.tenant_slo_seconds or None
            )
            self.outcome_sink = collector.fold
            self.depth_listener = lambda engine, now, depth: collector.note_depth(now, depth)
        try:
            self._submit_block(requests, absolute_times, priorities)
            if keepalive:
                self.schedule_keepalive()
            self.schedule_reclamations()
            if fault_plan is not None:
                fault_plan.start()
            self.loop.run()
        finally:
            if collector is not None:
                self.outcome_sink = None
                self.depth_listener = None
        if collector is not None:
            return collector.build_report(
                label,
                submitted=len(absolute_times),
                first_arrival=min(absolute_times) if absolute_times else 0.0,
                last_arrival=max(absolute_times) if absolute_times else 0.0,
                keepalive_pings=self.keepalive_pings - pings_before,
                reclamations=self.reclamations - reclamations_before,
            )
        outcomes = self._completed[start_count:]
        return build_load_report(
            outcomes,
            absolute_times,
            label,
            depth_samples=self._depth_samples,
            keepalive_pings=self.keepalive_pings - pings_before,
            reclamations=self.reclamations - reclamations_before,
            slo_seconds=slo_seconds,
            tenant_slos=self.tenant_slo_seconds or None,
        )
