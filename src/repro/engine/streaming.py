"""Streaming O(1)-memory load metrics (the ``metrics="streaming"`` mode).

The default (``metrics="full"``) report pipeline retains every
:class:`~repro.engine.flstore.EngineOutcome` and every queue-depth sample,
then aggregates at the end (:func:`repro.engine.flstore.build_load_report`)
— exact, byte-stable, and O(n) in request count.  At a million requests
that's hundreds of MB of Python objects, so this module provides the
constant-memory alternative the scenario knob selects:

* :class:`StreamingQuantiles` — a log-bucketed histogram sketch.  Counts per
  geometric bucket, quantiles answered at the bucket's geometric midpoint:
  ~1% relative error at ``growth=1.02``, a few KB of state, deterministic.
* :class:`DepthAccumulator` — the time-weighted queue-depth integral updated
  incrementally per queue change; the mean is exact (same accumulation
  order as the retained-sample profile), the max is exact up to same-instant
  sample ordering.
* :class:`StreamingLoadCollector` — folds outcomes (or whole numpy batches
  from the vectorized fast path) into running counts, sums, SLO-violation
  counters, and the sketches above, then builds a
  :class:`~repro.engine.flstore.LoadReport` whose scalar fields match the
  full pipeline exactly *except* the three percentile columns (sketch
  approximation) — and whose ``outcomes`` list is empty by construction.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (flstore imports us)
    from repro.engine.flstore import EngineOutcome, LoadReport


class StreamingQuantiles:
    """Log-bucketed quantile sketch: O(buckets) memory, ~1% relative error.

    Values are counted in geometric buckets ``[min_value * growth**i,
    min_value * growth**(i+1))``; a quantile is answered at its bucket's
    geometric midpoint, clamped to the exactly-tracked min/max.  With the
    default ``growth=1.02`` the half-bucket error is under 1% — plenty for
    p50/p95/p99 latency columns — and the whole sketch is ~12 KB.
    """

    __slots__ = ("_min_value", "_log_min", "_log_growth", "_num_bins", "_counts", "_total", "_low", "_high")

    def __init__(self, min_value: float = 1e-6, max_value: float = 1e7, growth: float = 1.02) -> None:
        if not (0.0 < min_value < max_value):
            raise ValueError("need 0 < min_value < max_value")
        if growth <= 1.0:
            raise ValueError("growth must exceed 1.0")
        self._min_value = min_value
        self._log_min = math.log(min_value)
        self._log_growth = math.log(growth)
        self._num_bins = int(math.ceil((math.log(max_value) - self._log_min) / self._log_growth))
        # Bin 0 is the underflow bucket (values <= min_value); the last bin
        # is the overflow bucket (values >= max_value).
        self._counts = np.zeros(self._num_bins + 2, dtype=np.int64)
        self._total = 0
        self._low = math.inf
        self._high = -math.inf

    @property
    def count(self) -> int:
        return self._total

    def add(self, value: float) -> None:
        if value <= self._min_value:
            index = 0
        else:
            index = min(
                int((math.log(value) - self._log_min) / self._log_growth) + 1,
                self._num_bins + 1,
            )
        self._counts[index] += 1
        self._total += 1
        if value < self._low:
            self._low = value
        if value > self._high:
            self._high = value

    def add_array(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        clipped = np.maximum(values, self._min_value)
        indexes = ((np.log(clipped) - self._log_min) / self._log_growth).astype(np.int64) + 1
        indexes[values <= self._min_value] = 0
        np.clip(indexes, 0, self._num_bins + 1, out=indexes)
        self._counts += np.bincount(indexes, minlength=self._counts.size)
        self._total += int(values.size)
        self._low = min(self._low, float(values.min()))
        self._high = max(self._high, float(values.max()))

    def quantile(self, q: float) -> float:
        """The approximate ``q``-quantile (``q`` in [0, 1])."""
        if self._total == 0:
            return 0.0
        # The order statistic np.percentile interpolates around; landing on
        # its floor keeps the sketch within one bucket of the exact answer.
        rank = int(q * (self._total - 1))
        cumulative = np.cumsum(self._counts)
        index = int(np.searchsorted(cumulative, rank + 1))
        if index <= 0:
            return float(self._low)
        if index >= self._num_bins + 1:
            return float(self._high)
        midpoint = math.exp(self._log_min + (index - 0.5) * self._log_growth)
        return float(min(max(midpoint, self._low), self._high))


class DepthAccumulator:
    """Incremental time-weighted queue-depth profile (mean and max).

    Mirrors :func:`repro.engine.flstore._queue_depth_profile` over a stream
    of ``(time, depth)`` observations without retaining them: the integral
    accumulates in observation order (the same float additions the retained
    profile performs), so the mean is exact; the max matches except when
    several shards change depth at the same virtual instant, where sample
    ordering is implementation-defined either way.
    """

    __slots__ = ("_integral", "_prev_time", "_depth", "max_depth")

    def __init__(self) -> None:
        self._integral = 0.0
        self._prev_time: float | None = None
        self._depth = 0
        self.max_depth = 0

    def observe(self, now: float, depth: int) -> None:
        if self._prev_time is not None:
            self._integral += self._depth * (now - self._prev_time)
        self._prev_time = now
        self._depth = depth
        if depth > self.max_depth:
            self.max_depth = depth

    def finalize(self, start: float, end: float) -> tuple[float, int]:
        """Mean depth over ``[start, end]`` and the max observed depth."""
        if self._prev_time is None or end <= start:
            return 0.0, self.max_depth
        integral = self._integral + self._depth * (end - self._prev_time)
        return integral / (end - start), self.max_depth


class _TenantAccumulator:
    """Per-tenant running counts and a sojourn sketch (streaming mode)."""

    __slots__ = ("offered", "served", "requeued", "degraded", "shed", "sojourn_sum", "violations", "quantiles")

    def __init__(self) -> None:
        self.offered = 0
        self.served = 0
        self.requeued = 0
        self.degraded = 0
        self.shed = 0
        self.sojourn_sum = 0.0
        self.violations = 0
        self.quantiles = StreamingQuantiles()

    @property
    def finished(self) -> int:
        return self.served + self.requeued + self.degraded


class StreamingLoadCollector:
    """Fold outcomes into O(1) state; build a row-free ``LoadReport``.

    One collector serves one open-loop run.  The engine (or sharded front
    door) routes every completed outcome through :meth:`fold` instead of
    appending it to a list, and queue-depth changes through
    :meth:`note_depth`; the vectorized fast path folds whole numpy chunks
    through :meth:`fold_served_arrays`.  Counts, means, rates, horizon, and
    the mean queue depth come out identical to the full pipeline; the
    percentile columns carry the sketch's ~1% error.  ``tenant_slos`` arms
    the per-tenant breakdown rows (one :class:`_TenantAccumulator` per
    observed tenant, each its own few-KB sketch).
    """

    def __init__(
        self,
        slo_seconds: float | None = None,
        tenant_slos: "dict[str, float | None] | None" = None,
    ) -> None:
        self.slo_seconds = slo_seconds
        self.tenant_slos = dict(tenant_slos) if tenant_slos else {}
        self.served = 0
        self.requeued = 0
        self.degraded = 0
        self.shed = 0
        self.sojourn_sum = 0.0
        self.wait_sum = 0.0
        self.violations = 0
        self.last_completion = -math.inf
        self.quantiles = StreamingQuantiles()
        self.depth = DepthAccumulator()
        self._tenants: dict[str, _TenantAccumulator] = {}

    @property
    def completed(self) -> int:
        """Finished (non-shed) outcomes folded so far."""
        return self.served + self.degraded

    def fold(self, outcome: "EngineOutcome") -> None:
        completed_at = outcome.completed_at
        if completed_at > self.last_completion:
            self.last_completion = completed_at
        disposition = outcome.disposition
        tenant = outcome.request.tenant_id
        acc: _TenantAccumulator | None = None
        if tenant is not None:
            acc = self._tenants.get(tenant)
            if acc is None:
                acc = self._tenants[tenant] = _TenantAccumulator()
            acc.offered += 1
        if disposition == "shed":
            self.shed += 1
            if acc is not None:
                acc.shed += 1
            return
        if disposition == "degraded":
            self.degraded += 1
            if acc is not None:
                acc.degraded += 1
        else:
            self.served += 1
            if disposition == "requeued":
                self.requeued += 1
                if acc is not None:
                    acc.requeued += 1
            elif acc is not None:
                acc.served += 1
        sojourn = outcome.sojourn_seconds
        self.sojourn_sum += sojourn
        self.wait_sum += outcome.wait_seconds
        if self.slo_seconds is not None and sojourn > self.slo_seconds:
            self.violations += 1
        self.quantiles.add(sojourn)
        if acc is not None:
            acc.sojourn_sum += sojourn
            acc.quantiles.add(sojourn)
            slo = self.tenant_slos.get(tenant)
            if slo is not None and sojourn > slo:
                acc.violations += 1

    def fold_served_arrays(self, sojourns: np.ndarray, waits: np.ndarray) -> None:
        """Fold one chunk of served-disposition requests (vectorized path)."""
        if sojourns.size == 0:
            return
        self.served += int(sojourns.size)
        self.sojourn_sum += float(sojourns.sum())
        self.wait_sum += float(waits.sum())
        if self.slo_seconds is not None:
            self.violations += int(np.count_nonzero(sojourns > self.slo_seconds))
        self.quantiles.add_array(sojourns)

    def note_depth(self, now: float, depth: int) -> None:
        self.depth.observe(now, depth)

    def tenant_rows(self) -> list[dict]:
        """Per-tenant rows mirroring :func:`~repro.engine.flstore.build_tenant_rows`.

        Same columns and conservation invariant (``served + requeued +
        degraded + shed == offered``); the two percentile columns carry the
        sketch's ~1% error instead of exact order statistics.
        """
        if not self._tenants:
            return []
        total_finished = sum(acc.finished for acc in self._tenants.values())
        rows = []
        for tenant in sorted(self._tenants):
            acc = self._tenants[tenant]
            finished = acc.finished
            rows.append(
                {
                    "tenant": tenant,
                    "offered": acc.offered,
                    "served": acc.served,
                    "requeued": acc.requeued,
                    "degraded": acc.degraded,
                    "shed": acc.shed,
                    "service_share": finished / total_finished if total_finished else 0.0,
                    "mean_sojourn_seconds": acc.sojourn_sum / finished if finished else 0.0,
                    "p50_sojourn_seconds": acc.quantiles.quantile(0.50) if finished else 0.0,
                    "p99_sojourn_seconds": acc.quantiles.quantile(0.99) if finished else 0.0,
                    "violation_rate": acc.violations / finished if finished else 0.0,
                    "slo_seconds": self.tenant_slos.get(tenant),
                }
            )
        return rows

    def note_completion_time(self, completed_at: float) -> None:
        if completed_at > self.last_completion:
            self.last_completion = completed_at

    def build_report(
        self,
        label: str,
        submitted: int,
        first_arrival: float,
        last_arrival: float,
        keepalive_pings: int = 0,
        reclamations: int = 0,
        depth_profile: tuple[float, int] | None = None,
    ) -> "LoadReport":
        """Assemble the ``LoadReport`` (same formulas as the full pipeline).

        ``depth_profile`` overrides the incremental accumulator when the
        caller computed the profile analytically (the vectorized fast path:
        mean depth is total wait over the horizon, exactly).
        """
        from repro.engine.flstore import LoadReport

        if submitted == 0:
            first_arrival = 0.0
        completed = self.completed
        last_completion = self.last_completion if self.last_completion > -math.inf else first_arrival
        horizon = max(last_completion - first_arrival, 0.0)
        arrival_span = last_arrival - first_arrival if submitted > 1 else 0.0
        offered = submitted / arrival_span if arrival_span > 0 else 0.0
        goodput = self.served / horizon if horizon > 0 else 0.0
        if depth_profile is not None:
            mean_depth, max_depth = depth_profile
        else:
            mean_depth, max_depth = self.depth.finalize(first_arrival, last_completion)
        return LoadReport(
            label=label,
            submitted=submitted,
            completed=completed,
            offered_rps=offered,
            goodput_rps=goodput,
            horizon_seconds=horizon,
            mean_sojourn_seconds=self.sojourn_sum / completed if completed else 0.0,
            p50_sojourn_seconds=self.quantiles.quantile(0.50) if completed else 0.0,
            p95_sojourn_seconds=self.quantiles.quantile(0.95) if completed else 0.0,
            p99_sojourn_seconds=self.quantiles.quantile(0.99) if completed else 0.0,
            mean_wait_seconds=self.wait_sum / completed if completed else 0.0,
            mean_service_seconds=(self.sojourn_sum - self.wait_sum) / completed if completed else 0.0,
            mean_queue_depth=mean_depth,
            max_queue_depth=max_depth,
            keepalive_pings=keepalive_pings,
            reclamations=reclamations,
            served=self.served,
            requeued=self.requeued,
            degraded=self.degraded,
            shed=self.shed,
            shed_rate=self.shed / submitted if submitted else 0.0,
            violation_rate=self.violations / completed if completed else 0.0,
            slo_seconds=self.slo_seconds,
            tenant_rows=self.tenant_rows(),
            outcomes=[],
        )


#: The metric pipelines a run can select.
METRICS_MODES: tuple[str, ...] = ("full", "streaming")


def check_metrics_mode(metrics: str) -> str:
    """Validate a ``metrics=`` knob value, returning it unchanged."""
    if metrics not in METRICS_MODES:
        raise ValueError(f"metrics must be one of {METRICS_MODES}, got {metrics!r}")
    return metrics
