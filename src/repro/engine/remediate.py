"""A closed-loop remediation controller with shadow-verified actuation.

Where the autoscaler (:mod:`repro.engine.autoscale`) tracks *load*, this
controller responds to *faults*.  It rides the same control-tick mechanism —
a recurring scheduled event on the tier's virtual timeline, sampling the
same queue-depth / counter-delta signals — and closes a
detect → propose → verify → actuate loop (the k8s-auto-fix shape):

1. **Detect.**  Each tick compares the sampled signals against EWMA
   baselines learned from the run's own healthy ticks: queue depth and
   SLO-violation-rate anomalies (relative to baseline, with absolute
   floors), plus two *structural* signals no healthy run produces —
   capacity below the spec's nominal (a crashed shard, demoted slots) and
   bursts of force-drained waiters (``requeued`` deltas, the
   conservation-pressure signature of reclamation storms and crashes).
2. **Propose.**  Anomalies map to a ranked action list: re-add the lost
   shard, promote per-function slots back to nominal, reroute arrivals via
   join-shortest-queue, or switch shedding from ``drop`` to
   ``degrade-to-objstore``.  Actuation never raises capacity above the
   spec's nominal (shards x slots), so a remediated run costs the same warm
   capacity as an unremediated one.
3. **Verify.**  The top proposal is forked into a bounded *shadow
   simulation* (an injected runner; the scenario layer builds a shrunk
   snapshot spec of the tier's current degraded state and replays the
   arrival process's prefix) with and without the action applied.  The
   action is accepted only if the forecast p99 or goodput improves and
   neither regresses beyond tolerance.  Every accept **and** reject is
   logged with its forecast deltas.
4. **Actuate** on accept, then cool down.

Two guardrails keep the controller provably inert on healthy runs (pinned
by the no-fault byte-identity test): performance anomalies alone are
*logged but never actuated* — actuation requires structural evidence of a
fault — and baselines only update on healthy ticks, so an anomaly cannot
teach the detector to ignore itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError

#: Actions the controller can propose, in rank order (capacity restoration
#: first, capacity-neutral rebalancing after).
REMEDIATION_ACTIONS: tuple[str, ...] = (
    "add-shard",
    "promote-slots",
    "reroute-jsq",
    "shed-degrade",
)


@dataclass(frozen=True)
class RemediationConfig:
    """Tunables of the remediation control loop."""

    #: Virtual-time spacing of control ticks.
    control_interval_seconds: float = 5.0
    #: EWMA weight of the newest healthy sample in the baselines.
    ewma_alpha: float = 0.4
    #: Ticks before the baselines are trusted (no anomalies during warmup).
    warmup_ticks: int = 2
    #: Queue-depth anomaly: depth must exceed both this multiple of the
    #: baseline and the absolute floor.
    queue_depth_factor: float = 3.0
    min_queue_depth: int = 6
    #: SLO-violation anomaly: the recent violation rate must exceed both
    #: this absolute rate and ``queue_depth_factor`` x its baseline.
    violation_rate_threshold: float = 0.5
    #: Structural anomaly: waiters force-drained (``requeued``) in a tick.
    #: A healthy run never force-drains, so any positive count is evidence.
    requeue_spike_threshold: int = 1
    #: Minimum virtual time between verification attempts (accept or not).
    cooldown_seconds: float = 15.0
    #: Hard cap on actuations per run.
    max_actions: int = 4
    #: Shadow gate: minimum forecast improvement (seconds of p99, rps of
    #: goodput) and maximum tolerated regression on the other metric.
    improvement_epsilon: float = 0.0
    regression_tolerance: float = 0.10

    def __post_init__(self) -> None:
        if self.control_interval_seconds <= 0:
            raise ConfigurationError("control_interval_seconds must be positive")
        if not 0 < self.ewma_alpha <= 1:
            raise ConfigurationError("ewma_alpha must be in (0, 1]")
        if self.warmup_ticks < 0:
            raise ConfigurationError("warmup_ticks must be >= 0")
        if self.queue_depth_factor < 1:
            raise ConfigurationError("queue_depth_factor must be >= 1")
        if self.min_queue_depth < 1:
            raise ConfigurationError("min_queue_depth must be >= 1")
        if not 0 < self.violation_rate_threshold <= 1:
            raise ConfigurationError("violation_rate_threshold must be in (0, 1]")
        if self.requeue_spike_threshold < 1:
            raise ConfigurationError("requeue_spike_threshold must be >= 1")
        if self.cooldown_seconds < 0:
            raise ConfigurationError("cooldown_seconds must be >= 0")
        if self.max_actions < 0:
            raise ConfigurationError("max_actions must be >= 0")
        if self.improvement_epsilon < 0:
            raise ConfigurationError("improvement_epsilon must be >= 0")
        if self.regression_tolerance < 0:
            raise ConfigurationError("regression_tolerance must be >= 0")


@dataclass(frozen=True)
class Anomaly:
    """One detected deviation from the tier's healthy baseline."""

    time: float
    kind: str  # "capacity-loss" | "requeue-spike" | "queue-depth" | "slo-violation"
    value: float
    baseline: float

    @property
    def structural(self) -> bool:
        """Whether this anomaly is direct evidence of a fault (not just load)."""
        return self.kind in ("capacity-loss", "requeue-spike")


@dataclass(frozen=True)
class Proposal:
    """One ranked candidate action for a detected anomaly set."""

    action: str
    reason: str


@dataclass(frozen=True)
class RemediationRecord:
    """One verification attempt: the proposal, the forecast, the verdict."""

    time: float
    anomalies: tuple[str, ...]
    action: str
    accepted: bool
    reason: str
    forecast_p99_baseline: float | None = None
    forecast_p99_candidate: float | None = None
    forecast_goodput_baseline: float | None = None
    forecast_goodput_candidate: float | None = None

    @property
    def forecast_p99_delta(self) -> float | None:
        """Forecast p99 change (negative is an improvement), if verified."""
        if self.forecast_p99_baseline is None or self.forecast_p99_candidate is None:
            return None
        return self.forecast_p99_candidate - self.forecast_p99_baseline

    @property
    def forecast_goodput_delta(self) -> float | None:
        """Forecast goodput change (positive is an improvement), if verified."""
        if self.forecast_goodput_baseline is None or self.forecast_goodput_candidate is None:
            return None
        return self.forecast_goodput_candidate - self.forecast_goodput_baseline

    def row(self) -> dict:
        """The scalar columns of this record (for logs and JSON export)."""
        return {
            "time": self.time,
            "anomalies": list(self.anomalies),
            "action": self.action,
            "accepted": self.accepted,
            "reason": self.reason,
            "forecast_p99_delta": self.forecast_p99_delta,
            "forecast_goodput_delta": self.forecast_goodput_delta,
        }


@dataclass
class RemediationSummary:
    """Aggregate accounting of one remediated run."""

    ticks: int
    anomalies_detected: int
    actions_taken: int
    accepts: int
    rejects: int
    shadow_runs: int
    final_shards: int
    final_slots_per_function: int
    final_router_kind: str
    final_shed_policy: str
    records: list[RemediationRecord] = field(default_factory=list, repr=False)
    anomalies: list[Anomaly] = field(default_factory=list, repr=False)

    def row(self) -> dict:
        """The scalar columns of this summary (for tables and JSON export)."""
        return {
            "remediation_ticks": self.ticks,
            "anomalies_detected": self.anomalies_detected,
            "actions_taken": self.actions_taken,
            "shadow_accepts": self.accepts,
            "shadow_rejects": self.rejects,
            "shadow_runs": self.shadow_runs,
        }


class RemediationController:
    """The detect → propose → verify → actuate loop over a sharded tier.

    Parameters
    ----------
    tier:
        The :class:`~repro.engine.sharded.ShardedEngineFLStore` to guard.
    config:
        Control-loop tunables.
    slo_seconds:
        The sojourn SLO backing the violation-rate signal (``None`` disables
        that detector).
    nominal_shards / nominal_slots:
        The spec's intended capacity.  Detection flags capacity below it;
        actuation never raises capacity above it (equal warm-capacity cost
        versus an unremediated run, by construction).
    shadow_runner:
        ``callable(action, state) -> forecast`` forking the bounded shadow
        simulation; ``state`` captures the tier's current degraded shape
        (shards, slots, router kind, shed policy) and the forecast dict
        carries ``p99_baseline/candidate`` and ``goodput_baseline/candidate``.
        Without one (unit tests), proposals are accepted unverified.
    """

    def __init__(
        self,
        tier,
        config: RemediationConfig | None = None,
        slo_seconds: float | None = None,
        nominal_shards: int | None = None,
        nominal_slots: int | None = None,
        shadow_runner=None,
    ) -> None:
        self.tier = tier
        self.config = config or RemediationConfig()
        self.slo_seconds = slo_seconds
        self.nominal_shards = nominal_shards if nominal_shards is not None else tier.num_shards
        self.nominal_slots = (
            nominal_slots if nominal_slots is not None else tier.slots_per_function
        )
        self.shadow_runner = shadow_runner
        self.records: list[RemediationRecord] = []
        self.anomaly_log: list[Anomaly] = []
        self.ticks = 0
        self.actions_taken = 0
        self.shadow_runs = 0
        self._depth_baseline = 0.0
        self._violation_baseline = 0.0
        self._seen_requeued = 0
        self._seen_shed = 0
        self._seen_finished = 0
        self._seen_violations = 0
        self._last_verify_at: float | None = None
        self._shadow_cache: dict[tuple, dict] = {}
        self._started = False

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Begin the control loop (called by ``run_open_loop`` after submit)."""
        if self._started:
            raise RuntimeError("a RemediationController instance drives exactly one run")
        self._started = True
        self._seen_requeued = self.tier.requeued_requests
        self._seen_shed = self.tier.shed_requests
        # Arm the tier's lifetime SLO-violation counter and snapshot it:
        # every control tick then reads a per-window violation rate as two
        # O(1) counter deltas instead of slicing the (unboundedly growing)
        # completed-outcome list — the former O(n^2) term over a run.
        if self.slo_seconds is not None:
            self.tier.watch_slo_seconds = self.slo_seconds
        self._seen_finished = self.tier.finished_total
        self._seen_violations = self.tier.slo_violations_total
        self.tier.loop.schedule(self.config.control_interval_seconds, self._tick)

    def finalize(self) -> None:
        """End-of-run hook (symmetry with the autoscaler driver)."""

    # ------------------------------------------------------- the control tick

    def _tick(self) -> None:
        self.ticks += 1
        sample = self._sample()
        anomalies = self._detect(sample)
        self.anomaly_log.extend(anomalies)
        if any(a.structural for a in anomalies) and self._may_act(sample["now"]):
            # Walk the ranked proposals until one survives shadow verification
            # (every verdict is logged); the whole walk counts as one
            # verification attempt for cooldown purposes.
            for proposal in self._propose(sample, anomalies):
                record = self._verify(proposal, sample, anomalies)
                self.records.append(record)
                self._last_verify_at = sample["now"]
                if record.accepted:
                    self._actuate(proposal)
                    break
        if not anomalies:
            # Baselines learn only from healthy ticks: an ongoing anomaly
            # must not teach the detector that broken is the new normal.
            alpha = self.config.ewma_alpha
            self._depth_baseline = (
                alpha * sample["queue_depth"] + (1 - alpha) * self._depth_baseline
            )
            self._violation_baseline = (
                alpha * sample["violation_rate"] + (1 - alpha) * self._violation_baseline
            )
        if self.tier.inflight > 0:
            self.tier.loop.schedule(self.config.control_interval_seconds, self._tick)

    def _sample(self) -> dict:
        tier = self.tier
        requeued = tier.requeued_requests
        shed = tier.shed_requests
        finished_total = tier.finished_total
        violations_total = tier.slo_violations_total
        violation_rate = 0.0
        if self.slo_seconds is not None:
            finished_delta = finished_total - self._seen_finished
            if finished_delta:
                violation_rate = (violations_total - self._seen_violations) / finished_delta
        sample = {
            "now": tier.loop.now,
            "queue_depth": tier.waiting_requests,
            "violation_rate": violation_rate,
            "requeued_delta": requeued - self._seen_requeued,
            "shed_delta": shed - self._seen_shed,
            "active_shards": tier.num_shards,
            "slots_per_function": tier.slots_per_function,
            "router_kind": tier.router.kind,
            "shed_policy": self._current_shed_policy(),
        }
        self._seen_requeued = requeued
        self._seen_shed = shed
        self._seen_finished = finished_total
        self._seen_violations = violations_total
        return sample

    def _current_shed_policy(self) -> str:
        active = self.tier.active_shards
        return active[0].shed_policy if active else "drop"

    # -------------------------------------------------------------- detection

    def _detect(self, sample: dict) -> list[Anomaly]:
        config = self.config
        now = sample["now"]
        anomalies: list[Anomaly] = []
        if (
            sample["active_shards"] < self.nominal_shards
            or sample["slots_per_function"] < self.nominal_slots
        ):
            nominal = self.nominal_shards * self.nominal_slots
            current = sample["active_shards"] * sample["slots_per_function"]
            anomalies.append(Anomaly(now, "capacity-loss", float(current), float(nominal)))
        if sample["requeued_delta"] >= config.requeue_spike_threshold:
            anomalies.append(
                Anomaly(now, "requeue-spike", float(sample["requeued_delta"]), 0.0)
            )
        if self.ticks > config.warmup_ticks:
            depth = sample["queue_depth"]
            depth_gate = max(
                float(config.min_queue_depth), config.queue_depth_factor * self._depth_baseline
            )
            if depth > depth_gate:
                anomalies.append(Anomaly(now, "queue-depth", float(depth), self._depth_baseline))
            violation = sample["violation_rate"]
            violation_gate = max(
                config.violation_rate_threshold,
                config.queue_depth_factor * self._violation_baseline,
            )
            if violation > violation_gate:
                anomalies.append(
                    Anomaly(now, "slo-violation", violation, self._violation_baseline)
                )
        return anomalies

    def _may_act(self, now: float) -> bool:
        if self.actions_taken >= self.config.max_actions:
            return False
        if self._last_verify_at is None:
            return True
        return now - self._last_verify_at >= self.config.cooldown_seconds

    # --------------------------------------------------------------- proposal

    def _propose(self, sample: dict, anomalies: list[Anomaly]) -> list[Proposal]:
        kinds = {a.kind for a in anomalies}
        proposals: list[Proposal] = []
        if sample["active_shards"] < self.nominal_shards:
            proposals.append(
                Proposal(
                    "add-shard",
                    f"tier at {sample['active_shards']}/{self.nominal_shards} shards",
                )
            )
        if sample["slots_per_function"] < self.nominal_slots:
            proposals.append(
                Proposal(
                    "promote-slots",
                    f"slots at {sample['slots_per_function']}/{self.nominal_slots}",
                )
            )
        # _propose only runs on structural anomalies, so any anomaly set here
        # justifies the capacity-neutral rebalancing proposals.
        pressured = bool(kinds)
        if pressured and sample["router_kind"] != "jsq":
            proposals.append(
                Proposal(
                    "reroute-jsq",
                    f"rebalance {sample['router_kind']} routing by live queue depth",
                )
            )
        if pressured and sample["shed_policy"] == "drop" and sample["shed_delta"] > 0:
            proposals.append(
                Proposal(
                    "shed-degrade",
                    f"{sample['shed_delta']} drops last tick; degrade instead",
                )
            )
        return proposals

    # ----------------------------------------------------------- verification

    def _verify(
        self, proposal: Proposal, sample: dict, anomalies: list[Anomaly]
    ) -> RemediationRecord:
        anomaly_kinds = tuple(a.kind for a in anomalies)
        if self.shadow_runner is None:
            return RemediationRecord(
                time=sample["now"],
                anomalies=anomaly_kinds,
                action=proposal.action,
                accepted=True,
                reason=f"{proposal.reason} (no shadow runner attached; trusted)",
            )
        state = {
            "shards": sample["active_shards"],
            "slots": sample["slots_per_function"],
            "router_kind": sample["router_kind"],
            "shed_policy": sample["shed_policy"],
        }
        key = (proposal.action, *sorted(state.items()))
        forecast = self._shadow_cache.get(key)
        if forecast is None:
            forecast = self.shadow_runner(proposal.action, state)
            self._shadow_cache[key] = forecast
            self.shadow_runs += 1
        config = self.config
        p99_base = forecast["p99_baseline"]
        p99_cand = forecast["p99_candidate"]
        goodput_base = forecast["goodput_baseline"]
        goodput_cand = forecast["goodput_candidate"]
        improves = (
            p99_base - p99_cand > config.improvement_epsilon
            or goodput_cand - goodput_base > config.improvement_epsilon
        )
        tolerable = p99_cand <= p99_base * (1 + config.regression_tolerance) and (
            goodput_cand >= goodput_base * (1 - config.regression_tolerance)
        )
        accepted = improves and tolerable
        if accepted:
            reason = (
                f"{proposal.reason}; shadow forecast p99 {p99_base:.3f}->{p99_cand:.3f}s, "
                f"goodput {goodput_base:.3f}->{goodput_cand:.3f} rps"
            )
        elif not improves:
            reason = (
                f"{proposal.reason}; rejected: shadow forecast no improvement "
                f"(p99 {p99_base:.3f}->{p99_cand:.3f}s, "
                f"goodput {goodput_base:.3f}->{goodput_cand:.3f} rps)"
            )
        else:
            reason = (
                f"{proposal.reason}; rejected: forecast regression beyond "
                f"{config.regression_tolerance:.0%} tolerance"
            )
        return RemediationRecord(
            time=sample["now"],
            anomalies=anomaly_kinds,
            action=proposal.action,
            accepted=accepted,
            reason=reason,
            forecast_p99_baseline=p99_base,
            forecast_p99_candidate=p99_cand,
            forecast_goodput_baseline=goodput_base,
            forecast_goodput_candidate=goodput_cand,
        )

    # -------------------------------------------------------------- actuation

    def _actuate(self, proposal: Proposal) -> None:
        tier = self.tier
        if proposal.action == "add-shard":
            tier.add_shard()
        elif proposal.action == "promote-slots":
            tier.set_function_concurrency(
                min(self.nominal_slots, tier.slots_per_function + 1)
            )
        elif proposal.action == "reroute-jsq":
            tier.set_router_kind("jsq")
        elif proposal.action == "shed-degrade":
            tier.set_shed_policy("degrade-to-objstore")
        else:  # pragma: no cover - proposals are built from the fixed set
            raise ConfigurationError(f"unknown remediation action {proposal.action!r}")
        self.actions_taken += 1

    # ------------------------------------------------------------- reporting

    def summary(self) -> RemediationSummary:
        """Aggregate accounting of the run this controller guarded."""
        accepts = sum(1 for r in self.records if r.accepted)
        return RemediationSummary(
            ticks=self.ticks,
            anomalies_detected=len(self.anomaly_log),
            actions_taken=self.actions_taken,
            accepts=accepts,
            rejects=len(self.records) - accepts,
            shadow_runs=self.shadow_runs,
            final_shards=self.tier.num_shards,
            final_slots_per_function=self.tier.slots_per_function,
            final_router_kind=self.tier.router.kind,
            final_shed_policy=self._current_shed_policy(),
            records=list(self.records),
            anomalies=list(self.anomaly_log),
        )


__all__ = [
    "REMEDIATION_ACTIONS",
    "Anomaly",
    "Proposal",
    "RemediationConfig",
    "RemediationController",
    "RemediationRecord",
    "RemediationSummary",
]
