"""A discrete-event simulation kernel: calendar queue, futures, timed processes.

The analytic simulator of :mod:`repro.core` serves one request at a time and
returns closed-form latencies.  This kernel supplies the missing substrate
for *load-dependent* behaviour — concurrent in-flight requests, queueing,
cold-start overlap — as a classic discrete-event engine:

* :class:`EventLoop` — a schedule of ``(virtual_time, sequence, action)``
  events.  Events at the same timestamp fire in scheduling order (the
  monotonically increasing sequence number breaks ties), which makes every
  run deterministic regardless of scheduler internals.  Internally the loop
  keeps a calendar queue (bucketed by time window, with an overflow heap for
  far-future events) instead of a single binary heap; the observable order
  is identical, which ``tests/test_kernel_equivalence.py`` drives with
  hypothesis against a reference ``(time, seq)`` heap.
* :meth:`EventLoop.schedule_many` — a bulk fast path for pre-known sorted
  instants (arrival times from :mod:`repro.traces.arrivals`): the array is
  consumed through a cursor and merged with the calendar during
  :meth:`EventLoop.run`, instead of paying N individual pushes.
* :class:`SimTask` — a future resolved at some virtual time.  Processes wait
  on tasks; external components (queue slots, completion signals) resolve
  them.
* **Processes** — plain Python generators driven by :meth:`EventLoop.process`.
  A process yields :class:`Timeout` to sleep on virtual time or a
  :class:`SimTask` to wait for another process/resource; its ``return`` value
  becomes the result of its task.

The kernel knows nothing about FLStore; :mod:`repro.engine.flstore` builds
the serving semantics on top of it.

Examples
--------
>>> loop = EventLoop()
>>> def worker(delay, out):
...     yield Timeout(delay)
...     out.append(loop.now)
...     return delay
>>> out = []
>>> task = loop.process(worker(2.5, out))
>>> loop.run()
>>> (out, task.result, loop.now)
([2.5], 2.5, 2.5)
"""

from __future__ import annotations

import heapq
from bisect import insort
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional, Sequence

import numpy as np


@dataclass(frozen=True, slots=True)
class Timeout:
    """Yielded by a process to sleep for ``seconds`` of virtual time."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError(f"Timeout must be non-negative, got {self.seconds}")


class SimTask:
    """A future resolved at some virtual time.

    Processes obtain one from :meth:`EventLoop.process`, or create one
    directly to model a resource grant (e.g. a queue slot) that another
    component will :meth:`resolve` later.
    """

    __slots__ = ("loop", "name", "_done", "_result", "_callbacks")

    def __init__(self, loop: "EventLoop", name: str | None = None) -> None:
        self.loop = loop
        self.name = name
        self._done = False
        self._result: Any = None
        self._callbacks: list[Callable[[Any], None]] = []

    @property
    def done(self) -> bool:
        """Whether the task has been resolved."""
        return self._done

    @property
    def result(self) -> Any:
        """The task's result (raises if not yet resolved)."""
        if not self._done:
            raise RuntimeError(f"task {self.name or id(self)} is not done yet")
        return self._result

    def add_done_callback(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(result)`` when the task resolves (immediately if done)."""
        if self._done:
            callback(self._result)
        else:
            self._callbacks.append(callback)

    def resolve(self, value: Any = None) -> None:
        """Resolve the task with ``value`` and fire waiting callbacks in order."""
        if self._done:
            raise RuntimeError(f"task {self.name or id(self)} is already resolved")
        self._done = True
        self._result = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._done else "pending"
        return f"SimTask(name={self.name!r}, {state})"


#: A process is a generator yielding Timeout / SimTask and returning a value.
Process = Generator[Any, Any, Any]

#: One scheduled event: ``(virtual_time, sequence, action)``.
_Entry = tuple[float, int, Callable[[], None]]


class _CalendarQueue:
    """A bucketed schedule of ``(time, seq, action)`` entries.

    The window ``[base, base + buckets * width)`` is split into equal-width
    buckets; entries land in their bucket unsorted and a bucket is sorted
    lazily when the consuming cursor reaches it.  Entries at or beyond the
    window end sit in an overflow heap until a rollover advances the window
    (re-tuning the bucket width to the observed backlog density).  Pops are
    globally ordered by ``(time, seq)``: the active bucket always holds the
    earliest in-window entries and the overflow only holds later ones.
    """

    __slots__ = (
        "_buckets",
        "_num_buckets",
        "_width",
        "_base",
        "_year_end",
        "_cursor",
        "_active",
        "_head",
        "_overflow",
        "_size",
    )

    def __init__(self, start: float, num_buckets: int = 64, width: float = 1.0) -> None:
        self._num_buckets = num_buckets
        self._width = width
        self._base = start
        self._year_end = start + num_buckets * width
        self._buckets: list[list[_Entry]] = [[] for _ in range(num_buckets)]
        self._cursor = 0  # first bucket that may still hold entries
        self._active = -1  # bucket currently sorted and being consumed
        self._head = 0  # next entry index within the active bucket
        self._overflow: list[_Entry] = []  # entries at/past the window end
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def push(self, entry: _Entry) -> None:
        self._size += 1
        when = entry[0]
        if when >= self._year_end:
            heapq.heappush(self._overflow, entry)
            return
        index = int((when - self._base) / self._width)
        if index >= self._num_buckets:
            index = self._num_buckets - 1
        if self._active >= 0:
            if index <= self._active:
                # The active bucket is already sorted and partially consumed;
                # keep it sorted.  The new entry's (time, seq) exceeds every
                # consumed entry, so it always lands at or after the head.
                insort(self._buckets[self._active], entry)
                return
        elif index < self._cursor:
            # The scan cursor already passed this (drained) bucket; pull it
            # back so peek() revisits the bucket.  Everything in between is
            # empty, so the rescan is cheap and order is unaffected.
            self._cursor = index
        self._buckets[index].append(entry)

    def peek(self) -> _Entry | None:
        """The earliest entry by ``(time, seq)``, or ``None`` when empty."""
        while True:
            if self._active >= 0:
                bucket = self._buckets[self._active]
                if self._head < len(bucket):
                    return bucket[self._head]
                self._buckets[self._active] = []
                self._cursor = self._active + 1
                self._active = -1
                self._head = 0
            buckets = self._buckets
            cursor = self._cursor
            num_buckets = self._num_buckets
            while cursor < num_buckets and not buckets[cursor]:
                cursor += 1
            self._cursor = cursor
            if cursor < num_buckets:
                bucket = buckets[cursor]
                bucket.sort()
                self._active = cursor
                self._head = 0
                return bucket[0]
            if not self._overflow:
                return None
            self._rollover()

    def advance(self) -> None:
        """Consume the entry that :meth:`peek` just returned."""
        self._head += 1
        self._size -= 1

    def _rollover(self) -> None:
        """Advance the window to the earliest overflow entry and refill."""
        overflow = self._overflow
        base = overflow[0][0]
        num_buckets = self._num_buckets
        if len(overflow) > 1:
            # Re-tune the width so the new window captures a healthy slice
            # of the backlog: aim for a handful of entries per bucket.
            span = max(entry[0] for entry in overflow) - base
            if span > 0.0:
                per_entry = span / len(overflow)
                self._width = min(max(per_entry * 4.0, span / (num_buckets * 8.0)), span)
        year_end = base + num_buckets * self._width
        keep: list[_Entry] = []
        width = self._width
        buckets = self._buckets
        for entry in overflow:
            if entry[0] >= year_end:
                keep.append(entry)
                continue
            index = int((entry[0] - base) / width)
            if index >= num_buckets:
                index = num_buckets - 1
            buckets[index].append(entry)
        heapq.heapify(keep)
        self._overflow = keep
        self._base = base
        self._year_end = year_end
        self._cursor = 0
        self._active = -1
        self._head = 0


class _EventStream:
    """A sorted block of instants consumed through a cursor (`schedule_many`)."""

    __slots__ = ("times", "action", "cursor", "seq_base", "size")

    def __init__(self, times: np.ndarray, action: Callable[[int], None], seq_base: int) -> None:
        self.times = times
        self.action = action
        self.cursor = 0
        self.seq_base = seq_base
        self.size = int(times.size)

    def remaining(self) -> int:
        return self.size - self.cursor


class EventLoop:
    """A deterministic discrete-event loop over virtual time.

    Events are ordered by ``(time, sequence)``: two events scheduled for the
    same virtual instant fire in the order they were scheduled, so runs are
    reproducible by construction.  The backing store is a calendar queue
    (plus sorted-array streams from :meth:`schedule_many`); the ordering
    contract is identical to a single ``(time, seq)`` heap.
    """

    __slots__ = ("now", "_queue", "_seq", "_stream_heads", "events_fired")

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)
        self._queue = _CalendarQueue(self.now)
        self._seq = 0
        # Min-heap of (head_time, head_seq, stream) across live streams.
        self._stream_heads: list[tuple[float, int, _EventStream]] = []
        self.events_fired = 0

    # ----------------------------------------------------------- scheduling

    def schedule_at(self, when: float, action: Callable[[], None]) -> None:
        """Schedule ``action()`` to fire at virtual time ``when``."""
        if when < self.now:
            raise ValueError(f"cannot schedule into the past ({when} < {self.now})")
        seq = self._seq
        self._seq = seq + 1
        self._queue.push((float(when), seq, action))

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Schedule ``action()`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.schedule_at(self.now + delay, action)

    def schedule_many(self, times: Sequence[float] | np.ndarray, action: Callable[[int], None]) -> None:
        """Schedule ``action(i)`` at each ``times[i]`` from a sorted array.

        The bulk fast path for pre-known instants (e.g. arrival times):
        instead of N individual pushes, the block reserves a contiguous
        sequence range up front and :meth:`run` consumes it through a
        cursor, merging with individually scheduled events.  The total
        order is exactly as if each instant had been ``schedule_at``-ed in
        array order.  ``times`` must be non-decreasing and start at or
        after :attr:`now`.
        """
        arr = np.asarray(times, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError(f"times must be one-dimensional, got shape {arr.shape}")
        if arr.size == 0:
            return
        first = float(arr[0])
        if first < self.now:
            raise ValueError(f"cannot schedule into the past ({first} < {self.now})")
        if arr.size > 1 and bool(np.any(np.diff(arr) < 0.0)):
            raise ValueError("times must be non-decreasing")
        seq_base = self._seq
        self._seq = seq_base + int(arr.size)
        stream = _EventStream(arr, action, seq_base)
        heapq.heappush(self._stream_heads, (first, seq_base, stream))

    def pending(self) -> int:
        """Number of events still scheduled (calendar plus stream tails)."""
        return len(self._queue) + sum(entry[2].remaining() for entry in self._stream_heads)

    # ------------------------------------------------------------ processes

    def process(self, generator: Process, task: SimTask | None = None, name: str | None = None) -> SimTask:
        """Start driving ``generator`` as a timed process; returns its task.

        The generator may yield :class:`Timeout` (sleep) or :class:`SimTask`
        (wait; the task's result is sent back into the generator).  Its
        ``return`` value resolves the process task.
        """
        task = task if task is not None else SimTask(self, name=name)
        self._step(generator, task, None)
        return task

    def _step(self, generator: Process, task: SimTask, send_value: Any) -> None:
        try:
            yielded = generator.send(send_value)
        except StopIteration as stop:
            task.resolve(stop.value)
            return
        if isinstance(yielded, Timeout):
            self.schedule(yielded.seconds, lambda: self._step(generator, task, None))
        elif isinstance(yielded, SimTask):
            if yielded.done:
                # Already-resolved waits still go through the schedule so
                # that resumption order matches the scheduling order of
                # every other same-timestamp event.
                result = yielded.result
                self.schedule(0.0, lambda: self._step(generator, task, result))
            else:
                yielded.add_done_callback(lambda value: self._step(generator, task, value))
        else:
            raise TypeError(
                f"processes may yield Timeout or SimTask, got {type(yielded).__name__}"
            )

    # --------------------------------------------------------------- running

    def run(self, until: Optional[float] = None) -> float:
        """Fire events in order until the schedule drains (or past ``until``).

        Returns the final virtual time.  With ``until`` set, the boundary is
        inclusive: events at exactly ``until`` fire, events strictly later
        stay queued (calendar entries and stream tails alike), and the clock
        lands exactly on ``until``.
        """
        queue = self._queue
        stream_heads = self._stream_heads
        while True:
            entry = queue.peek()
            if stream_heads:
                head_time, head_seq, stream = stream_heads[0]
                if entry is None or head_time < entry[0] or (
                    head_time == entry[0] and head_seq < entry[1]
                ):
                    if until is not None and head_time > until:
                        break
                    index = stream.cursor
                    cursor = index + 1
                    stream.cursor = cursor
                    if cursor < stream.size:
                        heapq.heapreplace(
                            stream_heads,
                            (float(stream.times[cursor]), stream.seq_base + cursor, stream),
                        )
                    else:
                        heapq.heappop(stream_heads)
                    self.now = head_time
                    self.events_fired += 1
                    stream.action(index)
                    continue
            if entry is None:
                break
            when = entry[0]
            if until is not None and when > until:
                break
            queue.advance()
            self.now = when
            self.events_fired += 1
            entry[2]()
        if until is not None and until > self.now:
            self.now = until
        return self.now
