"""A discrete-event simulation kernel: event heap, futures, timed processes.

The analytic simulator of :mod:`repro.core` serves one request at a time and
returns closed-form latencies.  This kernel supplies the missing substrate
for *load-dependent* behaviour — concurrent in-flight requests, queueing,
cold-start overlap — as a classic discrete-event engine:

* :class:`EventLoop` — a heap of ``(virtual_time, sequence, action)`` events.
  Events at the same timestamp fire in scheduling order (the monotonically
  increasing sequence number breaks ties), which makes every run
  deterministic regardless of heap internals.
* :class:`SimTask` — a future resolved at some virtual time.  Processes wait
  on tasks; external components (queue slots, completion signals) resolve
  them.
* **Processes** — plain Python generators driven by :meth:`EventLoop.process`.
  A process yields :class:`Timeout` to sleep on virtual time or a
  :class:`SimTask` to wait for another process/resource; its ``return`` value
  becomes the result of its task.

The kernel knows nothing about FLStore; :mod:`repro.engine.flstore` builds
the serving semantics on top of it.

Examples
--------
>>> loop = EventLoop()
>>> def worker(delay, out):
...     yield Timeout(delay)
...     out.append(loop.now)
...     return delay
>>> out = []
>>> task = loop.process(worker(2.5, out))
>>> loop.run()
>>> (out, task.result, loop.now)
([2.5], 2.5, 2.5)
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from itertools import count
from typing import Any, Callable, Generator, Optional


@dataclass(frozen=True, slots=True)
class Timeout:
    """Yielded by a process to sleep for ``seconds`` of virtual time."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError(f"Timeout must be non-negative, got {self.seconds}")


class SimTask:
    """A future resolved at some virtual time.

    Processes obtain one from :meth:`EventLoop.process`, or create one
    directly to model a resource grant (e.g. a queue slot) that another
    component will :meth:`resolve` later.
    """

    __slots__ = ("loop", "name", "_done", "_result", "_callbacks")

    def __init__(self, loop: "EventLoop", name: str | None = None) -> None:
        self.loop = loop
        self.name = name
        self._done = False
        self._result: Any = None
        self._callbacks: list[Callable[[Any], None]] = []

    @property
    def done(self) -> bool:
        """Whether the task has been resolved."""
        return self._done

    @property
    def result(self) -> Any:
        """The task's result (raises if not yet resolved)."""
        if not self._done:
            raise RuntimeError(f"task {self.name or id(self)} is not done yet")
        return self._result

    def add_done_callback(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(result)`` when the task resolves (immediately if done)."""
        if self._done:
            callback(self._result)
        else:
            self._callbacks.append(callback)

    def resolve(self, value: Any = None) -> None:
        """Resolve the task with ``value`` and fire waiting callbacks in order."""
        if self._done:
            raise RuntimeError(f"task {self.name or id(self)} is already resolved")
        self._done = True
        self._result = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._done else "pending"
        return f"SimTask(name={self.name!r}, {state})"


#: A process is a generator yielding Timeout / SimTask and returning a value.
Process = Generator[Any, Any, Any]


class EventLoop:
    """A deterministic discrete-event loop over virtual time.

    Events are ordered by ``(time, sequence)``: two events scheduled for the
    same virtual instant fire in the order they were scheduled, so runs are
    reproducible by construction.
    """

    __slots__ = ("now", "_heap", "_seq", "events_fired")

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = count()
        self.events_fired = 0

    # ----------------------------------------------------------- scheduling

    def schedule_at(self, when: float, action: Callable[[], None]) -> None:
        """Schedule ``action()`` to fire at virtual time ``when``."""
        if when < self.now:
            raise ValueError(f"cannot schedule into the past ({when} < {self.now})")
        heapq.heappush(self._heap, (float(when), next(self._seq), action))

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Schedule ``action()`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.schedule_at(self.now + delay, action)

    def pending(self) -> int:
        """Number of events still on the heap."""
        return len(self._heap)

    # ------------------------------------------------------------ processes

    def process(self, generator: Process, task: SimTask | None = None, name: str | None = None) -> SimTask:
        """Start driving ``generator`` as a timed process; returns its task.

        The generator may yield :class:`Timeout` (sleep) or :class:`SimTask`
        (wait; the task's result is sent back into the generator).  Its
        ``return`` value resolves the process task.
        """
        task = task if task is not None else SimTask(self, name=name)
        self._step(generator, task, None)
        return task

    def _step(self, generator: Process, task: SimTask, send_value: Any) -> None:
        try:
            yielded = generator.send(send_value)
        except StopIteration as stop:
            task.resolve(stop.value)
            return
        if isinstance(yielded, Timeout):
            self.schedule(yielded.seconds, lambda: self._step(generator, task, None))
        elif isinstance(yielded, SimTask):
            if yielded.done:
                # Already-resolved waits still go through the heap so that
                # resumption order matches the scheduling order of every
                # other same-timestamp event.
                result = yielded.result
                self.schedule(0.0, lambda: self._step(generator, task, result))
            else:
                yielded.add_done_callback(lambda value: self._step(generator, task, value))
        else:
            raise TypeError(
                f"processes may yield Timeout or SimTask, got {type(yielded).__name__}"
            )

    # --------------------------------------------------------------- running

    def run(self, until: Optional[float] = None) -> float:
        """Fire events in order until the heap is empty (or past ``until``).

        Returns the final virtual time.  With ``until`` set, events strictly
        later than it stay on the heap and the clock lands exactly on
        ``until``.
        """
        heap = self._heap
        while heap:
            when, _, action = heap[0]
            if until is not None and when > until:
                break
            heapq.heappop(heap)
            self.now = when
            self.events_fired += 1
            action()
        if until is not None and until > self.now:
            self.now = until
        return self.now
