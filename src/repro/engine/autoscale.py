"""Autoscaling warm capacity on the sharded serving tier.

The discrete-event engine gives the simulator a virtual timeline; this
module closes the control loop on top of it.  An :class:`Autoscaler` runs as
a recurring scheduled event on the tier's event loop: every control interval
it samples per-tier control signals (:class:`ControlSignals` — queue depth,
an arrival-rate EWMA, shed/requeue/degrade counter deltas from the admission
layer), asks its :class:`AutoscalerPolicy` for a :class:`ScaleDecision`, and
actuates the decision on the :class:`~repro.engine.sharded.ShardedEngineFLStore`:

* **within a shard** — spawn or retire warm instances behind each logical
  function (``set_function_concurrency``), which immediately grants freed
  slots to queued waiters;
* **across shards** — add or remove whole shards through the front door
  (``add_shard`` / ``remove_shard``); consistent hashing bounds the key
  remap, and a new shard joins with a cold cache whose warmup transient is
  paid by the traffic routed to it.

Capacity is measured in **units** — one execution slot on one active shard
(``slots_per_function x active_shards``).  Policies return a target in
units; the driver factors it into (shards, slots) deterministically, applies
at most one shard change per tick (provisioning is gradual), and integrates
the provisioned warm capacity over virtual time into a warm-capacity cost
(GB-seconds x the provisioned-concurrency price), so policies can be
compared at equal cost.

Three policies ship:

* :class:`NullAutoscaler` — never scales; a tier under it is byte-identical
  to one with no autoscaler attached (pinned in ``tests/test_autoscale.py``),
  and its cost integral is the fixed-capacity baseline.
* :class:`ReactiveThresholdAutoscaler` — classic step scaling on the queue
  backlog per slot, with hysteresis (distinct high/low watermarks) and a
  cooldown between actions.  It only reacts *after* queues build, so it lags
  a ramping arrival process by at least one cooldown.
* :class:`PredictiveAutoscaler` — a Holt (level + trend) double-exponential
  forecast of the arrival rate, scaled ``forecast_lead_seconds`` ahead and
  converted to capacity through the calibrated mean service time; on a
  diurnal process it provisions ahead of the peak and releases capacity on
  the downslope.

Declaratively, an autoscaler is attached through a scenario spec
(:mod:`repro.scenario`): ``tier.autoscaler.enabled`` plus a policy name
validated at spec build time — ``build_tier`` constructs the resizable tier,
the policy, and this driver from one ``AutoscaleConfig`` so their control
intervals can never drift apart.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class AutoscaleConfig:
    """Tunables of the autoscaling control loop."""

    #: Virtual-time spacing of control ticks (signal sampling + decisions).
    control_interval_seconds: float = 5.0
    #: Bounds on the shard count the driver will actuate.
    min_shards: int = 1
    max_shards: int = 8
    #: Bounds on per-function slots (warm instances behind each function).
    min_slots_per_function: int = 1
    max_slots_per_function: int = 4
    #: Reactive policy: minimum virtual time between two scale-up actions
    #: (kept short — under-capacity sheds traffic) and between two
    #: scale-down actions (kept long — releasing capacity too eagerly means
    #: paying the warmup transient again at the next ramp).
    scale_up_cooldown_seconds: float = 10.0
    scale_down_cooldown_seconds: float = 30.0
    #: Reactive policy: queue backlog per capacity unit that triggers a
    #: scale-up (high) or permits a scale-down (low) — the gap is the
    #: hysteresis band.
    high_backlog_per_unit: float = 1.0
    low_backlog_per_unit: float = 0.25
    #: Weight of the most recent arrival-rate sample — used both for the
    #: ``ControlSignals.arrival_rate_ewma`` signal the driver publishes and
    #: as the Holt *level* weight of the predictive policy (one smoothing
    #: constant, two consumers).
    ewma_alpha: float = 0.4
    #: Predictive policy: Holt trend weight.
    trend_beta: float = 0.3
    #: Predictive policy: how far ahead the forecast scales (covers the
    #: provisioning/warmup transient of the capacity it requests).
    forecast_lead_seconds: float = 10.0
    #: Predictive policy: utilization the forecast capacity targets
    #: (headroom = 1/target_utilization).
    target_utilization: float = 0.95
    #: SLO policy: the per-window violation rate (aggregate or worst tenant)
    #: above which capacity is added.
    slo_violation_target: float = 0.05

    def __post_init__(self) -> None:
        if self.control_interval_seconds <= 0:
            raise ConfigurationError("control_interval_seconds must be positive")
        if not 1 <= self.min_shards <= self.max_shards:
            raise ConfigurationError("need 1 <= min_shards <= max_shards")
        if not 1 <= self.min_slots_per_function <= self.max_slots_per_function:
            raise ConfigurationError("need 1 <= min_slots_per_function <= max_slots_per_function")
        if self.scale_up_cooldown_seconds < 0 or self.scale_down_cooldown_seconds < 0:
            raise ConfigurationError("cooldown seconds must be >= 0")
        if not self.low_backlog_per_unit < self.high_backlog_per_unit:
            raise ConfigurationError("hysteresis needs low_backlog_per_unit < high watermark")
        if not 0 < self.ewma_alpha <= 1 or not 0 < self.trend_beta <= 1:
            raise ConfigurationError("ewma_alpha and trend_beta must be in (0, 1]")
        if not 0 < self.target_utilization <= 1:
            raise ConfigurationError("target_utilization must be in (0, 1]")
        if not 0 <= self.slo_violation_target < 1:
            raise ConfigurationError("slo_violation_target must be in [0, 1)")

    @property
    def min_capacity_units(self) -> int:
        """Smallest capacity (units) the driver will scale down to."""
        return self.min_shards * self.min_slots_per_function

    @property
    def max_capacity_units(self) -> int:
        """Largest capacity (units) the driver will scale up to."""
        return self.max_shards * self.max_slots_per_function


@dataclass(frozen=True)
class ControlSignals:
    """One control tick's sampled view of the serving tier."""

    now: float
    #: Requests queued for an execution slot across the active shards.
    queue_depth: int
    #: Arrivals per second over the last control interval (raw sample).
    arrival_rate: float
    #: EWMA-smoothed arrival rate (``AutoscaleConfig.ewma_alpha``).
    arrival_rate_ewma: float
    #: Admission-layer counter deltas since the previous tick.
    shed_delta: int
    degraded_delta: int
    requeued_delta: int
    active_shards: int
    slots_per_function: int
    #: ``slots_per_function x active_shards`` — the policies' capacity scale.
    capacity_units: int
    #: Requests in flight at the front door (queued + executing + scheduled).
    inflight: int
    #: SLO accounting deltas since the previous tick (0 unless the tier's
    #: ``watch_slo_seconds`` — or per-tenant SLOs — arm violation counting).
    slo_violation_delta: int = 0
    finished_delta: int = 0
    #: Worst per-tenant violation rate over the last window (0.0 on
    #: tenant-free tiers).
    max_tenant_violation_rate: float = 0.0


@dataclass(frozen=True)
class ScaleDecision:
    """A policy's verdict for one control tick.

    ``target_capacity_units`` of ``None`` means hold; otherwise the driver
    factors the target into (shards, per-function slots) and actuates the
    difference.
    """

    target_capacity_units: int | None = None
    reason: str = ""

    @property
    def is_hold(self) -> bool:
        """Whether this decision leaves capacity unchanged."""
        return self.target_capacity_units is None


#: The no-op decision (shared instance; decisions are immutable).
HOLD = ScaleDecision()


class AutoscalerPolicy(abc.ABC):
    """Maps sampled control signals to scale decisions."""

    #: Machine-friendly identifier (CLI, report labels, sweep rows).
    name: str = "autoscaler"

    @abc.abstractmethod
    def decide(self, signals: ControlSignals) -> ScaleDecision:
        """The scale decision for one control tick."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class NullAutoscaler(AutoscalerPolicy):
    """Never scales: the fixed-capacity baseline.

    A tier driven by this policy is byte-identical to one with no autoscaler
    attached — the control loop samples but mutates nothing — which is the
    pinned guarantee that autoscaling is purely additive.
    """

    name = "none"

    def decide(self, signals: ControlSignals) -> ScaleDecision:
        return HOLD


class ReactiveThresholdAutoscaler(AutoscalerPolicy):
    """Threshold scaling on queue backlog, with hysteresis and cooldowns.

    Scales up when the backlog per capacity unit crosses the high watermark
    or the admission layer shed anything since the last tick — by one unit,
    plus one per two requests shed, so sustained overload closes the gap in
    a few ticks rather than one unit at a time.  Scales down one unit when
    the backlog sits below the low watermark.  The watermark gap
    (hysteresis) and the asymmetric cooldowns (short up, long down) prevent
    flapping, but the policy still trails a ramp by construction: it only
    moves *after* the queue has built or requests were already shed.
    """

    name = "reactive"

    def __init__(self, config: AutoscaleConfig | None = None) -> None:
        self.config = config or AutoscaleConfig()
        self._last_scale_up_at: float | None = None
        self._last_scale_down_at: float | None = None

    def _cooling_down(self, last_at: float | None, cooldown: float, now: float) -> bool:
        return last_at is not None and now - last_at < cooldown

    def decide(self, signals: ControlSignals) -> ScaleDecision:
        config = self.config
        backlog_per_unit = signals.queue_depth / max(signals.capacity_units, 1)
        if backlog_per_unit > config.high_backlog_per_unit or signals.shed_delta > 0:
            if signals.capacity_units >= config.max_capacity_units or self._cooling_down(
                self._last_scale_up_at, config.scale_up_cooldown_seconds, signals.now
            ):
                return HOLD
            step = 1 + signals.shed_delta // 2
            self._last_scale_up_at = signals.now
            return ScaleDecision(
                signals.capacity_units + step,
                reason=f"backlog {backlog_per_unit:.2f}/unit, shed {signals.shed_delta}",
            )
        if backlog_per_unit < config.low_backlog_per_unit:
            if signals.capacity_units <= config.min_capacity_units or self._cooling_down(
                self._last_scale_down_at, config.scale_down_cooldown_seconds, signals.now
            ):
                return HOLD
            self._last_scale_down_at = signals.now
            return ScaleDecision(
                signals.capacity_units - 1,
                reason=f"backlog {backlog_per_unit:.2f}/unit below low watermark",
            )
        return HOLD


class PredictiveAutoscaler(AutoscalerPolicy):
    """Holt (level + trend) forecast of the arrival rate, scaled ahead.

    Each tick updates a double-exponential smoothing of the sampled arrival
    rate and extrapolates it ``forecast_lead_seconds`` into the future; the
    forecast converts to capacity units through the calibrated mean service
    time and the target utilization (Little's law:
    ``units = rate x E[S] / utilization``).  On a diurnal process the trend
    term sees the ramp coming, so capacity is provisioned *before* the peak
    arrives and released as the trend turns negative.
    """

    name = "predictive"

    def __init__(self, mean_service_seconds: float, config: AutoscaleConfig | None = None) -> None:
        if mean_service_seconds <= 0:
            raise ConfigurationError("mean_service_seconds must be positive")
        self.mean_service_seconds = float(mean_service_seconds)
        self.config = config or AutoscaleConfig()
        self._level: float | None = None
        self._trend = 0.0

    @property
    def forecast_rate(self) -> float:
        """The current arrival-rate forecast at the configured lead (rps)."""
        if self._level is None:
            return 0.0
        steps_ahead = self.config.forecast_lead_seconds / self.config.control_interval_seconds
        return max(self._level + self._trend * steps_ahead, 0.0)

    def decide(self, signals: ControlSignals) -> ScaleDecision:
        config = self.config
        rate = signals.arrival_rate
        if self._level is None:
            self._level = rate
        else:
            previous_level = self._level
            alpha, beta = config.ewma_alpha, config.trend_beta
            self._level = alpha * rate + (1 - alpha) * (previous_level + self._trend)
            self._trend = beta * (self._level - previous_level) + (1 - beta) * self._trend
        needed = self.forecast_rate * self.mean_service_seconds / config.target_utilization
        target = max(math.ceil(needed), config.min_capacity_units)
        target = min(target, config.max_capacity_units)
        if target == signals.capacity_units:
            return HOLD
        return ScaleDecision(
            target,
            reason=f"forecast {self.forecast_rate:.3f} rps -> {target} units",
        )


class SLOViolationAutoscaler(AutoscalerPolicy):
    """Scale on observed SLO violations rather than backlog proxies.

    Each tick compares the *window* violation rate — aggregate finishes, and
    the worst single tenant's, so one suffering tenant is enough to act —
    against ``slo_violation_target``; crossing it (or shedding anything)
    scales up one unit plus one per two violations over target, and a clean
    window with an idle queue releases one unit.  The same cooldown and
    hysteresis structure as the reactive policy prevents flapping, but the
    trigger is the contract itself: a tier can run deep queues without
    scaling as long as every tenant's sojourns stay inside its SLO.
    """

    name = "slo"

    def __init__(self, config: AutoscaleConfig | None = None) -> None:
        self.config = config or AutoscaleConfig()
        self._last_scale_up_at: float | None = None
        self._last_scale_down_at: float | None = None

    def _cooling_down(self, last_at: float | None, cooldown: float, now: float) -> bool:
        return last_at is not None and now - last_at < cooldown

    def decide(self, signals: ControlSignals) -> ScaleDecision:
        config = self.config
        window_rate = (
            signals.slo_violation_delta / signals.finished_delta
            if signals.finished_delta
            else 0.0
        )
        pressure = max(window_rate, signals.max_tenant_violation_rate)
        if pressure > config.slo_violation_target or signals.shed_delta > 0:
            if signals.capacity_units >= config.max_capacity_units or self._cooling_down(
                self._last_scale_up_at, config.scale_up_cooldown_seconds, signals.now
            ):
                return HOLD
            over_target = max(
                signals.slo_violation_delta
                - int(config.slo_violation_target * signals.finished_delta),
                0,
            )
            step = 1 + over_target // 2
            self._last_scale_up_at = signals.now
            return ScaleDecision(
                signals.capacity_units + step,
                reason=(
                    f"violation rate {pressure:.2f} over target "
                    f"{config.slo_violation_target:.2f}, shed {signals.shed_delta}"
                ),
            )
        backlog_per_unit = signals.queue_depth / max(signals.capacity_units, 1)
        if pressure == 0.0 and backlog_per_unit < config.low_backlog_per_unit:
            if signals.capacity_units <= config.min_capacity_units or self._cooling_down(
                self._last_scale_down_at, config.scale_down_cooldown_seconds, signals.now
            ):
                return HOLD
            self._last_scale_down_at = signals.now
            return ScaleDecision(
                signals.capacity_units - 1,
                reason="clean SLO window with idle queue",
            )
        return HOLD


#: Policy names understood by :func:`make_autoscaler_policy` (and the CLI).
AUTOSCALER_KINDS: tuple[str, ...] = ("none", "reactive", "predictive", "slo")


def make_autoscaler_policy(
    kind: str,
    config: AutoscaleConfig | None = None,
    mean_service_seconds: float = 1.0,
) -> AutoscalerPolicy:
    """Build the autoscaling policy called ``kind``.

    ``mean_service_seconds`` calibrates the predictive policy's capacity
    conversion (ignored by the others).
    """
    if kind == "none":
        return NullAutoscaler()
    if kind == "reactive":
        return ReactiveThresholdAutoscaler(config)
    if kind == "predictive":
        return PredictiveAutoscaler(mean_service_seconds, config)
    if kind == "slo":
        return SLOViolationAutoscaler(config)
    raise ValueError(f"unknown autoscaler policy {kind!r}; expected one of {AUTOSCALER_KINDS}")


@dataclass(frozen=True)
class ScaleEvent:
    """One actuated capacity change on the tier's virtual timeline."""

    time: float
    action: str  # "slots-up" | "slots-down" | "shard-added" | "shard-removed"
    reason: str
    shards: int
    slots_per_function: int
    capacity_units: int
    #: Replica copies warmed by scheduled events so far (hot-key replication
    #: tiers only; 0 otherwise).  A ``shard-added`` event on a replicated
    #: tier is a *warm* join — the delta between consecutive events shows
    #: how much of the join was seeded from replicas rather than served cold.
    replica_warm_events: int = 0


@dataclass
class AutoscaleSummary:
    """Aggregate accounting of one autoscaled run (one policy, one process)."""

    policy: str
    scale_events: int
    shard_adds: int
    shard_removes: int
    slot_changes: int
    final_shards: int
    final_slots_per_function: int
    peak_capacity_units: int
    capacity_unit_seconds: float
    provisioned_gb_seconds: float
    warm_capacity_cost_dollars: float
    #: Replica copies warmed over the run (hot-key replication tiers only).
    replica_warm_events: int = 0
    events: list[ScaleEvent] = field(default_factory=list, repr=False)

    def row(self) -> dict:
        """The scalar columns of this summary (for tables and JSON export)."""
        return {
            "autoscaler": self.policy,
            "scale_events": self.scale_events,
            "shard_adds": self.shard_adds,
            "shard_removes": self.shard_removes,
            "slot_changes": self.slot_changes,
            "final_shards": self.final_shards,
            "final_slots": self.final_slots_per_function,
            "peak_capacity_units": self.peak_capacity_units,
            "capacity_unit_seconds": self.capacity_unit_seconds,
            "warm_capacity_cost_dollars": self.warm_capacity_cost_dollars,
        }


class Autoscaler:
    """The control-loop driver: samples, decides, actuates, accounts.

    Attach one to a :class:`~repro.engine.sharded.ShardedEngineFLStore` run
    (``run_open_loop(..., autoscaler=...)``).  The driver schedules itself
    as a recurring event every ``control_interval_seconds`` of virtual time
    while requests are in flight; each tick it

    1. integrates the warm-capacity cost since the previous tick — exact
       for ``capacity_units`` (units only change at ticks); the GB integral
       is right-endpoint sampled at tick granularity, since a shard's warm
       fleet also grows *between* ticks as traffic warms it (the same
       estimator is applied to every policy, so cost comparisons are fair),
    2. samples :class:`ControlSignals`,
    3. asks the policy for a decision and actuates it — per-function slots
       apply in full, shard count moves at most one per tick.
    """

    def __init__(
        self,
        tier,
        policy: AutoscalerPolicy,
        config: AutoscaleConfig | None = None,
    ) -> None:
        self.tier = tier
        self.policy = policy
        self.config = config or AutoscaleConfig()
        policy_config = getattr(policy, "config", None)
        if (
            policy_config is not None
            and policy_config.control_interval_seconds != self.config.control_interval_seconds
        ):
            # The predictive policy converts its per-tick trend to a forecast
            # through its config's control interval; a driver ticking at a
            # different cadence would silently mis-scale every forecast.
            raise ConfigurationError(
                "the policy and the Autoscaler driver must share one control interval "
                f"({policy_config.control_interval_seconds} != "
                f"{self.config.control_interval_seconds}); build both from the same "
                "AutoscaleConfig (see make_autoscaler_policy)"
            )
        self.events: list[ScaleEvent] = []
        self.ticks = 0
        self.capacity_unit_seconds = 0.0
        self.provisioned_gb_seconds = 0.0
        self.peak_capacity_units = tier.capacity_units
        self._last_accrual_at: float | None = None
        self._seen_arrivals = 0
        self._seen_shed = 0
        self._seen_degraded = 0
        self._seen_requeued = 0
        self._seen_violations = 0
        self._seen_finished = 0
        self._seen_tenant_finished: dict[str, int] = {}
        self._seen_tenant_violations: dict[str, int] = {}
        self._rate_ewma = 0.0
        self._started = False

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Begin the control loop (called by ``run_open_loop`` after submit)."""
        if self._started:
            raise RuntimeError("an Autoscaler instance drives exactly one run")
        self._started = True
        self._last_accrual_at = self.tier.loop.now
        self._seen_arrivals = self.tier.arrived_requests
        self._seen_shed = self.tier.shed_requests
        self._seen_degraded = self.tier.degraded_requests
        self._seen_requeued = self.tier.requeued_requests
        self._seen_violations = self.tier.slo_violations_total
        self._seen_finished = self.tier.finished_total
        self._seen_tenant_finished = dict(getattr(self.tier, "tenant_finished", {}))
        self._seen_tenant_violations = dict(getattr(self.tier, "tenant_slo_violations", {}))
        self.tier.loop.schedule(self.config.control_interval_seconds, self._tick)

    def finalize(self) -> None:
        """Close the capacity integral at the end of the run."""
        self._accrue()

    # ---------------------------------------------------------- the control tick

    def _tick(self) -> None:
        self._accrue()
        self.ticks += 1
        signals = self._sample()
        decision = self.policy.decide(signals)
        if not decision.is_hold:
            self._apply(decision, signals)
        if self.tier.inflight > 0:
            self.tier.loop.schedule(self.config.control_interval_seconds, self._tick)

    def _accrue(self) -> None:
        """Integrate warm capacity over the interval since the last accrual.

        ``capacity_units`` is piecewise-constant between ticks, so its
        integral is exact; ``provisioned_gb`` also moves with organic
        warm-fleet growth between ticks, so its integral is a right-endpoint
        step approximation at tick granularity.
        """
        now = self.tier.loop.now
        if self._last_accrual_at is None:
            self._last_accrual_at = now
            return
        elapsed = now - self._last_accrual_at
        if elapsed > 0:
            self.capacity_unit_seconds += self.tier.capacity_units * elapsed
            self.provisioned_gb_seconds += self.tier.provisioned_gb * elapsed
        self._last_accrual_at = now

    def _sample(self) -> ControlSignals:
        tier = self.tier
        interval = self.config.control_interval_seconds
        arrivals = tier.arrived_requests
        rate = (arrivals - self._seen_arrivals) / interval
        self._seen_arrivals = arrivals
        alpha = self.config.ewma_alpha
        self._rate_ewma = alpha * rate + (1 - alpha) * self._rate_ewma
        shed = tier.shed_requests
        degraded = tier.degraded_requests
        requeued = tier.requeued_requests
        violations = tier.slo_violations_total
        finished = tier.finished_total
        # Per-tenant *window* rates (deltas over the interval): the worst
        # tenant's rate drives the "slo" policy, so one noisy-neighbour
        # victim is enough to trigger a scale-up even when the aggregate
        # rate looks healthy.
        tenant_finished = dict(getattr(tier, "tenant_finished", {}))
        tenant_violations = getattr(tier, "tenant_slo_violations", {})
        max_tenant_rate = 0.0
        for tenant, total_finished in tenant_finished.items():
            finished_delta = total_finished - self._seen_tenant_finished.get(tenant, 0)
            if finished_delta <= 0:
                continue
            violation_delta = tenant_violations.get(
                tenant, 0
            ) - self._seen_tenant_violations.get(tenant, 0)
            max_tenant_rate = max(max_tenant_rate, violation_delta / finished_delta)
        signals = ControlSignals(
            now=tier.loop.now,
            queue_depth=tier.waiting_requests,
            arrival_rate=rate,
            arrival_rate_ewma=self._rate_ewma,
            shed_delta=shed - self._seen_shed,
            degraded_delta=degraded - self._seen_degraded,
            requeued_delta=requeued - self._seen_requeued,
            active_shards=tier.num_shards,
            slots_per_function=tier.slots_per_function,
            capacity_units=tier.capacity_units,
            inflight=tier.inflight,
            slo_violation_delta=violations - self._seen_violations,
            finished_delta=finished - self._seen_finished,
            max_tenant_violation_rate=max_tenant_rate,
        )
        self._seen_shed, self._seen_degraded, self._seen_requeued = shed, degraded, requeued
        self._seen_violations, self._seen_finished = violations, finished
        self._seen_tenant_finished = tenant_finished
        self._seen_tenant_violations = dict(tenant_violations)
        return signals

    # ------------------------------------------------------------- actuation

    def _factor_target(
        self, target_units: int, current_shards: int, current_slots: int
    ) -> tuple[int, int]:
        """Deterministically factor a unit target into (shards, slots).

        Slots fill first (cheap, instant), shards only when the slot range
        cannot cover the target; the shard count moves at most one step from
        ``current_shards`` per tick, modelling gradual provisioning.
        """
        config = self.config
        target = max(config.min_capacity_units, min(int(target_units), config.max_capacity_units))
        shards = math.ceil(target / config.max_slots_per_function)
        # Shard-count hysteresis: keep an existing shard unless the target
        # fits in one fewer shard *with a unit of slack*.  Retiring a shard
        # dumps its cache, so flapping on a noisy target pays the cold-cache
        # warmup transient on every re-add; slot changes are free by
        # comparison and absorb the noise instead.
        shrink_room = (current_shards - 1) * config.max_slots_per_function - 1
        if shards < current_shards and target > shrink_room:
            shards = current_shards
        shards = max(config.min_shards, min(shards, config.max_shards))
        shards = max(current_shards - 1, min(shards, current_shards + 1))
        slots = math.ceil(target / shards)
        if target > current_shards * current_slots:
            # A scale-up must never lower the per-function slots of the
            # already-warm shards: a target that crosses a shard boundary
            # would otherwise factor to fewer slots (e.g. 2x4 asked for 9
            # gives 3x3), retiring warm instances exactly while the one new
            # shard is still paying its cold-cache warmup.
            slots = max(slots, current_slots)
        if target < current_shards * current_slots and (shards, slots) == (
            current_shards,
            current_slots,
        ):
            # Integer rounding would otherwise swallow a scale-down decision
            # entirely (e.g. 2 shards x 4 slots asked to release one unit
            # still rounds to 2 x 4) and the tier could never release
            # capacity.  The actuator's release quantum at fixed shards is
            # one slot *per shard*, so pick whichever single step — one slot
            # fewer everywhere, or one shard fewer — lands closest to the
            # target (ties prefer the slot step: retiring a shard dumps its
            # cache).
            candidates = []
            if slots > config.min_slots_per_function:
                candidates.append((current_shards, slots - 1))
            if current_shards > config.min_shards:
                candidates.append((current_shards - 1, slots))
            if candidates:
                shards, slots = max(
                    candidates,
                    key=lambda pair: (pair[0] * pair[1], pair[0] == current_shards),
                )
        slots = max(config.min_slots_per_function, min(slots, config.max_slots_per_function))
        return shards, slots

    def _apply(self, decision: ScaleDecision, signals: ControlSignals) -> None:
        tier = self.tier
        shards, slots = self._factor_target(
            decision.target_capacity_units, signals.active_shards, signals.slots_per_function
        )
        if shards > signals.active_shards:
            tier.add_shard()
            self._record("shard-added", decision.reason)
        elif shards < signals.active_shards:
            tier.remove_shard()
            self._record("shard-removed", decision.reason)
        if slots != tier.slots_per_function:
            action = "slots-up" if slots > tier.slots_per_function else "slots-down"
            tier.set_function_concurrency(slots)
            self._record(action, decision.reason)
        self.peak_capacity_units = max(self.peak_capacity_units, tier.capacity_units)

    def _record(self, action: str, reason: str) -> None:
        tier = self.tier
        self.events.append(
            ScaleEvent(
                time=tier.loop.now,
                action=action,
                reason=reason,
                shards=tier.num_shards,
                slots_per_function=tier.slots_per_function,
                capacity_units=tier.capacity_units,
                replica_warm_events=getattr(tier, "replica_warm_events", 0),
            )
        )

    # ------------------------------------------------------------- reporting

    @property
    def warm_capacity_cost_dollars(self) -> float:
        """Provisioned warm capacity integrated over virtual time, in dollars."""
        price = self.tier.config.pricing.lambda_provisioned_cost_per_gb_second
        return self.provisioned_gb_seconds * price

    def summary(self) -> AutoscaleSummary:
        """Aggregate accounting of the run this autoscaler drove."""
        return AutoscaleSummary(
            policy=self.policy.name,
            scale_events=len(self.events),
            shard_adds=sum(1 for e in self.events if e.action == "shard-added"),
            shard_removes=sum(1 for e in self.events if e.action == "shard-removed"),
            slot_changes=sum(1 for e in self.events if e.action.startswith("slots-")),
            final_shards=self.tier.num_shards,
            final_slots_per_function=self.tier.slots_per_function,
            peak_capacity_units=self.peak_capacity_units,
            capacity_unit_seconds=self.capacity_unit_seconds,
            provisioned_gb_seconds=self.provisioned_gb_seconds,
            warm_capacity_cost_dollars=self.warm_capacity_cost_dollars,
            replica_warm_events=getattr(self.tier, "replica_warm_events", 0),
            events=list(self.events),
        )
