"""A routed, sharded serving tier behind one front door.

:class:`ShardedEngineFLStore` owns N independent ``FLStore`` +
:class:`~repro.engine.flstore.EngineFLStore` shards running on **one shared
event loop** (a single virtual timeline), routes every request to a shard by
its data-affinity key (:mod:`repro.routing`), and aggregates the results:
per-request :class:`~repro.engine.flstore.EngineOutcome` rows in global
completion order, running latency/cost accumulators, queue-depth profiles
merged across shards, and cache-liveness accounting (cached bytes, live
keys, warm functions) summed over the tier.

Each shard keeps its own admission controller
(``ServerlessConfig.max_queue_depth`` / ``shed_policy``), so overload on a
hot shard sheds or degrades only that shard's arrivals while cold shards
keep serving — the scaling behaviour ``repro.cli run-shard-sweep`` measures.

The tier resizes online (:meth:`add_shard` / :meth:`remove_shard`), which is
what the autoscaler (:mod:`repro.engine.autoscale`) actuates:

* requests are routed when they *arrive* (not when they are submitted), so
  arrivals always see the current shard set;
* shards are added and retired last-in-first-out, so the consistent-hash
  ring over K active shards is always exactly the one a fresh K-shard tier
  would build, and a resize remaps only ~1/(K+1) of the key space;
* a freshly added shard replays the tier's ingested rounds into its
  persistent store but joins with a *cold cache* (its warm functions are
  reclaimed after the replay), so the warmup transient — misses, persistent
  fetches, cold starts — is part of the simulated cost of scaling out;
* a retired shard drains its waiters as ``requeued`` (the PR-3 reclamation
  semantics), keeping ``served + requeued + degraded + shed == offered``
  across resize events.

Design invariant (enforced by ``tests/test_sharded.py``): a one-shard tier
with unbounded queues is *byte-identical* to a plain ``EngineFLStore`` —
same per-request rows, same report — because the front door delegates to the
same submission path and builds its report through the same
:func:`~repro.engine.flstore.build_load_report` code.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.cloud.payload import payload_size_bytes
from repro.common.errors import ConfigurationError
from repro.config import SHED_POLICIES
from repro.core.flstore import FLStore, ServeResult, build_default_flstore
from repro.engine.flstore import (
    EngineFLStore,
    EngineOutcome,
    LoadReport,
    build_load_report,
)
from repro.engine.kernel import EventLoop, SimTask
from repro.engine.streaming import StreamingLoadCollector, check_metrics_mode
from repro.routing import ShardRouter, make_router, request_routing_key, stable_hash_u64
from repro.serverless.faults import ZipfianFaultInjector
from repro.simulation.records import CostAccumulator, LatencyAccumulator
from repro.workloads.base import WorkloadRequest
from repro.workloads.registry import get_workload

#: Replication policies understood by the front door.  ``"none"`` keeps the
#: tier byte-identical to the pre-replication behaviour; ``"hot-static"``
#: replicates the statically known hot key (cross-client requests against the
#: latest round — the P1 pattern); ``"hot-tracked"`` replicates any routing
#: key whose observed arrival count reaches the hot threshold.
REPLICATION_POLICIES: tuple[str, ...] = ("none", "hot-static", "hot-tracked")


def merge_depth_samples(
    per_shard: Sequence[Sequence[tuple[float, int]]],
) -> list[tuple[float, int]]:
    """Merge per-shard queue-depth samples into one fleet-wide profile.

    Each shard records ``(time, waiting)`` samples of its own queue; the
    fleet-wide depth at any instant is the sum of the shards' last-seen
    depths.  Same-time samples merge in (position, shard) order, which is
    deterministic and collapses to the identity for a single shard.
    """
    if len(per_shard) == 1:
        return list(per_shard[0])
    events: list[tuple[float, int, int, int]] = []
    for shard_index, samples in enumerate(per_shard):
        for position, (time_point, depth) in enumerate(samples):
            events.append((time_point, position, shard_index, depth))
    events.sort()
    current = [0] * len(per_shard)
    merged: list[tuple[float, int]] = []
    for time_point, _, shard_index, depth in events:
        current[shard_index] = depth
        merged.append((time_point, sum(current)))
    return merged


def _discard_outcome(outcome: EngineOutcome) -> None:
    """Shard-level outcome sink for streaming runs.

    The front door already folds every outcome into the run's collector as
    the shard task resolves; the shard itself must simply not retain the row.
    """


class ShardedEngineFLStore:
    """Routing front door over N independent engine-backed FLStore shards.

    Parameters
    ----------
    flstores:
        The analytic shard cores, one per shard.  Every shard ingests the
        full round stream (each is a complete store), so any shard *can*
        serve any request; the router partitions the request stream for
        cache affinity and parallel capacity, not for data availability.
    router:
        Key-to-shard placement (defaults to a consistent-hash ring over the
        shard count).  Online resize rebuilds the router through
        :meth:`repro.routing.ShardRouter.resized`, which preserves the
        router's kind and parameters (e.g. ``vnodes``).
    loop:
        Shared event loop; all shards schedule on one virtual timeline.
    fault_injectors:
        Optional per-shard reclamation samplers (initial shards only; shards
        added by the autoscaler join without one).
    max_queue_depth / shed_policy:
        Per-shard admission-control overrides (default: each shard's
        ``config.serverless`` values).  Applied to added shards too, so the
        per-function queue bounds stay in lockstep across resizes.
    shard_factory:
        Zero-argument callable building a fresh (un-ingested) ``FLStore``
        for :meth:`add_shard`; without one the tier cannot scale out.
    warm_rounds:
        Round records already ingested into ``flstores`` before the tier was
        built (e.g. by ``prepare_setup``); replayed into shards added later
        so they serve from the same catalog.
    replication_factor / replication_policy / hot_threshold:
        Hot-key replication (read-only).  With a policy other than
        ``"none"``, a hot routing key's data is replicated onto its
        ``replication_factor`` ring-successor shards (primary included in
        the count) via scheduled warm events — each replica key pays its own
        cold start plus persistent fetch, so concurrent cold starts overlap
        as real processes on the timeline — and arrivals for the key are
        served from any active shard whose replica is fully live (JSQ picks
        the least-loaded live holder; hash routers pick deterministically by
        request id).  ``"hot-static"`` replicates the canonical P1 hot key
        (cross-client, latest round); ``"hot-tracked"`` promotes any key
        after ``hot_threshold`` observed arrivals.  Replication also warms
        shard joins: :meth:`add_shard` seeds the joining shard from live
        replicas instead of replaying the round log into its cache cold.
    """

    system_name = "sharded-engine-flstore"

    def __init__(
        self,
        flstores: Sequence[FLStore],
        router: ShardRouter | None = None,
        loop: EventLoop | None = None,
        fault_injectors: Sequence[ZipfianFaultInjector | None] | None = None,
        reclamation_interval_seconds: float = 60.0,
        max_queue_depth: int | None = None,
        shed_policy: str | None = None,
        shard_factory: Callable[[], FLStore] | None = None,
        warm_rounds: Sequence[object] | None = None,
        replication_factor: int = 1,
        replication_policy: str = "none",
        hot_threshold: int = 8,
    ) -> None:
        flstores = list(flstores)
        if not flstores:
            raise ValueError("a sharded tier needs at least one shard")
        self.loop = loop or EventLoop()
        self.router = router or make_router("consistent-hash", len(flstores))
        if self.router.num_shards != len(flstores):
            raise ValueError(
                f"router covers {self.router.num_shards} shards "
                f"but {len(flstores)} were provided"
            )
        injectors = list(fault_injectors) if fault_injectors is not None else [None] * len(flstores)
        if len(injectors) != len(flstores):
            raise ValueError("fault_injectors must match the shard count")
        if replication_policy not in REPLICATION_POLICIES:
            raise ConfigurationError(
                f"unknown replication policy {replication_policy!r}; "
                f"expected one of {REPLICATION_POLICIES}"
            )
        if replication_factor < 1:
            raise ConfigurationError(
                f"replication_factor must be at least 1, got {replication_factor}"
            )
        if hot_threshold < 1:
            raise ConfigurationError(f"hot_threshold must be at least 1, got {hot_threshold}")
        self.replication_factor = int(replication_factor)
        self.replication_policy = replication_policy
        self.hot_threshold = int(hot_threshold)
        self._replication_enabled = replication_policy != "none"
        #: Routing key -> shard indices holding (or warming) its replicas,
        #: primary (ring owner) first.
        self._replica_holders: dict[int, list[int]] = {}
        #: Routing key -> data keys covered by its replicas so far.
        self._replica_keys: dict[int, tuple] = {}
        #: ``(routing key, workload)`` pairs whose data keys were resolved.
        self._warmed_markers: set[tuple[int, str]] = set()
        #: Arrival counts per routing key (``hot-tracked`` policy only).
        self._hot_counts: dict[int, int] = {}
        #: Replica copies that finished warming (per-key placement events).
        self.replica_warm_events = 0
        #: Hot-key arrivals served by a non-primary replica holder.
        self.replica_hits = 0
        self._max_queue_depth = max_queue_depth
        self._shed_policy = shed_policy
        self._reclamation_interval = reclamation_interval_seconds
        self._shard_factory = shard_factory
        #: All shards ever created, in creation order; retired shards stay
        #: (their completed work and counters remain part of the tier).
        self.shards = [
            EngineFLStore(
                flstore,
                loop=self.loop,
                fault_injector=injector,
                reclamation_interval_seconds=reclamation_interval_seconds,
                max_queue_depth=max_queue_depth,
                shed_policy=shed_policy,
            )
            for flstore, injector in zip(flstores, injectors)
        ]
        # Under route-at-arrival a shard's own outstanding count hits zero
        # whenever it is momentarily idle; its keep-alive/reclamation
        # daemons must instead live as long as the *tier* has in-flight
        # traffic (matching the plain engine, whose count includes
        # submitted-but-not-yet-arrived requests).
        for shard in self.shards:
            shard.daemon_alive = self._has_inflight
        #: Indices into ``shards`` currently receiving traffic; resized
        #: last-in-first-out so router slot ``i`` is always ``_active[i]``.
        self._active: list[int] = list(range(len(self.shards)))
        self._bind_router()
        self.routed_counts = [0] * len(self.shards)
        #: Requests submitted to the front door but not yet resolved.
        self._inflight = 0
        #: Requests whose arrival (routing) event has fired — the
        #: autoscaler's arrival-rate control signal.
        self.arrived_requests = 0
        #: Per-function slots currently provisioned across the tier (the
        #: within-shard warm-capacity lever; see ``set_function_concurrency``).
        self.slots_per_function = self.config.serverless.function_concurrency
        #: Rounds ingested through the front door (or passed as
        #: ``warm_rounds``); replayed into shards added later.
        self._round_log: list = list(warm_rounds) if warm_rounds is not None else []
        #: How many entries of ``_round_log`` each shard has ingested, so a
        #: re-activated shard replays only what it missed while retired.
        self._ingested_counts = [len(self._round_log)] * len(self.shards)
        #: Retired shard indices, newest last; :meth:`add_shard` re-activates
        #: from here before building a fresh shard, so diurnal add/remove
        #: cycles reuse one chassis instead of accreting dead stores.
        self._retired: list[int] = []
        self._keepalive_active = False
        #: Running latency/cost totals over every completed request (all
        #: dispositions), aggregated across shards as outcomes resolve.
        self.latency_totals = LatencyAccumulator()
        self.cost_totals = CostAccumulator()
        self._completed: list[EngineOutcome] = []
        #: Tier-lifetime outcome counters, mirroring the plain engine's: the
        #: remediation controller reads per-window deltas off these
        #: (``watch_slo_seconds`` arms the violation counter) instead of
        #: re-scanning ``_completed`` every control tick, and the streaming
        #: metrics mode depends on them because it retains no rows at all.
        self.completed_total = 0
        self.finished_total = 0
        self.slo_violations_total = 0
        self.watch_slo_seconds: float | None = None
        #: Tier-level tenant policy state, mirroring the plain engine's
        #: (:meth:`EngineFLStore.configure_tenants`); propagated to every
        #: shard — current and future — so per-shard queue disciplines and
        #: push-out admission see the same weights everywhere.
        self._tenant_weights: dict[str, float] = {}
        self.tenant_slo_seconds: dict[str, float] = {}
        self.tenant_finished: dict[str, int] = {}
        self.tenant_slo_violations: dict[str, int] = {}
        #: Streaming-mode hook: when set, resolved outcomes flow here
        #: instead of the retained ``_completed`` list.
        self.outcome_sink: Callable[[EngineOutcome], None] | None = None
        # Fleet-wide queue depth, maintained incrementally during streaming
        # runs: last-seen depth per shard plus the running total, folded into
        # the collector in observation order (the same sum-of-last-seen
        # semantics as ``merge_depth_samples``).
        self._stream_collector: StreamingLoadCollector | None = None
        self._stream_depths: dict[int, int] = {}
        self._stream_depth_total = 0

    @classmethod
    def build(
        cls,
        num_shards: int,
        config=None,
        policy_mode: str = "tailored",
        router: ShardRouter | None = None,
        router_kind: str = "consistent-hash",
        **kwargs,
    ) -> "ShardedEngineFLStore":
        """Build ``num_shards`` fresh analytic shards behind one front door."""
        flstores = [build_default_flstore(config, policy_mode=policy_mode) for _ in range(num_shards)]
        kwargs.setdefault(
            "shard_factory", lambda: build_default_flstore(config, policy_mode=policy_mode)
        )
        return cls(flstores, router=router or make_router(router_kind, num_shards), **kwargs)

    def _bind_router(self) -> None:
        """Hand load-aware routers a live ``slot -> outstanding`` probe.

        The probe reads the *active* shard behind each router slot, so it is
        rebound after every resize (the slot -> shard mapping changed).  A
        shard's ``outstanding`` counts queued plus executing requests — the
        join-shortest-queue signal — and is already maintained on the serve
        path, so probing costs nothing extra.
        """
        bind = getattr(self.router, "bind_load_probe", None)
        if bind is not None:
            bind(lambda slot: self.shards[self._active[slot]].outstanding)

    # --------------------------------------------------------- passthroughs

    @property
    def num_shards(self) -> int:
        """Number of active shards behind the front door."""
        return len(self._active)

    @property
    def active_shards(self) -> list[EngineFLStore]:
        """The shards currently receiving traffic, in router-slot order."""
        return [self.shards[index] for index in self._active]

    @property
    def catalog(self):
        """The round catalog (identical across shards; shard 0's instance)."""
        return self.shards[0].catalog

    @property
    def config(self):
        """The simulation configuration (identical across shards)."""
        return self.shards[0].config

    def ingest_round(self, record) -> list:
        """Broadcast a training round into every active shard (full replication)."""
        self._round_log.append(record)
        reports = []
        for index in self._active:
            reports.append(self.shards[index].ingest_round(record))
            self._ingested_counts[index] = len(self._round_log)
        return reports

    # ---------------------------------------------------------------- tenancy

    def configure_tenants(
        self,
        weights,
        slo_seconds=None,
    ) -> None:
        """Arm tenant policy state tier-wide (every shard, retired included).

        Shards added later inherit the configuration in :meth:`add_shard`.
        An empty ``weights`` mapping disarms tenancy, exactly as on the
        plain engine.
        """
        self._tenant_weights = dict(weights)
        self.tenant_slo_seconds = {
            tenant: slo
            for tenant, slo in (slo_seconds or {}).items()
            if slo is not None
        }
        for shard in self.shards:
            shard.configure_tenants(weights, slo_seconds)

    def tenant_violation_rate(self, tenant: str | None) -> float:
        """Tier-lifetime SLO-violation rate of ``tenant`` (0.0 before any finish)."""
        if tenant is None:
            return 0.0
        finished = self.tenant_finished.get(tenant, 0)
        if not finished:
            return 0.0
        return self.tenant_slo_violations.get(tenant, 0) / finished

    # ------------------------------------------------------------ submission

    def submit(self, request: WorkloadRequest, at: float, priority: float = 0.0) -> SimTask:
        """Schedule ``request`` to arrive at ``at``; it is routed on arrival.

        Routing at arrival time (not submission time) is what makes online
        resize meaningful: an arrival always lands on the shard set that is
        active at its arrival instant, so requests submitted before a scale
        event still benefit from (or are shielded from) the resize.
        """
        task = SimTask(self.loop, name=request.request_id)
        task.add_done_callback(self._collect)
        self._inflight += 1

        def _admit() -> None:
            self.arrived_requests += 1
            shard_index = self._route(request)
            self.routed_counts[shard_index] += 1
            shard_task = self.shards[shard_index].submit(
                request, at=self.loop.now, priority=priority
            )
            shard_task.add_done_callback(task.resolve)

        self.loop.schedule_at(at, _admit)
        return task

    def _collect(self, outcome: EngineOutcome) -> None:
        """Aggregate one resolved outcome (fires in global completion order)."""
        self.completed_total += 1
        if outcome.disposition != "shed":
            self.finished_total += 1
            watch = self.watch_slo_seconds
            tenant = outcome.request.tenant_id
            if tenant is None:
                if watch is not None and outcome.sojourn_seconds > watch:
                    self.slo_violations_total += 1
            else:
                self.tenant_finished[tenant] = self.tenant_finished.get(tenant, 0) + 1
                slo = self.tenant_slo_seconds.get(tenant, watch)
                if slo is not None and outcome.sojourn_seconds > slo:
                    self.slo_violations_total += 1
                    self.tenant_slo_violations[tenant] = (
                        self.tenant_slo_violations.get(tenant, 0) + 1
                    )
        sink = self.outcome_sink
        if sink is None:
            self._completed.append(outcome)
        else:
            sink(outcome)
        self.latency_totals.add(outcome.result.latency)
        self.cost_totals.add(outcome.result.cost)
        self._inflight -= 1

    def _submit_block(
        self,
        requests: Sequence[WorkloadRequest],
        absolute_times: Sequence[float],
        priorities: Sequence[float] | None,
    ) -> None:
        """Submit one open-loop block, bulk-scheduling sorted arrivals.

        The front-door counterpart of
        :meth:`EngineFLStore._submit_block`: non-decreasing arrival instants
        go through one :meth:`~repro.engine.kernel.EventLoop.schedule_many`
        stream (routing still happens per arrival, at arrival time), with a
        contiguous sequence block reserved up front so event order — and
        every report — is byte-identical to per-request :meth:`submit`
        calls.  Unsorted inputs fall back to those calls.
        """
        count = len(requests)
        if count == 0:
            return
        times = np.asarray(absolute_times, dtype=np.float64)
        if count > 1 and not bool(np.all(times[1:] >= times[:-1])):
            for index, (request, at) in enumerate(zip(requests, absolute_times)):
                priority = priorities[index] if priorities is not None else 0.0
                self.submit(request, at=at, priority=priority)
            return
        tasks = []
        for request in requests:
            task = SimTask(self.loop, name=request.request_id)
            task.add_done_callback(self._collect)
            tasks.append(task)
        self._inflight += count

        def _admit(index: int) -> None:
            request = requests[index]
            self.arrived_requests += 1
            shard_index = self._route(request)
            self.routed_counts[shard_index] += 1
            priority = priorities[index] if priorities is not None else 0.0
            shard_task = self.shards[shard_index].submit(
                request, at=self.loop.now, priority=priority
            )
            shard_task.add_done_callback(tasks[index].resolve)

        self.loop.schedule_many(times, _admit)

    @property
    def inflight(self) -> int:
        """Requests submitted to the front door but not yet resolved."""
        return self._inflight

    def _has_inflight(self) -> bool:
        return self._inflight > 0

    # -------------------------------------------------- hot-key replication

    def _route(self, request: WorkloadRequest) -> int:
        """The shard index an arrival lands on (replication-aware).

        With replication off this is exactly the router's verdict over the
        active set — byte-identical to the pre-replication front door.
        """
        if not self._replication_enabled:
            return self._active[self.router.route_request(request)]
        key = request_routing_key(request)
        if not self._is_hot(request, key):
            return self._active[self.router.route(key)]
        holders = self._replica_holders.get(key)
        if holders is None:
            wanted = min(self.replication_factor, len(self._active))
            holders = [self._active[slot] for slot in self.router.replica_slots(key, wanted)]
            self._replica_holders[key] = holders
            self._replica_keys[key] = ()
        marker = (key, request.workload)
        if marker not in self._warmed_markers:
            self._warmed_markers.add(marker)
            workload = get_workload(request.workload)
            data_keys = tuple(workload.required_keys(request, self.catalog))
            known = self._replica_keys[key]
            fresh = tuple(data_key for data_key in data_keys if data_key not in known)
            self._replica_keys[key] = known + fresh
            for shard_index in holders[1:]:
                self._warm_shard(shard_index, fresh)
        return self._pick_holder(key, request, holders)

    def _is_hot(self, request: WorkloadRequest, key: int) -> bool:
        """Whether ``key`` is (or just became) a replicated hot key."""
        if key in self._replica_holders:
            return True
        if self.replication_policy == "hot-static":
            # The canonical P1 pattern: every client asks for the latest
            # round's aggregate — one routing key carries the whole wave.
            return request.client_id is None and request.round_id == self.catalog.latest_round
        count = self._hot_counts.get(key, 0) + 1
        self._hot_counts[key] = count
        return count >= self.hot_threshold

    def _warm_shard(self, shard_index: int, data_keys: Sequence) -> None:
        """Schedule replica warm events for ``data_keys`` onto one shard.

        Each key fetches its value from the shard's persistent store and
        arrives in cache after a cold start plus the fetch latency — its own
        scheduled event, so a warmup burst is a set of *overlapping* spawn
        processes on the virtual timeline, not one analytic latency.  The
        fetch cost is charged to the shard's background (ingest) accounting,
        matching how round replays are billed.
        """
        shard = self.shards[shard_index]
        flstore = shard.flstore
        cluster = flstore.cluster
        cold_start = self.config.serverless.cold_start_seconds
        for data_key in data_keys:
            if cluster.is_live(data_key):
                continue
            fetch_latency, fetch_cost, value = flstore._fetch_from_persistent(data_key)
            if value is None:
                continue
            flstore.ingest_cost = flstore.ingest_cost + fetch_cost
            size = payload_size_bytes(value)
            delay = cold_start + fetch_latency.total_seconds

            def _arrive(key=data_key, value=value, size=size, cluster=cluster) -> None:
                if cluster.is_live(key):
                    return
                try:
                    cluster.place(key, value, size, now=self.loop.now, tier_replica=True)
                except Exception:
                    return  # no capacity: the copy stays cold, routing skips it
                self.replica_warm_events += 1

            self.loop.schedule(delay, _arrive)

    def _replica_live(self, shard_index: int, key: int) -> bool:
        """Whether every data key replicated for ``key`` is live on the shard."""
        data_keys = self._replica_keys.get(key, ())
        if not data_keys:
            return False
        cluster = self.shards[shard_index].flstore.cluster
        return all(cluster.is_live(data_key) for data_key in data_keys)

    def _pick_holder(self, key: int, request: WorkloadRequest, holders: list[int]) -> int:
        """Pick the serving shard for a replicated hot key.

        Only *live* holders are candidates: the primary (ring owner) always
        is — it pays its own misses like any routed arrival — while a
        replica holder qualifies once every replicated data key is live on
        it.  Load-aware routers pick the least-loaded live holder (ties
        prefer placement order); plain hash routers spread deterministically
        by request id, so fixed seeds stay stable.
        """
        primary = holders[0]
        live = [
            index
            for index in holders
            if index in self._active and (index == primary or self._replica_live(index, key))
        ]
        if not live:
            # The primary itself was retired and nothing is warm yet: fall
            # back to plain ring routing over the active set.
            return self._active[self.router.route(key)]
        if len(live) == 1:
            chosen = live[0]
        elif hasattr(self.router, "bind_load_probe"):
            chosen = live[0]
            best_load = self.shards[chosen].outstanding
            for index in live[1:]:
                load = self.shards[index].outstanding
                if load < best_load:
                    chosen, best_load = index, load
        else:
            chosen = live[stable_hash_u64(request.request_id) % len(live)]
        if chosen != primary:
            self.replica_hits += 1
        return chosen

    def _refresh_replicas(self) -> None:
        """Recompute hot-key holder sets after a resize; warm new holders.

        The replica set follows the ring: after a resize each hot key's
        holders are its successor shards on the *new* ring, so a joining
        shard that now owns (or backs up) a hot key is seeded from the
        persistent store via warm events — the replica-warmed join.  Shards
        that dropped out of a holder set keep their copies until reclamation
        collects them; routing simply stops considering them.
        """
        if not self._replication_enabled:
            return
        for key, data_keys in self._replica_keys.items():
            wanted = min(self.replication_factor, len(self._active))
            holders = [self._active[slot] for slot in self.router.replica_slots(key, wanted)]
            previous = self._replica_holders.get(key, [])
            for shard_index in holders:
                if shard_index not in previous:
                    self._warm_shard(shard_index, data_keys)
            self._replica_holders[key] = holders

    @property
    def replicated_keys(self) -> int:
        """Routing keys currently tracked as replicated hot keys."""
        return len(self._replica_holders)

    @property
    def replica_cached_bytes(self) -> int:
        """Bytes held as tier replicas across every shard."""
        return sum(shard.flstore.cluster.replica_cached_bytes for shard in self.shards)

    # ------------------------------------------------------ streaming hooks

    def _begin_streaming(self, collector: StreamingLoadCollector) -> None:
        """Route outcomes and queue-depth changes into ``collector``.

        The front door folds every resolved outcome; each shard discards its
        own copy of the row and reports queue-depth changes to
        :meth:`_on_shard_depth`, which maintains the fleet-wide depth
        incrementally.  Shards added mid-run get the same hooks
        (see :meth:`add_shard`).
        """
        self._stream_collector = collector
        self._stream_depths = {}
        self._stream_depth_total = 0
        self.outcome_sink = collector.fold
        for shard in self.shards:
            self._apply_stream_hooks(shard)

    def _apply_stream_hooks(self, shard: EngineFLStore) -> None:
        shard.outcome_sink = _discard_outcome
        shard.depth_listener = self._on_shard_depth

    def _on_shard_depth(self, shard: EngineFLStore, now: float, depth: int) -> None:
        key = id(shard)
        previous = self._stream_depths.get(key, 0)
        self._stream_depths[key] = depth
        self._stream_depth_total += depth - previous
        self._stream_collector.note_depth(now, self._stream_depth_total)

    def _end_streaming(self) -> None:
        self._stream_collector = None
        self._stream_depths = {}
        self._stream_depth_total = 0
        self.outcome_sink = None
        for shard in self.shards:
            shard.outcome_sink = None
            shard.depth_listener = None

    # --------------------------------------------------------- online resize

    @staticmethod
    def _cold_join(flstore: FLStore) -> None:
        """Model a shard joining with a cold cache.

        Round ingestion (initial build or catch-up replay) warms the shard's
        functions as if it had been serving all along; reclaiming them means
        the warmup transient — misses, persistent-store fetches, cold
        starts — is paid by the requests the rebuilt ring routes to it.
        """
        for function_id in list(flstore.cluster.function_ids()):
            flstore.platform.reclaim_function(function_id)
        flstore.engine.drop_lost_keys()

    def add_shard(self) -> int:
        """Grow the tier by one shard; returns the shard's index.

        The most recently retired shard (if any) is re-activated: it catches
        up the rounds it missed while retired and rejoins — still with a
        cold cache, since retirement reclaimed its warm functions — so a
        diurnal add/remove cycle reuses one chassis instead of rebuilding a
        store per peak.  Otherwise a fresh shard is built via the
        ``shard_factory`` and replays the full round log.  Either way the
        joining shard's persistent store and catalog match its peers, and
        the cold-cache warmup transient — misses, persistent fetches, cold
        starts — is paid by the requests the rebuilt consistent-hash ring
        now routes to it (~1/(K+1) of the key space).
        """
        # With replication on, the catch-up replay skips the cache plane
        # entirely (cold ingest): every hot key the join should serve warm is
        # covered by the replica warm events `_refresh_replicas` schedules
        # below, and running the ingest policy as well would place the same
        # bytes twice.  `_cold_join` is skipped for the same reason — a cold
        # ingest warms no functions, so there is nothing to reclaim.
        warm_join = self._replication_enabled
        if self._retired:
            index = self._retired.pop()
            shard = self.shards[index]
            missed = self._round_log[self._ingested_counts[index]:]
            for record in missed:
                if warm_join:
                    shard.flstore.ingest_round_cold(record)
                else:
                    shard.ingest_round(record)
            self._ingested_counts[index] = len(self._round_log)
            if missed and not warm_join:
                self._cold_join(shard.flstore)
        else:
            if self._shard_factory is None:
                raise RuntimeError(
                    "this tier was built without a shard_factory; it cannot scale out"
                )
            flstore = self._shard_factory()
            for record in self._round_log:
                if warm_join:
                    flstore.ingest_round_cold(record)
                else:
                    flstore.ingest_round(record)
            if not warm_join:
                self._cold_join(flstore)
            shard = EngineFLStore(
                flstore,
                loop=self.loop,
                fault_injector=None,
                reclamation_interval_seconds=self._reclamation_interval,
                max_queue_depth=self._max_queue_depth,
                shed_policy=self._shed_policy,
            )
            index = len(self.shards)
            self.shards.append(shard)
            self.routed_counts.append(0)
            self._ingested_counts.append(len(self._round_log))
        # Keep the within-shard capacity levers in lockstep with the tier:
        # the admission bound (set at construction and unchanged since) and
        # the provisioned per-function slots, which may have been re-scaled
        # while this shard was retired.
        shard.set_function_concurrency(self.slots_per_function)
        if self._tenant_weights:
            shard.configure_tenants(self._tenant_weights, self.tenant_slo_seconds)
        shard.daemon_alive = self._has_inflight
        if self._stream_collector is not None:
            self._apply_stream_hooks(shard)
        self._active.append(index)
        self.router = self.router.resized(len(self._active))
        self._bind_router()
        self._refresh_replicas()
        if self._keepalive_active:
            shard.schedule_keepalive()
        if self._inflight > 0:
            # Re-activated initial shards may carry a fault injector whose
            # daemon wound down while the shard was retired (no-op and
            # idempotent otherwise).
            shard.schedule_reclamations()
        return index

    def remove_shard(self) -> int:
        """Retire the most recently added active shard; returns its index.

        Last-in-first-out retirement keeps the active set in creation order,
        so the rebuilt ring is exactly the one the tier used before the
        matching :meth:`add_shard` — remapping stays bounded.  The retired
        shard's waiters drain as ``requeued`` and its warm capacity is
        released; in-flight executions finish on the shared loop.  The
        shard itself is kept on the retired stack for re-activation by a
        later :meth:`add_shard`.
        """
        if len(self._active) <= 1:
            # ConfigurationError, not ValueError: retiring (or crashing) the
            # last shard would leave the hash ring empty — a structurally
            # unservable tier, the same class of error as building one.
            raise ConfigurationError(
                "cannot retire the last active shard: the tier would have an "
                "empty routing ring and every subsequent arrival would be lost"
            )
        index = self._active.pop()
        self.router = self.router.resized(len(self._active))
        self._bind_router()
        self.shards[index].retire()
        self._retired.append(index)
        self._refresh_replicas()
        return index

    def crash_shard(self) -> int:
        """A whole-shard failure: the front door loses a shard mid-run.

        Fault-injection entry point (:mod:`repro.engine.faults`).  The
        failure semantics are those of :meth:`remove_shard` — the ring
        rebuilds without the shard, its waiters drain as ``requeued`` (so
        conservation holds through the crash), its warm capacity is gone —
        but the *intent* differs: nothing scheduled this capacity away, so a
        remediation controller may legitimately re-add it.  Crashing the
        last active shard raises :class:`ConfigurationError`.
        """
        return self.remove_shard()

    def set_shed_policy(self, policy: str) -> None:
        """Switch the admission-control shedding policy tier-wide, online.

        A remediation actuator: flipping ``drop`` to ``degrade-to-objstore``
        trades rejections for slow degraded serves while the tier recovers.
        Applies to every shard (retired ones included, so a re-activated
        shard rejoins with the tier's current policy) and to shards added
        later.
        """
        if policy not in SHED_POLICIES:
            raise ConfigurationError(
                f"unknown shed policy {policy!r}; expected one of {SHED_POLICIES}"
            )
        self._shed_policy = policy
        for shard in self.shards:
            shard.shed_policy = policy

    def set_router_kind(self, kind: str) -> None:
        """Rebuild the front door's router as ``kind`` over the active shards.

        A remediation actuator: rerouting via ``jsq`` spreads arrivals away
        from backed-up shards by live queue depth.  The new router covers
        the current active set and is immediately (re)bound to the tier's
        load probe; routing changes only affect arrivals from now on
        (route-at-arrival).
        """
        self.router = make_router(kind, len(self._active))
        self._bind_router()

    def set_function_concurrency(self, limit: int) -> int:
        """Scale per-function slots on every active shard (and future shards).

        Returns the number of queued waiters granted a slot by the change.
        """
        self.slots_per_function = int(limit)
        return sum(
            self.shards[index].set_function_concurrency(limit) for index in self._active
        )

    # ------------------------------------------------------------ run modes

    def run_closed_loop(self, requests: Iterable[WorkloadRequest]) -> list[ServeResult]:
        """Serve ``requests`` sequentially through the routed tier."""
        results: list[ServeResult] = []
        for request in requests:
            task = self.submit(request, at=self.loop.now)
            self.loop.run()
            results.append(task.result.result)
        return results

    def run_open_loop(
        self,
        requests: Sequence[WorkloadRequest],
        arrival_times: Sequence[float],
        priorities: Sequence[float] | None = None,
        label: str = "open-loop",
        keepalive: bool = False,
        slo_seconds: float | None = None,
        autoscaler=None,
        fault_plan=None,
        remediation=None,
        metrics: str = "full",
    ) -> LoadReport:
        """Serve ``requests`` open-loop across the tier; report fleet metrics.

        Mirrors :meth:`EngineFLStore.run_open_loop`: arrival times are
        relative to the run start, per-run counters are reported per run,
        and the report aggregates outcomes in global completion order with
        queue-depth profiles merged across shards (including shards added or
        retired mid-run).  An ``autoscaler``
        (:class:`repro.engine.autoscale.Autoscaler`) runs its control loop
        as scheduled events on the same virtual timeline; a ``fault_plan``
        (:class:`repro.engine.faults.FaultPlan`) schedules its fault clauses
        the same way, and a ``remediation`` controller
        (:class:`repro.engine.remediate.RemediationController`) ticks
        alongside, detecting and repairing what the faults break.

        ``metrics`` selects the report pipeline exactly as on the plain
        engine: ``"full"`` (default) retains rows and is byte-identical to
        the pre-knob behaviour; ``"streaming"`` folds outcomes and the
        fleet-wide queue depth into O(1)-memory accumulators — every scalar
        column except the percentile sketches stays exact, and
        ``report.outcomes`` is empty.
        """
        if len(requests) != len(arrival_times):
            raise ValueError("requests and arrival_times must have the same length")
        check_metrics_mode(metrics)
        base = self.loop.now
        absolute_times = [base + float(at) for at in arrival_times]
        start_count = len(self._completed)
        pings_before = self.keepalive_pings
        reclamations_before = self.reclamations
        self._keepalive_active = keepalive
        for shard in self.shards:
            shard._depth_samples = []
        collector: StreamingLoadCollector | None = None
        if metrics == "streaming":
            collector = StreamingLoadCollector(
                slo_seconds, tenant_slos=self.tenant_slo_seconds or None
            )
            self._begin_streaming(collector)
        try:
            self._submit_block(requests, absolute_times, priorities)
            if keepalive:
                for index in self._active:
                    self.shards[index].schedule_keepalive()
            for index in self._active:
                self.shards[index].schedule_reclamations()
            if autoscaler is not None:
                autoscaler.start()
            if fault_plan is not None:
                fault_plan.start()
            if remediation is not None:
                remediation.start()
            self.loop.run()
            if autoscaler is not None:
                autoscaler.finalize()
            if remediation is not None:
                remediation.finalize()
            self._keepalive_active = False
        finally:
            if collector is not None:
                self._end_streaming()
        if collector is not None:
            return collector.build_report(
                label,
                submitted=len(absolute_times),
                first_arrival=min(absolute_times) if absolute_times else 0.0,
                last_arrival=max(absolute_times) if absolute_times else 0.0,
                keepalive_pings=self.keepalive_pings - pings_before,
                reclamations=self.reclamations - reclamations_before,
            )
        outcomes = self._completed[start_count:]
        return build_load_report(
            outcomes,
            absolute_times,
            label,
            depth_samples=merge_depth_samples([shard._depth_samples for shard in self.shards]),
            keepalive_pings=self.keepalive_pings - pings_before,
            reclamations=self.reclamations - reclamations_before,
            slo_seconds=slo_seconds,
            tenant_slos=self.tenant_slo_seconds or None,
        )

    # ------------------------------------------------- aggregate accounting

    @property
    def keepalive_pings(self) -> int:
        """Keep-alive pings fired across every shard."""
        return sum(shard.keepalive_pings for shard in self.shards)

    @property
    def reclamations(self) -> int:
        """Provider reclamations sampled across every shard."""
        return sum(shard.reclamations for shard in self.shards)

    @property
    def shed_requests(self) -> int:
        """Requests dropped by admission control across every shard."""
        return sum(shard.shed_requests for shard in self.shards)

    @property
    def degraded_requests(self) -> int:
        """Requests degraded to the object-store path across every shard."""
        return sum(shard.degraded_requests for shard in self.shards)

    @property
    def requeued_requests(self) -> int:
        """Waiters drained by reclamations or retirements across every shard."""
        return sum(shard.requeued_requests for shard in self.shards)

    @property
    def waiting_requests(self) -> int:
        """Requests queued for an execution slot across the active shards."""
        return sum(self.shards[index].waiting for index in self._active)

    @property
    def cached_bytes(self) -> int:
        """Bytes of FL metadata resident across every shard's cache.

        Tier replicas are excluded: a hot key replicated onto R shards
        counts its bytes once, on the owning shard (see
        :attr:`replica_cached_bytes` for the replicated copies).  Identical
        to the plain per-shard sum when replication is off.
        """
        return sum(shard.flstore.cluster.owned_cached_bytes for shard in self.shards)

    @property
    def live_key_count(self) -> int:
        """Keys with a live cached copy, summed over the tier.

        Counts owned copies only, so a key live on its owner and on two
        replica holders is one live key fleet-wide.
        """
        return sum(shard.flstore.cluster.owned_live_key_count for shard in self.shards)

    @property
    def warm_function_count(self) -> int:
        """Warm serverless functions backing the tier."""
        return sum(shard.flstore.warm_function_count for shard in self.shards)

    @property
    def capacity_units(self) -> int:
        """Nominal capacity: per-function slots x active shards.

        The coarse-grained quantity the autoscaler's policies target — each
        unit is one execution slot on a shard's (hot) execution function.
        """
        return self.slots_per_function * len(self._active)

    @property
    def provisioned_slots(self) -> int:
        """Execution slots provisioned across the active shards' warm fleets."""
        return sum(self.shards[index].platform.provisioned_slots for index in self._active)

    @property
    def provisioned_gb(self) -> float:
        """Warm provisioned capacity in GB across the active shards."""
        return sum(self.shards[index].platform.provisioned_gb for index in self._active)

    @property
    def total_latency_seconds(self) -> float:
        """Accumulated request latency across the tier (all dispositions)."""
        return self.latency_totals.total_seconds

    @property
    def total_cost_dollars(self) -> float:
        """Accumulated request cost across the tier (all dispositions)."""
        return self.cost_totals.finalize().total_dollars

    def shard_stats(self) -> list[dict]:
        """Per-shard accounting rows (routing, shedding, cache liveness)."""
        return [
            {
                "shard": index,
                "active": index in self._active,
                "routed": self.routed_counts[index],
                "shed": shard.shed_requests,
                "degraded": shard.degraded_requests,
                "requeued": shard.requeued_requests,
                "cached_bytes": shard.flstore.cluster.owned_cached_bytes,
                "live_keys": shard.flstore.cluster.owned_live_key_count,
                "replica_bytes": shard.flstore.cluster.replica_cached_bytes,
                "replica_keys": shard.flstore.cluster.replica_live_key_count,
                "warm_functions": shard.flstore.warm_function_count,
            }
            for index, shard in enumerate(self.shards)
        ]
