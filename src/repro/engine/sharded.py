"""A routed, sharded serving tier behind one front door.

:class:`ShardedEngineFLStore` owns N independent ``FLStore`` +
:class:`~repro.engine.flstore.EngineFLStore` shards running on **one shared
event loop** (a single virtual timeline), routes every request to a shard by
its data-affinity key (:mod:`repro.routing`), and aggregates the results:
per-request :class:`~repro.engine.flstore.EngineOutcome` rows in global
completion order, running latency/cost accumulators, queue-depth profiles
merged across shards, and cache-liveness accounting (cached bytes, live
keys, warm functions) summed over the tier.

Each shard keeps its own admission controller
(``ServerlessConfig.max_queue_depth`` / ``shed_policy``), so overload on a
hot shard sheds or degrades only that shard's arrivals while cold shards
keep serving — the scaling behaviour ``repro.cli run-shard-sweep`` measures.

Design invariant (enforced by ``tests/test_sharded.py``): a one-shard tier
with unbounded queues is *byte-identical* to a plain ``EngineFLStore`` —
same per-request rows, same report — because the front door delegates to the
same submission path and builds its report through the same
:func:`~repro.engine.flstore.build_load_report` code.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.flstore import FLStore, ServeResult, build_default_flstore
from repro.engine.flstore import (
    EngineFLStore,
    EngineOutcome,
    LoadReport,
    build_load_report,
)
from repro.engine.kernel import EventLoop, SimTask
from repro.routing import ShardRouter, make_router
from repro.serverless.faults import ZipfianFaultInjector
from repro.simulation.records import CostAccumulator, LatencyAccumulator
from repro.workloads.base import WorkloadRequest


def merge_depth_samples(
    per_shard: Sequence[Sequence[tuple[float, int]]],
) -> list[tuple[float, int]]:
    """Merge per-shard queue-depth samples into one fleet-wide profile.

    Each shard records ``(time, waiting)`` samples of its own queue; the
    fleet-wide depth at any instant is the sum of the shards' last-seen
    depths.  Same-time samples merge in (position, shard) order, which is
    deterministic and collapses to the identity for a single shard.
    """
    if len(per_shard) == 1:
        return list(per_shard[0])
    events: list[tuple[float, int, int, int]] = []
    for shard_index, samples in enumerate(per_shard):
        for position, (time_point, depth) in enumerate(samples):
            events.append((time_point, position, shard_index, depth))
    events.sort()
    current = [0] * len(per_shard)
    merged: list[tuple[float, int]] = []
    for time_point, _, shard_index, depth in events:
        current[shard_index] = depth
        merged.append((time_point, sum(current)))
    return merged


class ShardedEngineFLStore:
    """Routing front door over N independent engine-backed FLStore shards.

    Parameters
    ----------
    flstores:
        The analytic shard cores, one per shard.  Every shard ingests the
        full round stream (each is a complete store), so any shard *can*
        serve any request; the router partitions the request stream for
        cache affinity and parallel capacity, not for data availability.
    router:
        Key-to-shard placement (defaults to a consistent-hash ring over the
        shard count).
    loop:
        Shared event loop; all shards schedule on one virtual timeline.
    fault_injectors:
        Optional per-shard reclamation samplers.
    max_queue_depth / shed_policy:
        Per-shard admission-control overrides (default: each shard's
        ``config.serverless`` values).
    """

    system_name = "sharded-engine-flstore"

    def __init__(
        self,
        flstores: Sequence[FLStore],
        router: ShardRouter | None = None,
        loop: EventLoop | None = None,
        fault_injectors: Sequence[ZipfianFaultInjector | None] | None = None,
        reclamation_interval_seconds: float = 60.0,
        max_queue_depth: int | None = None,
        shed_policy: str | None = None,
    ) -> None:
        flstores = list(flstores)
        if not flstores:
            raise ValueError("a sharded tier needs at least one shard")
        self.loop = loop or EventLoop()
        self.router = router or make_router("consistent-hash", len(flstores))
        if self.router.num_shards != len(flstores):
            raise ValueError(
                f"router covers {self.router.num_shards} shards "
                f"but {len(flstores)} were provided"
            )
        injectors = list(fault_injectors) if fault_injectors is not None else [None] * len(flstores)
        if len(injectors) != len(flstores):
            raise ValueError("fault_injectors must match the shard count")
        self.shards = [
            EngineFLStore(
                flstore,
                loop=self.loop,
                fault_injector=injector,
                reclamation_interval_seconds=reclamation_interval_seconds,
                max_queue_depth=max_queue_depth,
                shed_policy=shed_policy,
            )
            for flstore, injector in zip(flstores, injectors)
        ]
        self.routed_counts = [0] * len(self.shards)
        #: Running latency/cost totals over every completed request (all
        #: dispositions), aggregated across shards as outcomes resolve.
        self.latency_totals = LatencyAccumulator()
        self.cost_totals = CostAccumulator()
        self._completed: list[EngineOutcome] = []

    @classmethod
    def build(
        cls,
        num_shards: int,
        config=None,
        policy_mode: str = "tailored",
        router: ShardRouter | None = None,
        router_kind: str = "consistent-hash",
        **kwargs,
    ) -> "ShardedEngineFLStore":
        """Build ``num_shards`` fresh analytic shards behind one front door."""
        flstores = [build_default_flstore(config, policy_mode=policy_mode) for _ in range(num_shards)]
        return cls(flstores, router=router or make_router(router_kind, num_shards), **kwargs)

    # --------------------------------------------------------- passthroughs

    @property
    def num_shards(self) -> int:
        """Number of shards behind the front door."""
        return len(self.shards)

    @property
    def catalog(self):
        """The round catalog (identical across shards; shard 0's instance)."""
        return self.shards[0].catalog

    @property
    def config(self):
        """The simulation configuration (identical across shards)."""
        return self.shards[0].config

    def ingest_round(self, record) -> list:
        """Broadcast a training round into every shard (full replication)."""
        return [shard.ingest_round(record) for shard in self.shards]

    # ------------------------------------------------------------ submission

    def submit(self, request: WorkloadRequest, at: float, priority: float = 0.0) -> SimTask:
        """Route ``request`` to its shard and schedule it to arrive at ``at``."""
        shard_index = self.router.route_request(request)
        self.routed_counts[shard_index] += 1
        task = self.shards[shard_index].submit(request, at=at, priority=priority)
        task.add_done_callback(self._collect)
        return task

    def _collect(self, outcome: EngineOutcome) -> None:
        """Aggregate one resolved outcome (fires in global completion order)."""
        self._completed.append(outcome)
        self.latency_totals.add(outcome.result.latency)
        self.cost_totals.add(outcome.result.cost)

    # ------------------------------------------------------------ run modes

    def run_closed_loop(self, requests: Iterable[WorkloadRequest]) -> list[ServeResult]:
        """Serve ``requests`` sequentially through the routed tier."""
        results: list[ServeResult] = []
        for request in requests:
            task = self.submit(request, at=self.loop.now)
            self.loop.run()
            results.append(task.result.result)
        return results

    def run_open_loop(
        self,
        requests: Sequence[WorkloadRequest],
        arrival_times: Sequence[float],
        priorities: Sequence[float] | None = None,
        label: str = "open-loop",
        keepalive: bool = False,
        slo_seconds: float | None = None,
    ) -> LoadReport:
        """Serve ``requests`` open-loop across the tier; report fleet metrics.

        Mirrors :meth:`EngineFLStore.run_open_loop`: arrival times are
        relative to the run start, per-run counters are reported per run,
        and the report aggregates outcomes in global completion order with
        queue-depth profiles merged across shards.
        """
        if len(requests) != len(arrival_times):
            raise ValueError("requests and arrival_times must have the same length")
        base = self.loop.now
        absolute_times = [base + float(at) for at in arrival_times]
        start_count = len(self._completed)
        pings_before = self.keepalive_pings
        reclamations_before = self.reclamations
        for shard in self.shards:
            shard._depth_samples = []
        for index, (request, at) in enumerate(zip(requests, absolute_times)):
            priority = priorities[index] if priorities is not None else 0.0
            self.submit(request, at=at, priority=priority)
        if keepalive:
            for shard in self.shards:
                shard.schedule_keepalive()
        for shard in self.shards:
            shard.schedule_reclamations()
        self.loop.run()
        outcomes = self._completed[start_count:]
        return build_load_report(
            outcomes,
            absolute_times,
            label,
            depth_samples=merge_depth_samples([shard._depth_samples for shard in self.shards]),
            keepalive_pings=self.keepalive_pings - pings_before,
            reclamations=self.reclamations - reclamations_before,
            slo_seconds=slo_seconds,
        )

    # ------------------------------------------------- aggregate accounting

    @property
    def keepalive_pings(self) -> int:
        """Keep-alive pings fired across every shard."""
        return sum(shard.keepalive_pings for shard in self.shards)

    @property
    def reclamations(self) -> int:
        """Provider reclamations sampled across every shard."""
        return sum(shard.reclamations for shard in self.shards)

    @property
    def shed_requests(self) -> int:
        """Requests dropped by admission control across every shard."""
        return sum(shard.shed_requests for shard in self.shards)

    @property
    def degraded_requests(self) -> int:
        """Requests degraded to the object-store path across every shard."""
        return sum(shard.degraded_requests for shard in self.shards)

    @property
    def requeued_requests(self) -> int:
        """Waiters drained by reclamations across every shard."""
        return sum(shard.requeued_requests for shard in self.shards)

    @property
    def cached_bytes(self) -> int:
        """Bytes of FL metadata resident across every shard's cache."""
        return sum(shard.flstore.cached_bytes for shard in self.shards)

    @property
    def live_key_count(self) -> int:
        """Keys with a live cached copy, summed over the tier."""
        return sum(shard.flstore.cluster.live_key_count for shard in self.shards)

    @property
    def warm_function_count(self) -> int:
        """Warm serverless functions backing the tier."""
        return sum(shard.flstore.warm_function_count for shard in self.shards)

    @property
    def total_latency_seconds(self) -> float:
        """Accumulated request latency across the tier (all dispositions)."""
        return self.latency_totals.total_seconds

    @property
    def total_cost_dollars(self) -> float:
        """Accumulated request cost across the tier (all dispositions)."""
        return self.cost_totals.finalize().total_dollars

    def shard_stats(self) -> list[dict]:
        """Per-shard accounting rows (routing, shedding, cache liveness)."""
        return [
            {
                "shard": index,
                "routed": self.routed_counts[index],
                "shed": shard.shed_requests,
                "degraded": shard.degraded_requests,
                "requeued": shard.requeued_requests,
                "cached_bytes": shard.flstore.cached_bytes,
                "live_keys": shard.flstore.cluster.live_key_count,
                "warm_functions": shard.flstore.warm_function_count,
            }
            for index, shard in enumerate(self.shards)
        ]
