"""The serverless cache: disaggregated function memories holding FL metadata.

This is the co-located compute & data plane of Figure 5.  Objects are placed
into warm serverless functions at client-model granularity (each function
holds at least one client model, Section 4.2), optionally replicated onto
``k`` secondary functions for fault tolerance (Section 4.5), and non-training
computations execute directly on the functions that hold the data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import CapacityError, DataNotFoundError
from repro.config import ServerlessConfig
from repro.fl.keys import DataKey
from repro.serverless.function import ServerlessFunction
from repro.serverless.platform import ServerlessPlatform
from repro.simulation.records import LatencyBreakdown, OperationResult


@dataclass
class PlacementResult:
    """Outcome of placing one object into the serverless cache."""

    key: DataKey
    primary_function_id: str
    replica_function_ids: list[str] = field(default_factory=list)
    #: Cold-start latency incurred if new functions had to be spawned.
    latency: LatencyBreakdown = field(default_factory=LatencyBreakdown)


@dataclass
class ResolveResult:
    """Outcome of resolving a key to a live function."""

    key: DataKey
    function_id: str | None
    #: Whether the primary copy was lost and a replica answered instead.
    failed_over: bool = False

    @property
    def is_hit(self) -> bool:
        """Whether any live copy of the object exists in the cache."""
        return self.function_id is not None


class ServerlessCacheCluster:
    """Places, replicates, resolves, and evicts cached FL metadata objects."""

    def __init__(
        self,
        platform: ServerlessPlatform,
        config: ServerlessConfig | None = None,
        replication_factor: int | None = None,
    ) -> None:
        self.platform = platform
        self.config = config or platform.config
        self.replication_factor = (
            self.config.replication_factor if replication_factor is None else replication_factor
        )
        self._primary: dict[DataKey, str] = {}
        self._replicas: dict[DataKey, list[str]] = {}
        self._sizes: dict[DataKey, int] = {}

    # ------------------------------------------------------------- placement

    def _spawn(self, size_bytes: int) -> tuple[ServerlessFunction, LatencyBreakdown]:
        memory = self.config.default_function_memory_bytes
        if size_bytes > memory:
            memory = min(self.config.max_function_memory_bytes, size_bytes * 2)
        if size_bytes > memory:
            raise CapacityError(
                f"object of {size_bytes} bytes exceeds the maximum function memory "
                f"of {self.config.max_function_memory_bytes} bytes"
            )
        function, result = self.platform.spawn_function(memory_bytes=memory)
        return function, result.latency

    def _find_host(self, size_bytes: int, exclude: set[str]) -> tuple[ServerlessFunction, LatencyBreakdown]:
        """Find (or spawn) a warm function that can hold ``size_bytes``."""
        candidates = [
            f
            for f in self.platform.warm_functions()
            if f.function_id not in exclude and f.can_fit(size_bytes)
        ]
        if candidates:
            # Best-fit keeps the number of warm functions (and thus keep-alive
            # cost) low, mirroring the paper's "only two Lambda functions"
            # footprint argument in Section 4.4.
            best = min(candidates, key=lambda f: f.free_bytes)
            return best, LatencyBreakdown.zero()
        return self._spawn(size_bytes)

    def place(self, key: DataKey, value: Any, size_bytes: int, now: float = 0.0) -> PlacementResult:
        """Cache ``value`` under ``key`` on a primary function plus replicas."""
        latency = LatencyBreakdown.zero()
        if key in self._primary:
            self.evict(key)
        exclude: set[str] = set()
        primary, spawn_latency = self._find_host(size_bytes, exclude)
        latency = latency + spawn_latency
        primary.store(key, value, now=now, size_bytes=size_bytes)
        exclude.add(primary.function_id)

        replicas: list[str] = []
        for _ in range(self.replication_factor):
            try:
                replica, spawn_latency = self._find_host(size_bytes, exclude)
            except (CapacityError, RuntimeError):
                break
            latency = latency + spawn_latency
            replica.store(key, value, now=now, size_bytes=size_bytes)
            replicas.append(replica.function_id)
            exclude.add(replica.function_id)

        self._primary[key] = primary.function_id
        self._replicas[key] = replicas
        self._sizes[key] = size_bytes
        return PlacementResult(
            key=key,
            primary_function_id=primary.function_id,
            replica_function_ids=replicas,
            latency=latency,
        )

    # ------------------------------------------------------------ resolution

    def resolve(self, key: DataKey) -> ResolveResult:
        """Find a live function holding ``key``, failing over to replicas if needed."""
        primary_id = self._primary.get(key)
        if primary_id is None:
            return ResolveResult(key=key, function_id=None)
        primary = self.platform.get_function(primary_id)
        if primary.is_warm and primary.holds(key):
            return ResolveResult(key=key, function_id=primary_id)
        for replica_id in self._replicas.get(key, []):
            replica = self.platform.get_function(replica_id)
            if replica.is_warm and replica.holds(key):
                return ResolveResult(key=key, function_id=replica_id, failed_over=True)
        return ResolveResult(key=key, function_id=None, failed_over=True)

    def contains(self, key: DataKey) -> bool:
        """Whether a live copy of ``key`` exists in the cache."""
        return self.resolve(key).is_hit

    def get_object(self, key: DataKey) -> Any:
        """Return the cached object under ``key`` from any live copy."""
        resolved = self.resolve(key)
        if not resolved.is_hit:
            raise DataNotFoundError(key, "serverless cache")
        return self.platform.get_function(resolved.function_id).load(key)

    # --------------------------------------------------------------- eviction

    def evict(self, key: DataKey) -> bool:
        """Remove every copy of ``key``; returns whether anything was removed."""
        removed = False
        for function_id in [self._primary.get(key), *self._replicas.get(key, [])]:
            if function_id is None:
                continue
            function = self.platform.get_function(function_id)
            if function.is_warm:
                removed = function.evict(key) or removed
        self._primary.pop(key, None)
        self._replicas.pop(key, None)
        self._sizes.pop(key, None)
        return removed

    def drop_lost_keys(self) -> list[DataKey]:
        """Forget keys whose every copy was lost to reclamation; returns them."""
        lost = [key for key in list(self._primary) if not self.resolve(key).is_hit]
        for key in lost:
            self._primary.pop(key, None)
            self._replicas.pop(key, None)
            self._sizes.pop(key, None)
        return lost

    # ------------------------------------------------------------ inspection

    def cached_keys(self) -> list[DataKey]:
        """Every key with at least one live copy."""
        return [key for key in self._primary if self.resolve(key).is_hit]

    def cached_sizes(self) -> dict[DataKey, int]:
        """``key -> size`` for every key tracked by the cluster."""
        return dict(self._sizes)

    @property
    def total_cached_bytes(self) -> int:
        """Logical bytes of primary copies tracked by the cluster."""
        return sum(self._sizes.values())

    def primary_function_of(self, key: DataKey) -> str | None:
        """Primary placement of ``key`` (even if currently reclaimed)."""
        return self._primary.get(key)

    def function_ids(self) -> list[str]:
        """Identifiers of every warm function managed by the platform."""
        return [f.function_id for f in self.platform.warm_functions()]

    def pick_execution_function(self, keys: list[DataKey]) -> str | None:
        """The warm function holding the largest share of ``keys``' bytes."""
        tally: dict[str, int] = {}
        for key in keys:
            resolved = self.resolve(key)
            if resolved.is_hit:
                tally[resolved.function_id] = tally.get(resolved.function_id, 0) + self._sizes.get(key, 0)
        if not tally:
            return None
        return max(tally, key=tally.get)
