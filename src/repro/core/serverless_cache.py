"""The serverless cache: disaggregated function memories holding FL metadata.

This is the co-located compute & data plane of Figure 5.  Objects are placed
into warm serverless functions at client-model granularity (each function
holds at least one client model, Section 4.2), optionally replicated onto
``k`` secondary functions for fault tolerance (Section 4.5), and non-training
computations execute directly on the functions that hold the data.

Resolution is served from an incrementally maintained *liveness index*:
placement and eviction update the index directly, and the platform notifies
the cluster when a function is reclaimed (see
:meth:`repro.serverless.platform.ServerlessPlatform.add_reclamation_listener`),
so :meth:`ServerlessCacheCluster.resolve`, :meth:`is_live`, and
:attr:`total_cached_bytes` are O(1) and reclamation/failover work is
O(affected keys) instead of O(tracked keys).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.common.errors import CapacityError, DataNotFoundError
from repro.config import ServerlessConfig
from repro.fl.keys import DataKey
from repro.serverless.function import FunctionState, ServerlessFunction
from repro.serverless.platform import ServerlessPlatform
from repro.simulation.records import LatencyBreakdown

#: Module-level alias: avoids an enum descriptor lookup per eviction check.
_FUNCTION_WARM = FunctionState.WARM


@dataclass
class PlacementResult:
    """Outcome of placing one object into the serverless cache."""

    key: DataKey
    primary_function_id: str
    replica_function_ids: list[str] = field(default_factory=list)
    #: Cold-start latency incurred if new functions had to be spawned.
    latency: LatencyBreakdown = field(default_factory=LatencyBreakdown)


@dataclass(slots=True)
class ResolveResult:
    """Outcome of resolving a key to a live function."""

    key: DataKey
    function_id: str | None
    #: Whether the primary copy was lost and a replica answered instead.
    failed_over: bool = False

    @property
    def is_hit(self) -> bool:
        """Whether any live copy of the object exists in the cache."""
        return self.function_id is not None


#: Shared additive identity: placements that reuse a warm function incur no
#: latency, so the zero breakdown is handed out as a singleton (it is frozen).
_ZERO_LATENCY = LatencyBreakdown()

#: Best-fit sort key.  Best-fit keeps the number of warm functions (and thus
#: keep-alive cost) low, mirroring the paper's "only two Lambda functions"
#: footprint argument in Section 4.4.
_free_bytes_of = operator.attrgetter("free_bytes")


class ServerlessCacheCluster:
    """Places, replicates, resolves, and evicts cached FL metadata objects."""

    def __init__(
        self,
        platform: ServerlessPlatform,
        config: ServerlessConfig | None = None,
        replication_factor: int | None = None,
    ) -> None:
        self.platform = platform
        self.config = config or platform.config
        self.replication_factor = (
            self.config.replication_factor if replication_factor is None else replication_factor
        )
        self._primary: dict[DataKey, str] = {}
        self._replicas: dict[DataKey, list[str]] = {}
        self._sizes: dict[DataKey, int] = {}
        # ---- liveness index ------------------------------------------------
        #: Function ids still holding a live copy of each tracked key.
        self._live_copies: dict[DataKey, set[str]] = {}
        #: Currently serving function per tracked key (primary while it lives,
        #: else the first live replica in placement order, else ``None``).
        self._holder: dict[DataKey, str | None] = {}
        #: Reverse map: function id -> keys with a live copy on it.
        self._function_keys: dict[str, set[DataKey]] = {}
        #: Keys whose every copy was lost (in loss order), pending drop.
        self._lost: dict[DataKey, None] = {}
        #: Running sum of ``self._sizes`` values.
        self._tracked_bytes: int = 0
        # ---- tier-replica accounting --------------------------------------
        #: Keys this cluster holds as *tier replicas*: read-only copies of
        #: data owned by another shard (hot-key replication / warm joins).
        #: Distinct from the within-shard function replicas above — a tier
        #: replica is a whole extra cached copy on another shard's cluster,
        #: so fleet-wide byte accounting must not count it as owned data.
        self._tier_replicas: set[DataKey] = set()
        #: Running sum of ``self._sizes`` over ``self._tier_replicas``.
        self._replica_bytes: int = 0
        platform.add_reclamation_listener(self._on_function_reclaimed)

    # ------------------------------------------------------------- placement

    def _spawn(self, size_bytes: int) -> tuple[ServerlessFunction, LatencyBreakdown]:
        memory = self.config.default_function_memory_bytes
        if size_bytes > memory:
            memory = min(self.config.max_function_memory_bytes, size_bytes * 2)
        if size_bytes > memory:
            raise CapacityError(
                f"object of {size_bytes} bytes exceeds the maximum function memory "
                f"of {self.config.max_function_memory_bytes} bytes"
            )
        function, result = self.platform.spawn_function(memory_bytes=memory)
        return function, result.latency

    def _index_placement(self, key: DataKey, primary_id: str, replica_ids: list[str]) -> None:
        copies = {primary_id, *replica_ids} if replica_ids else {primary_id}
        self._live_copies[key] = copies
        self._holder[key] = primary_id
        function_keys = self._function_keys
        for function_id in copies:
            keys = function_keys.get(function_id)
            if keys is None:
                function_keys[function_id] = {key}
            else:
                keys.add(key)

    def place(
        self,
        key: DataKey,
        value: Any,
        size_bytes: int,
        now: float = 0.0,
        tier_replica: bool = False,
    ) -> PlacementResult:
        """Cache ``value`` under ``key`` on a primary function plus replicas.

        ``tier_replica`` marks the copy as replicated-in from another shard:
        it is excluded from :attr:`owned_cached_bytes` /
        :attr:`owned_live_key_count` so fleet-wide sums never double-count,
        and :meth:`is_live` can be asked to ignore it.  Re-placing the key
        without the flag promotes it to an owned copy.
        """
        # Spawns (and thus nonzero latencies) are rare; summing only the
        # nonzero breakdowns is exact (adding a zero breakdown is a float
        # no-op) and skips an accumulator allocation per placement.
        latency = _ZERO_LATENCY
        if key in self._primary:
            self.evict(key)

        # One scan selects every host.  Sequential best-fit (scan, pick the
        # fullest fitting function, exclude it, rescan) is equivalent to
        # taking fitting functions in ascending free-space order, because
        # storing on a chosen host never changes the other candidates'
        # occupancy — so the k+1 copies come from a single sorted scan.
        copies_needed = self.replication_factor + 1
        hosts = [f for f in self.platform.warm_functions() if f.free_bytes >= size_bytes]
        if len(hosts) > 1:
            if copies_needed == 1:
                hosts = [min(hosts, key=_free_bytes_of)]
            else:
                # Stable sort: ties keep platform (spawn) order, matching the
                # sequential scan's first-minimal choice.
                hosts.sort(key=_free_bytes_of)
        del hosts[copies_needed:]

        if hosts:
            primary = hosts[0]
            next_host = 1
        else:
            primary, spawn_latency = self._spawn(size_bytes)
            latency = latency + spawn_latency
            next_host = 0
        primary.store(key, value, now=now, size_bytes=size_bytes)

        replicas: list[str] = []
        for _ in range(self.replication_factor):
            if next_host < len(hosts):
                replica = hosts[next_host]
                next_host += 1
            else:
                try:
                    replica, spawn_latency = self._spawn(size_bytes)
                except (CapacityError, RuntimeError):
                    break
                latency = latency + spawn_latency
            replica.store(key, value, now=now, size_bytes=size_bytes)
            replicas.append(replica.function_id)

        self._primary[key] = primary.function_id
        self._replicas[key] = replicas
        self._sizes[key] = size_bytes
        self._tracked_bytes += size_bytes
        if tier_replica:
            self._tier_replicas.add(key)
            self._replica_bytes += size_bytes
        self._index_placement(key, primary.function_id, replicas)
        return PlacementResult(
            key=key,
            primary_function_id=primary.function_id,
            replica_function_ids=replicas,
            latency=latency,
        )

    # --------------------------------------------------- reclamation events

    def _on_function_reclaimed(self, function_id: str) -> None:
        """Invalidate index entries for every key the reclaimed function held."""
        keys = self._function_keys.pop(function_id, None)
        if not keys:
            return
        for key in keys:
            copies = self._live_copies.get(key)
            if copies is None:
                continue
            copies.discard(function_id)
            if self._holder.get(key) != function_id:
                continue
            holder = self._next_holder(key, copies)
            self._holder[key] = holder
            if holder is None:
                self._lost[key] = None

    def _next_holder(self, key: DataKey, copies: set[str]) -> str | None:
        """First live copy in failover order (primary, then replicas in order)."""
        primary_id = self._primary.get(key)
        if primary_id in copies:
            return primary_id
        for replica_id in self._replicas.get(key, []):
            if replica_id in copies:
                return replica_id
        return None

    # ------------------------------------------------------------ resolution

    def resolve(self, key: DataKey) -> ResolveResult:
        """Find a live function holding ``key``, failing over to replicas if needed."""
        primary_id = self._primary.get(key)
        if primary_id is None:
            return ResolveResult(key=key, function_id=None)
        holder = self._holder.get(key)
        if holder is None:
            return ResolveResult(key=key, function_id=None, failed_over=True)
        return ResolveResult(key=key, function_id=holder, failed_over=holder != primary_id)

    def resolve_many(self, keys: Iterable[DataKey]) -> dict[DataKey, ResolveResult]:
        """Resolve a batch of keys in one pass over the liveness index.

        The request path resolves every required key once and reuses the
        returned map for gathering, failover accounting, and execution-function
        picking (:meth:`pick_execution_function` accepts it as a hint).
        """
        resolved: dict[DataKey, ResolveResult] = {}
        primary_get = self._primary.get
        holder_get = self._holder.get
        for key in keys:
            # Duplicate keys simply recompute the same entry; state does not
            # change inside the batch, so no dedup check is needed.
            primary_id = primary_get(key)
            if primary_id is None:
                resolved[key] = ResolveResult(key, None)
                continue
            holder = holder_get(key)
            if holder is None:
                resolved[key] = ResolveResult(key, None, True)
            else:
                resolved[key] = ResolveResult(key, holder, holder != primary_id)
        return resolved

    def is_live(self, key: DataKey, include_replicas: bool = True) -> bool:
        """Whether a live copy of ``key`` exists (no result object allocated).

        With ``include_replicas=False``, a key held only as a tier replica
        reports not-live — the shape ownership checks want when deciding
        whether *this* shard owns the data or merely mirrors it.
        """
        if self._holder.get(key) is None:
            return False
        return include_replicas or key not in self._tier_replicas

    def is_tier_replica(self, key: DataKey) -> bool:
        """Whether ``key`` is held as a tier replica (replicated-in copy)."""
        return key in self._tier_replicas

    def contains(self, key: DataKey) -> bool:
        """Whether a live copy of ``key`` exists in the cache (alias of :meth:`is_live`)."""
        return self.is_live(key)

    def get_object(self, key: DataKey) -> Any:
        """Return the cached object under ``key`` from any live copy."""
        holder = self._holder.get(key)
        if holder is None:
            raise DataNotFoundError(key, "serverless cache")
        return self.platform.get_function(holder).load(key)

    # --------------------------------------------------------------- eviction

    def evict(self, key: DataKey) -> bool:
        """Remove every copy of ``key``; returns whether anything was removed."""
        primary_id = self._primary.get(key)
        if primary_id is None:
            # Untracked keys have no state anywhere (the maps are updated
            # together), so eviction plans naming them are a cheap no-op.
            return False
        removed = self._evict_copy(key, primary_id)
        for replica_id in self._replicas.get(key, ()):
            removed = self._evict_copy(key, replica_id) or removed
        self._forget(key)
        return removed

    def _evict_copy(self, key: DataKey, function_id: str) -> bool:
        """Drop one copy of ``key`` from ``function_id`` and the reverse map."""
        function = self.platform.get_function(function_id)
        removed = function.state is _FUNCTION_WARM and function.evict(key)
        keys = self._function_keys.get(function_id)
        if keys is not None:
            keys.discard(key)
        return removed

    def _forget(self, key: DataKey) -> None:
        """Drop every record of ``key`` from the maps and the liveness index."""
        if self._primary.pop(key, None) is not None:
            self._tracked_bytes -= self._sizes.get(key, 0)
        if key in self._tier_replicas:
            self._tier_replicas.discard(key)
            self._replica_bytes -= self._sizes.get(key, 0)
        self._replicas.pop(key, None)
        self._sizes.pop(key, None)
        self._live_copies.pop(key, None)
        self._holder.pop(key, None)
        self._lost.pop(key, None)

    def drop_lost_keys(self) -> list[DataKey]:
        """Forget keys whose every copy was lost to reclamation; returns them.

        The liveness index records losses as reclamation events arrive, so
        this is O(lost keys) rather than a re-resolve of every tracked key.
        """
        lost = list(self._lost)
        for key in lost:
            self._forget(key)
        return lost

    # ------------------------------------------------------------ inspection

    def cached_keys(self) -> list[DataKey]:
        """Every key with at least one live copy."""
        holders = self._holder
        return [key for key in self._primary if holders.get(key) is not None]

    def cached_sizes(self) -> dict[DataKey, int]:
        """``key -> size`` for every key tracked by the cluster."""
        return dict(self._sizes)

    def sizes_view(self) -> Mapping[DataKey, int]:
        """Read-only live view of the tracked sizes (no copy; do not mutate)."""
        return self._sizes

    @property
    def total_cached_bytes(self) -> int:
        """Logical bytes of primary copies tracked by the cluster."""
        return self._tracked_bytes

    @property
    def replica_cached_bytes(self) -> int:
        """Bytes held as tier replicas (copies of data owned elsewhere)."""
        return self._replica_bytes

    @property
    def owned_cached_bytes(self) -> int:
        """Bytes this cluster owns outright (tier replicas excluded).

        Fleet-wide sums use this so a key replicated onto R shards still
        counts its bytes exactly once — on the owning shard.
        """
        return self._tracked_bytes - self._replica_bytes

    @property
    def live_key_count(self) -> int:
        """Number of keys with at least one live cached copy.

        Lost keys linger in the index (with zero live copies) until
        :meth:`drop_lost_keys` collects them, so this counts non-empty
        entries rather than index size.
        """
        return sum(1 for copies in self._live_copies.values() if copies)

    @property
    def owned_live_key_count(self) -> int:
        """Live keys this cluster owns (tier replicas excluded)."""
        replicas = self._tier_replicas
        return sum(1 for key, copies in self._live_copies.items() if copies and key not in replicas)

    @property
    def replica_live_key_count(self) -> int:
        """Live keys this cluster holds only as tier replicas."""
        replicas = self._tier_replicas
        return sum(1 for key, copies in self._live_copies.items() if copies and key in replicas)

    def primary_function_of(self, key: DataKey) -> str | None:
        """Primary placement of ``key`` (even if currently reclaimed)."""
        return self._primary.get(key)

    def function_ids(self) -> list[str]:
        """Identifiers of every warm function managed by the platform."""
        return [f.function_id for f in self.platform.warm_functions()]

    def pick_execution_function(
        self,
        keys: list[DataKey],
        resolved: Mapping[DataKey, ResolveResult] | None = None,
    ) -> str | None:
        """The warm function holding the largest share of ``keys``' bytes.

        ``resolved`` lets the request path reuse a :meth:`resolve_many` map
        taken after the gather phase instead of re-resolving every key.
        """
        tally: dict[str, int] = {}
        sizes = self._sizes
        holders = self._holder
        for key in keys:
            if resolved is not None:
                entry = resolved.get(key)
                holder = entry.function_id if entry is not None else None
            else:
                holder = holders.get(key)
            if holder is not None:
                tally[holder] = tally.get(holder, 0) + sizes.get(key, 0)
        if not tally:
            return None
        return max(tally, key=tally.get)
