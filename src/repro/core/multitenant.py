"""Multi-tenant FLStore (Appendix A of the paper).

The serverless paradigm isolates functions per invocation, so one FLStore
deployment can host an isolated cache per user/FL-job ("tenant"), each with
its own caching-policy configuration, while sharing nothing but the physical
platform abstraction.  :class:`MultiTenantFLStore` manages one
:class:`~repro.core.flstore.FLStore` instance per tenant and routes ingestion
and requests by tenant id.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SimulationConfig
from repro.core.flstore import FLStore, ServeResult, build_default_flstore
from repro.fl.rounds import RoundRecord
from repro.simulation.records import CostBreakdown
from repro.workloads.base import WorkloadRequest


@dataclass
class TenantHandle:
    """Bookkeeping for one tenant's isolated FLStore instance."""

    tenant_id: str
    flstore: FLStore
    policy_mode: str = "tailored"
    rounds_ingested: int = 0
    requests_served: int = 0


class MultiTenantFLStore:
    """Hosts several isolated FLStore caches, one per tenant.

    Parameters
    ----------
    default_config:
        Configuration used for tenants registered without an explicit one.
    """

    def __init__(self, default_config: SimulationConfig | None = None) -> None:
        self.default_config = default_config or SimulationConfig()
        self._tenants: dict[str, TenantHandle] = {}

    # ------------------------------------------------------------ lifecycle

    def register_tenant(
        self,
        tenant_id: str,
        config: SimulationConfig | None = None,
        policy_mode: str = "tailored",
    ) -> TenantHandle:
        """Create an isolated FLStore for ``tenant_id``.

        Raises
        ------
        ValueError
            If the tenant is already registered.
        """
        if tenant_id in self._tenants:
            raise ValueError(f"tenant {tenant_id!r} is already registered")
        flstore = build_default_flstore(config or self.default_config, policy_mode=policy_mode)
        handle = TenantHandle(tenant_id=tenant_id, flstore=flstore, policy_mode=policy_mode)
        self._tenants[tenant_id] = handle
        return handle

    def remove_tenant(self, tenant_id: str) -> bool:
        """Drop a tenant and its cache; returns whether it existed."""
        return self._tenants.pop(tenant_id, None) is not None

    def tenant(self, tenant_id: str) -> TenantHandle:
        """Return the handle of ``tenant_id``."""
        try:
            return self._tenants[tenant_id]
        except KeyError as exc:
            raise KeyError(f"tenant {tenant_id!r} is not registered") from exc

    def tenants(self) -> list[str]:
        """Identifiers of every registered tenant."""
        return sorted(self._tenants)

    def __len__(self) -> int:
        return len(self._tenants)

    # ------------------------------------------------------------ data path

    def ingest_round(self, tenant_id: str, record: RoundRecord, now: float | None = None) -> None:
        """Ingest a training round into ``tenant_id``'s cache only.

        ``now`` (optional) advances the tenant's virtual clock to the wall
        time of the ingestion before it runs.
        """
        handle = self.tenant(tenant_id)
        if now is not None:
            handle.flstore.clock.advance_to(now)
        handle.flstore.ingest_round(record)
        handle.rounds_ingested += 1

    def serve(self, tenant_id: str, request: WorkloadRequest, now: float | None = None) -> ServeResult:
        """Serve a non-training request against ``tenant_id``'s cache only.

        ``now`` (optional) is the request's arrival timestamp on a shared
        wall clock: the tenant's own clock advances to it (monotonically —
        a tenant that is already past ``now`` keeps its later time) before
        serving, so interleaved tenants each see a consistent timeline while
        sharing no clock state.
        """
        handle = self.tenant(tenant_id)
        if now is not None:
            handle.flstore.clock.advance_to(now)
        result = handle.flstore.serve(request)
        handle.requests_served += 1
        return result

    # ------------------------------------------------------------ reporting

    def total_cached_bytes(self) -> int:
        """Bytes resident across every tenant's cache."""
        return sum(handle.flstore.cached_bytes for handle in self._tenants.values())

    def standby_cost(self, duration_hours: float) -> CostBreakdown:
        """Keep-alive cost of every tenant's cache for ``duration_hours``."""
        total = CostBreakdown.zero()
        for handle in self._tenants.values():
            total = total + handle.flstore.standby_cost(duration_hours)
        return total

    def usage_report(self) -> list[dict[str, object]]:
        """Per-tenant usage summary (rounds, requests, cache footprint)."""
        return [
            {
                "tenant": handle.tenant_id,
                "policy_mode": handle.policy_mode,
                "rounds_ingested": handle.rounds_ingested,
                "requests_served": handle.requests_served,
                "cached_mb": handle.flstore.cached_bytes / (1024 * 1024),
                "warm_functions": handle.flstore.warm_function_count,
            }
            for handle in sorted(self._tenants.values(), key=lambda h: h.tenant_id)
        ]
