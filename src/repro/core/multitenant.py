"""Multi-tenant FLStore (Appendix A of the paper) — **deprecated**.

The serverless paradigm isolates functions per invocation, so one FLStore
deployment can host an isolated cache per user/FL-job ("tenant"), each with
its own caching-policy configuration, while sharing nothing but the physical
platform abstraction.  :class:`MultiTenantFLStore` manages one
:class:`~repro.core.flstore.FLStore` instance per tenant and routes ingestion
and requests by tenant id.

.. deprecated::
    This module predates the serving engine: its tenants never pass through
    queues, shards, admission control, or the autoscaler, so it cannot
    answer contention questions (noisy neighbours, fair shares, per-tenant
    SLOs).  Tenants are now first-class in the scenario API — declare them
    as :class:`~repro.scenario.spec.TenantSpec` entries on a
    :class:`~repro.scenario.spec.ScenarioSpec` and serve them through
    :func:`repro.scenario.build.run` (or :func:`~repro.scenario.build
    .build_tier`), which tags every request/outcome with its ``tenant_id``
    and reports per-tenant rows.  :meth:`MultiTenantFLStore.scenario_spec`
    converts an existing registration to the replacement spec.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.config import SimulationConfig
from repro.core.flstore import FLStore, ServeResult, build_default_flstore
from repro.fl.rounds import RoundRecord
from repro.simulation.records import CostBreakdown
from repro.workloads.base import WorkloadRequest

_DEPRECATION_MESSAGE = """\
MultiTenantFLStore is deprecated: its tenants bypass the serving tier (no
queues, admission, shards, or autoscaling).  Declare tenants on a scenario
spec instead and serve them through the engine:

    from repro.scenario import ScenarioSpec, TenantSpec, run

    spec = ScenarioSpec(
        name="my-tenants",
        tenants=(
            TenantSpec(name="team-a", utilization=0.5, weight=2.0),
            TenantSpec(name="team-b", arrival="bursty", utilization=1.0),
        ),
    )
    report = run(spec)   # report.tenants has one row per tenant

scenario_spec() on this instance builds the equivalent replacement spec."""


@dataclass
class TenantHandle:
    """Bookkeeping for one tenant's isolated FLStore instance."""

    tenant_id: str
    flstore: FLStore
    policy_mode: str = "tailored"
    rounds_ingested: int = 0
    requests_served: int = 0


class MultiTenantFLStore:
    """Hosts several isolated FLStore caches, one per tenant.

    .. deprecated::
        Use :class:`~repro.scenario.spec.TenantSpec` entries on a
        :class:`~repro.scenario.spec.ScenarioSpec` instead (see the module
        docstring); :meth:`scenario_spec` builds the replacement spec from
        a live registration.  Behaviour of the legacy entry points is
        unchanged.

    Parameters
    ----------
    default_config:
        Configuration used for tenants registered without an explicit one.
    """

    def __init__(self, default_config: SimulationConfig | None = None) -> None:
        warnings.warn(_DEPRECATION_MESSAGE, DeprecationWarning, stacklevel=2)
        self.default_config = default_config or SimulationConfig()
        self._tenants: dict[str, TenantHandle] = {}

    def scenario_spec(self, name: str = "multitenant-flstore"):
        """The replacement :class:`~repro.scenario.spec.ScenarioSpec`.

        One :class:`~repro.scenario.spec.TenantSpec` per registered tenant
        (spec defaults for the knobs this legacy API never had: Poisson
        arrivals, equal weights, the default workload mix), ready for
        :func:`repro.scenario.build.run` — which, unlike this class, runs
        every tenant through queues, admission, and the autoscaler and
        reports per-tenant rows.
        """
        # Imported here: the scenario package builds on the engine layers
        # above this module, so a top-level import would be cyclic.
        from repro.scenario.spec import ScenarioSpec, TenantSpec

        return ScenarioSpec(
            name=name,
            tenants=tuple(TenantSpec(name=tenant_id) for tenant_id in self.tenants()),
        )

    # ------------------------------------------------------------ lifecycle

    def register_tenant(
        self,
        tenant_id: str,
        config: SimulationConfig | None = None,
        policy_mode: str = "tailored",
    ) -> TenantHandle:
        """Create an isolated FLStore for ``tenant_id``.

        Raises
        ------
        ValueError
            If the tenant is already registered.
        """
        if tenant_id in self._tenants:
            raise ValueError(f"tenant {tenant_id!r} is already registered")
        flstore = build_default_flstore(config or self.default_config, policy_mode=policy_mode)
        handle = TenantHandle(tenant_id=tenant_id, flstore=flstore, policy_mode=policy_mode)
        self._tenants[tenant_id] = handle
        return handle

    def remove_tenant(self, tenant_id: str) -> bool:
        """Drop a tenant and its cache; returns whether it existed."""
        return self._tenants.pop(tenant_id, None) is not None

    def tenant(self, tenant_id: str) -> TenantHandle:
        """Return the handle of ``tenant_id``."""
        try:
            return self._tenants[tenant_id]
        except KeyError as exc:
            raise KeyError(f"tenant {tenant_id!r} is not registered") from exc

    def tenants(self) -> list[str]:
        """Identifiers of every registered tenant."""
        return sorted(self._tenants)

    def __len__(self) -> int:
        return len(self._tenants)

    # ------------------------------------------------------------ data path

    def ingest_round(self, tenant_id: str, record: RoundRecord, now: float | None = None) -> None:
        """Ingest a training round into ``tenant_id``'s cache only.

        ``now`` (optional) advances the tenant's virtual clock to the wall
        time of the ingestion before it runs.
        """
        handle = self.tenant(tenant_id)
        if now is not None:
            handle.flstore.clock.advance_to(now)
        handle.flstore.ingest_round(record)
        handle.rounds_ingested += 1

    def serve(self, tenant_id: str, request: WorkloadRequest, now: float | None = None) -> ServeResult:
        """Serve a non-training request against ``tenant_id``'s cache only.

        ``now`` (optional) is the request's arrival timestamp on a shared
        wall clock: the tenant's own clock advances to it (monotonically —
        a tenant that is already past ``now`` keeps its later time) before
        serving, so interleaved tenants each see a consistent timeline while
        sharing no clock state.
        """
        handle = self.tenant(tenant_id)
        if now is not None:
            handle.flstore.clock.advance_to(now)
        result = handle.flstore.serve(request)
        handle.requests_served += 1
        return result

    # ------------------------------------------------------------ reporting

    def total_cached_bytes(self) -> int:
        """Bytes resident across every tenant's cache."""
        return sum(handle.flstore.cached_bytes for handle in self._tenants.values())

    def standby_cost(self, duration_hours: float) -> CostBreakdown:
        """Keep-alive cost of every tenant's cache for ``duration_hours``."""
        total = CostBreakdown.zero()
        for handle in self._tenants.values():
            total = total + handle.flstore.standby_cost(duration_hours)
        return total

    def usage_report(self) -> list[dict[str, object]]:
        """Per-tenant usage summary (rounds, requests, cache footprint)."""
        return [
            {
                "tenant": handle.tenant_id,
                "policy_mode": handle.policy_mode,
                "rounds_ingested": handle.rounds_ingested,
                "requests_served": handle.requests_served,
                "cached_mb": handle.flstore.cached_bytes / (1024 * 1024),
                "warm_functions": handle.flstore.warm_function_count,
            }
            for handle in sorted(self._tenants.values(), key=lambda h: h.tenant_id)
        ]
