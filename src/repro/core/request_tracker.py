"""The Request Tracker (Section 4.3).

Receives non-training requests, records which functions each request was
routed to and whether it has completed, and reroutes requests to secondary
function instances when a primary fails to respond.  Its state is the
``request_id -> ([function_ids], status)`` dictionary described in the paper;
the overhead experiment of Section 5.5 measures the memory footprint of that
dictionary, which :meth:`RequestTracker.memory_overhead_bytes` reports.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field


@dataclass(slots=True)
class TrackedRequest:
    """Tracking entry for one in-flight or completed request."""

    request_id: str
    function_ids: list[str] = field(default_factory=list)
    completed: bool = False
    #: Number of times the request was rerouted to a replica function.
    failovers: int = 0


class RequestTracker:
    """Tracks routing and completion of non-training requests."""

    def __init__(self) -> None:
        self._requests: dict[str, TrackedRequest] = {}

    # --------------------------------------------------------------- tracking

    def submit(self, request_id: str, function_ids: list[str] | None = None) -> TrackedRequest:
        """Register a new request routed to ``function_ids``."""
        requests = self._requests
        if request_id in requests:
            raise ValueError(f"request {request_id!r} is already tracked")
        # Hot path: build the slotted entry directly instead of going
        # through the dataclass __init__ (one submit per served request,
        # 100k+ per component-overhead probe).
        entry = TrackedRequest.__new__(TrackedRequest)
        entry.request_id = request_id
        entry.function_ids = list(function_ids) if function_ids else []
        entry.completed = False
        entry.failovers = 0
        requests[request_id] = entry
        return entry

    def get(self, request_id: str) -> TrackedRequest:
        """Return the tracking entry of ``request_id``."""
        try:
            return self._requests[request_id]
        except KeyError as exc:
            raise KeyError(f"request {request_id!r} is not tracked") from exc

    def add_route(self, request_id: str, function_id: str) -> None:
        """Record that ``request_id`` was (additionally) routed to ``function_id``."""
        entry = self.get(request_id)
        if function_id not in entry.function_ids:
            entry.function_ids.append(function_id)

    def reroute(self, request_id: str, failed_function_id: str, replacement_function_id: str) -> None:
        """Fail a request over from ``failed_function_id`` to ``replacement_function_id``."""
        entry = self.get(request_id)
        if failed_function_id in entry.function_ids:
            entry.function_ids.remove(failed_function_id)
        if replacement_function_id not in entry.function_ids:
            entry.function_ids.append(replacement_function_id)
        entry.failovers += 1

    def complete(self, request_id: str) -> None:
        """Mark ``request_id`` as finished."""
        self.get(request_id).completed = True

    # ------------------------------------------------------------- inspection

    def is_completed(self, request_id: str) -> bool:
        """Whether ``request_id`` has completed."""
        return self.get(request_id).completed

    def pending_requests(self) -> list[str]:
        """Identifiers of every request not yet completed."""
        return [rid for rid, entry in self._requests.items() if not entry.completed]

    def __len__(self) -> int:
        return len(self._requests)

    def __contains__(self, request_id: str) -> bool:
        return request_id in self._requests

    @property
    def total_failovers(self) -> int:
        """Total number of failovers across every tracked request."""
        return sum(entry.failovers for entry in self._requests.values())

    def memory_overhead_bytes(self) -> int:
        """Approximate memory footprint of the tracking dictionary.

        Used by the Section 5.5 overhead experiment; the estimate counts the
        dictionary, its keys, and the per-entry routing lists.
        """
        getsizeof = sys.getsizeof
        total = getsizeof(self._requests)
        # Function ids and small ints repeat across entries, so their sizes
        # are memoized; request ids are unique and measured directly.  The
        # totals are identical to the naive per-value walk.
        fid_sizes: dict[str, int] = {}
        int_sizes: dict[int, int] = {}
        bool_size = getsizeof(True)  # CPython: True and False are the same size
        for request_id, entry in self._requests.items():
            total += getsizeof(request_id)
            total += getsizeof(entry.function_ids)
            for fid in entry.function_ids:
                size = fid_sizes.get(fid)
                if size is None:
                    size = getsizeof(fid)
                    fid_sizes[fid] = size
                total += size
            total += bool_size
            failovers = entry.failovers
            size = int_sizes.get(failovers)
            if size is None:
                size = getsizeof(failovers)
                int_sizes[failovers] = size
            total += size
        return total

    def clear_completed(self) -> int:
        """Drop completed entries (long-running deployments prune periodically)."""
        completed = [rid for rid, entry in self._requests.items() if entry.completed]
        for rid in completed:
            del self._requests[rid]
        return len(completed)
