"""The tailored FLStore caching policies P1-P4 (Table 1, Section 4.4).

Each policy exploits the iterative access pattern of its workload class:

* :class:`SingleModelPolicy` (**P1**) keeps the latest aggregated model warm
  for serving/inference and evicts superseded aggregates.
* :class:`AllUpdatesInRoundPolicy` (**P2**) keeps the latest round's client
  updates warm, prefetches the next round when a request arrives, and evicts
  already-processed rounds (Example 1 of Figure 6).
* :class:`AcrossRoundsPolicy` (**P3**) follows the clients being tracked
  (debugging/provenance), prefetching the next round's update for the same
  client and evicting earlier rounds (Example 2 of Figure 6).
* :class:`MetadataPolicy` (**P4**) keeps configuration/performance metadata
  for the most recent ``R`` rounds (default 10).

:class:`TailoredPolicyBundle` combines the four, dispatching each request to
the policy selected by the workload taxonomy and resolving eviction ownership
so one class's eviction never removes data another class still needs.
"""

from __future__ import annotations

from repro.config import CachePolicyConfig
from repro.core.policies.base import CachingPolicy, PolicyPlan
from repro.fl.catalog import RoundCatalog
from repro.fl.keys import DataKey
from repro.fl.rounds import RoundRecord
from repro.workloads.base import PolicyClass, WorkloadRequest
from repro.workloads.registry import get_workload


class SingleModelPolicy(CachingPolicy):
    """P1 — cache the (latest) aggregated model for serving and inference."""

    name = "P1"
    admit_on_miss = True

    def __init__(self) -> None:
        self._cached_aggregates: set[int] = set()

    def plan_ingest(self, record: RoundRecord, catalog: RoundCatalog) -> PolicyPlan:
        del catalog
        admit = [record.aggregate_key()]
        evict = [DataKey.aggregate(r) for r in self._cached_aggregates if r < record.round_id - 1]
        self._cached_aggregates.add(record.round_id)
        self._cached_aggregates -= {k.round_id for k in evict}
        return PolicyPlan(admit_keys=admit, evict_keys=evict)

    def plan_request(
        self, request: WorkloadRequest, required_keys: list[DataKey], catalog: RoundCatalog
    ) -> PolicyPlan:
        # Serving workloads repeatedly hit the latest aggregate: prefetch the
        # next round's aggregate if training has already produced it.
        next_round = request.round_id + 1
        prefetch = [DataKey.aggregate(next_round)] if catalog.has_round(next_round) else []
        self._cached_aggregates.update(k.round_id for k in required_keys if k.is_aggregate)
        self._cached_aggregates.update(k.round_id for k in prefetch)
        return PolicyPlan(prefetch_keys=prefetch)


class AllUpdatesInRoundPolicy(CachingPolicy):
    """P2 — cache all client updates of the current round, prefetch the next."""

    name = "P2"
    admit_on_miss = True

    def __init__(self, prefetch_rounds_ahead: int = 1) -> None:
        self.prefetch_rounds_ahead = prefetch_rounds_ahead
        self._cached_rounds: set[int] = set()

    def _round_keys(self, round_id: int, catalog: RoundCatalog, include_aggregate: bool = True) -> list[DataKey]:
        keys = [DataKey.update(cid, round_id) for cid in catalog.participants(round_id)]
        if include_aggregate and catalog.has_round(round_id):
            keys.append(DataKey.aggregate(round_id))
        return keys

    def plan_ingest(self, record: RoundRecord, catalog: RoundCatalog) -> PolicyPlan:
        # Keep the latest round cached: per-round workloads (scheduling,
        # filtering, contribution) run for every new round.
        admit = record.update_keys()
        evict: list[DataKey] = []
        for old_round in sorted(self._cached_rounds):
            if old_round < record.round_id - 1:
                evict.extend(self._round_keys(old_round, catalog))
                self._cached_rounds.discard(old_round)
        self._cached_rounds.add(record.round_id)
        return PolicyPlan(admit_keys=admit, evict_keys=evict)

    def plan_request(
        self, request: WorkloadRequest, required_keys: list[DataKey], catalog: RoundCatalog
    ) -> PolicyPlan:
        prefetch: list[DataKey] = []
        for ahead in range(1, self.prefetch_rounds_ahead + 1):
            next_round = request.round_id + ahead
            if catalog.has_round(next_round):
                prefetch.extend(self._round_keys(next_round, catalog))
                self._cached_rounds.add(next_round)
        evict: list[DataKey] = []
        for old_round in sorted(self._cached_rounds):
            if old_round < request.round_id:
                evict.extend(self._round_keys(old_round, catalog))
                self._cached_rounds.discard(old_round)
        self._cached_rounds.add(request.round_id)
        return PolicyPlan(prefetch_keys=prefetch, evict_keys=evict)


class AcrossRoundsPolicy(CachingPolicy):
    """P3 — follow individual clients across rounds (debugging, provenance)."""

    name = "P3"
    admit_on_miss = True

    def __init__(self, prefetch_rounds_ahead: int = 1) -> None:
        self.prefetch_rounds_ahead = prefetch_rounds_ahead
        #: ``client_id -> last requested round`` for the clients being traced.
        self._tracked: dict[int, int] = {}

    def plan_ingest(self, record: RoundRecord, catalog: RoundCatalog) -> PolicyPlan:
        del catalog
        # Tracked clients keep being traced as training progresses, so admit
        # their new updates as soon as they arrive.
        admit = [
            DataKey.update(cid, record.round_id)
            for cid in self._tracked
            if cid in record.updates
        ]
        return PolicyPlan(admit_keys=admit)

    def plan_request(
        self, request: WorkloadRequest, required_keys: list[DataKey], catalog: RoundCatalog
    ) -> PolicyPlan:
        client_ids = sorted({k.client_id for k in required_keys if k.is_update and k.client_id >= 0})
        prefetch: list[DataKey] = []
        evict: list[DataKey] = []
        for client_id in client_ids:
            future_rounds = [
                r for r in catalog.rounds_for_client(client_id) if r > request.round_id
            ][: self.prefetch_rounds_ahead]
            for next_round in future_rounds:
                prefetch.append(DataKey.update(client_id, next_round))
                if catalog.has_round(next_round):
                    prefetch.append(DataKey.aggregate(next_round))
            last = self._tracked.get(client_id)
            if last is not None:
                history_floor = request.round_id - (request.history_rounds - 1)
                for old_round in catalog.rounds_for_client(client_id, up_to=request.round_id):
                    if old_round < history_floor:
                        evict.append(DataKey.update(client_id, old_round))
                        evict.append(DataKey.aggregate(old_round))
            self._tracked[client_id] = request.round_id
        return PolicyPlan(prefetch_keys=prefetch, evict_keys=evict)


class MetadataPolicy(CachingPolicy):
    """P4 — cache configuration/performance metadata for the most recent R rounds."""

    name = "P4"
    admit_on_miss = True

    def __init__(self, recent_rounds: int = 10) -> None:
        if recent_rounds <= 0:
            raise ValueError("recent_rounds must be positive")
        self.recent_rounds = recent_rounds
        self._cached_rounds: set[int] = set()

    def plan_ingest(self, record: RoundRecord, catalog: RoundCatalog) -> PolicyPlan:
        admit = record.metadata_keys()
        floor = record.round_id - self.recent_rounds + 1
        evict: list[DataKey] = []
        for old_round in sorted(self._cached_rounds):
            if old_round < floor:
                evict.extend(
                    DataKey.metadata(cid, old_round) for cid in catalog.metadata_clients(old_round)
                )
                self._cached_rounds.discard(old_round)
        self._cached_rounds.add(record.round_id)
        return PolicyPlan(admit_keys=admit, evict_keys=evict)

    def plan_request(
        self, request: WorkloadRequest, required_keys: list[DataKey], catalog: RoundCatalog
    ) -> PolicyPlan:
        next_round = request.round_id + 1
        prefetch: list[DataKey] = []
        if catalog.has_round(next_round):
            prefetch = [
                DataKey.metadata(cid, next_round) for cid in catalog.metadata_clients(next_round)
            ]
            self._cached_rounds.add(next_round)
        return PolicyPlan(prefetch_keys=prefetch)


class TailoredPolicyBundle(CachingPolicy):
    """Combines P1-P4 and dispatches each request via the workload taxonomy.

    Eviction advice from one policy class is restricted to keys that class
    *owns* (admitted or prefetched), so e.g. P2's per-round eviction never
    removes an aggregate that P1 keeps warm for inference.
    """

    name = "flstore"
    admit_on_miss = True

    def __init__(
        self,
        config: CachePolicyConfig | None = None,
        capacity_bytes: int | None = None,
    ) -> None:
        config = config or CachePolicyConfig()
        self.config = config
        self._capacity_bytes = capacity_bytes
        self.policies: dict[PolicyClass, CachingPolicy] = {
            PolicyClass.P1_INDIVIDUAL: SingleModelPolicy(),
            PolicyClass.P2_ROUND: AllUpdatesInRoundPolicy(config.prefetch_rounds_ahead),
            PolicyClass.P3_ACROSS_ROUNDS: AcrossRoundsPolicy(config.prefetch_rounds_ahead),
            PolicyClass.P4_METADATA: MetadataPolicy(config.metadata_recent_rounds),
        }
        #: ``key -> policy-class value`` ownership map used to scope evictions.
        self._owner: dict[DataKey, str] = {}

    # ------------------------------------------------------------ dispatch

    def select_policy_class(self, request: WorkloadRequest) -> PolicyClass:
        """The taxonomy-selected policy class for ``request`` (Table 1)."""
        return get_workload(request.workload).policy_class

    def _scope_plan(self, plan: PolicyPlan, owner: PolicyClass) -> PolicyPlan:
        for key in plan.admit_keys + plan.prefetch_keys:
            self._owner[key] = owner.value
        evict = [key for key in plan.evict_keys if self._owner.get(key) == owner.value]
        for key in evict:
            self._owner.pop(key, None)
        return PolicyPlan(admit_keys=plan.admit_keys, prefetch_keys=plan.prefetch_keys, evict_keys=evict)

    # ------------------------------------------------------------ planning

    def plan_ingest(self, record: RoundRecord, catalog: RoundCatalog) -> PolicyPlan:
        merged = PolicyPlan()
        for policy_class, policy in self.policies.items():
            merged = merged.merge(self._scope_plan(policy.plan_ingest(record, catalog), policy_class))
        return merged

    def plan_request(
        self, request: WorkloadRequest, required_keys: list[DataKey], catalog: RoundCatalog
    ) -> PolicyPlan:
        policy_class = self.select_policy_class(request)
        policy = self.policies[policy_class]
        plan = policy.plan_request(request, required_keys, catalog)
        scoped = self._scope_plan(plan, policy_class)
        # Objects fetched on a miss for this request also become owned by the
        # dispatching class so later evictions can reclaim them.
        for key in required_keys:
            self._owner.setdefault(key, policy_class.value)
        return scoped

    # ----------------------------------------------------- capacity control

    @property
    def capacity_bytes(self) -> int | None:
        return self._capacity_bytes

    def select_evictions(self, needed_bytes: int, cached_sizes: dict[DataKey, int]) -> list[DataKey]:
        """Evict oldest-round objects first when a capacity cap is configured."""
        if self._capacity_bytes is None:
            return []
        victims: list[DataKey] = []
        freed = 0
        for key in sorted(cached_sizes, key=lambda k: (k.round_id, k.kind.value, k.client_id)):
            if freed >= needed_bytes:
                break
            victims.append(key)
            freed += cached_sizes[key]
        for key in victims:
            self._owner.pop(key, None)
        return victims

    def record_eviction(self, key: DataKey) -> None:
        self._owner.pop(key, None)
