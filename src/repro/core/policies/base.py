"""Caching-policy interface shared by the tailored and traditional policies.

A policy advises FLStore's Cache Engine on three occasions:

* **round ingestion** (Step 1 of Figure 6): which of the round's freshly
  arrived objects are *hot* and should go into the serverless cache, and
  which previously cached objects can be evicted;
* **request handling** (Steps 2-5 of Figure 6): which additional objects to
  *prefetch* for imminent requests and which processed objects to evict;
* **miss handling**: whether objects fetched on demand from the persistent
  store should be admitted into the cache (reactive admission — what the
  traditional policies do), and which victims to evict when capacity runs
  out.

The tailored FLStore policies are proactive (prefetch ahead of the iterative
access pattern) and effectively capacity-free because they keep only what the
pattern needs; the traditional LRU/LFU/FIFO baselines are reactive and bound
by a byte capacity.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.fl.catalog import RoundCatalog
from repro.fl.keys import DataKey
from repro.fl.rounds import RoundRecord
from repro.workloads.base import WorkloadRequest


@dataclass
class PolicyPlan:
    """Advice returned by a policy to the Cache Engine."""

    #: Freshly arrived objects to place in the serverless cache now.
    admit_keys: list[DataKey] = field(default_factory=list)
    #: Objects to fetch from the persistent store ahead of future requests.
    prefetch_keys: list[DataKey] = field(default_factory=list)
    #: Cached objects that are no longer needed.
    evict_keys: list[DataKey] = field(default_factory=list)

    def merge(self, other: "PolicyPlan") -> "PolicyPlan":
        """Union two plans (used when several policy classes act on one ingest)."""
        return PolicyPlan(
            admit_keys=_dedupe(self.admit_keys + other.admit_keys),
            prefetch_keys=_dedupe(self.prefetch_keys + other.prefetch_keys),
            evict_keys=_dedupe(self.evict_keys + other.evict_keys),
        )

    @property
    def is_empty(self) -> bool:
        """Whether the plan carries no advice at all."""
        return not (self.admit_keys or self.prefetch_keys or self.evict_keys)


def _dedupe(keys: list[DataKey]) -> list[DataKey]:
    seen: set[DataKey] = set()
    ordered: list[DataKey] = []
    for key in keys:
        if key not in seen:
            seen.add(key)
            ordered.append(key)
    return ordered


class CachingPolicy(abc.ABC):
    """Base class of every caching policy."""

    #: Human-readable policy name used in reports (e.g. ``"P2"``, ``"lru"``).
    name: str = "policy"
    #: Whether objects fetched on a miss should be admitted into the cache.
    admit_on_miss: bool = True

    # ------------------------------------------------------------- planning

    @abc.abstractmethod
    def plan_ingest(self, record: RoundRecord, catalog: RoundCatalog) -> PolicyPlan:
        """Advice for a freshly completed training round."""

    @abc.abstractmethod
    def plan_request(
        self,
        request: WorkloadRequest,
        required_keys: list[DataKey],
        catalog: RoundCatalog,
    ) -> PolicyPlan:
        """Advice around one non-training request (prefetch / evict)."""

    # --------------------------------------------------------- bookkeeping

    def record_access(self, key: DataKey, hit: bool, now: float) -> None:
        """Notify the policy that ``key`` was accessed (hit or miss) at ``now``."""

    def record_admission(self, key: DataKey, size_bytes: int, now: float) -> None:
        """Notify the policy that ``key`` of ``size_bytes`` entered the cache at ``now``."""

    def record_eviction(self, key: DataKey) -> None:
        """Notify the policy that ``key`` left the cache."""

    # ----------------------------------------------------- capacity control

    def select_evictions(self, needed_bytes: int, cached_sizes: dict[DataKey, int]) -> list[DataKey]:
        """Pick victims freeing at least ``needed_bytes`` (capacity-bounded policies).

        The default (used by the tailored policies, which manage their own
        working set) evicts nothing.
        """
        del needed_bytes, cached_sizes
        return []

    @property
    def capacity_bytes(self) -> int | None:
        """Byte capacity enforced by the policy, or ``None`` for unbounded."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"
