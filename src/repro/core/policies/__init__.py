"""Caching policies: the tailored FLStore policies (P1-P4) and traditional baselines."""

from repro.core.policies.base import CachingPolicy, PolicyPlan
from repro.core.policies.tailored import (
    AcrossRoundsPolicy,
    AllUpdatesInRoundPolicy,
    MetadataPolicy,
    SingleModelPolicy,
    TailoredPolicyBundle,
)
from repro.core.policies.traditional import (
    FIFOPolicy,
    LFUPolicy,
    LRUPolicy,
    RandomEvictionPolicy,
)
from repro.core.policies.variants import RandomSelectionBundle, StaticPolicyBundle
from repro.core.policies.factory import make_policy_bundle

__all__ = [
    "AcrossRoundsPolicy",
    "AllUpdatesInRoundPolicy",
    "CachingPolicy",
    "FIFOPolicy",
    "LFUPolicy",
    "LRUPolicy",
    "MetadataPolicy",
    "PolicyPlan",
    "RandomEvictionPolicy",
    "RandomSelectionBundle",
    "SingleModelPolicy",
    "StaticPolicyBundle",
    "TailoredPolicyBundle",
    "make_policy_bundle",
]
