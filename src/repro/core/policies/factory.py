"""Factory for the policy variants evaluated in Figure 11, Table 2, and Appendix C."""

from __future__ import annotations

from repro.config import CachePolicyConfig
from repro.core.policies.base import CachingPolicy
from repro.core.policies.tailored import TailoredPolicyBundle
from repro.core.policies.traditional import FIFOPolicy, LFUPolicy, LRUPolicy, RandomEvictionPolicy
from repro.core.policies.variants import RandomSelectionBundle, StaticPolicyBundle
from repro.workloads.base import PolicyClass

#: Policy modes accepted by :func:`make_policy_bundle` and the FLStore builder.
POLICY_MODES: tuple[str, ...] = (
    "tailored",
    "limited",
    "static",
    "random-policy",
    "lru",
    "lfu",
    "fifo",
    "random-eviction",
)


def make_policy_bundle(
    mode: str = "tailored",
    config: CachePolicyConfig | None = None,
    seed: int = 7,
    static_class: PolicyClass = PolicyClass.P1_INDIVIDUAL,
) -> CachingPolicy:
    """Build the caching policy identified by ``mode``.

    Parameters
    ----------
    mode:
        One of :data:`POLICY_MODES`:

        * ``"tailored"`` — FLStore's taxonomy-driven P1-P4 bundle,
        * ``"limited"`` — the same bundle with half the traditional capacity
          (the FLStore-limited variant of Figure 11),
        * ``"static"`` — the FLStore-Static ablation (fixed policy class),
        * ``"random-policy"`` — the FLStore-Random ablation,
        * ``"lru"`` / ``"lfu"`` / ``"fifo"`` / ``"random-eviction"`` —
          traditional capacity-bounded policies.
    config:
        Policy tunables (recent-round window, prefetch depth, capacities).
    seed:
        Seed for the stochastic variants.
    static_class:
        The fixed class used by ``"static"``.
    """
    config = config or CachePolicyConfig()
    mode = mode.lower()
    if mode == "tailored":
        return TailoredPolicyBundle(config=config)
    if mode == "limited":
        capacity = int(config.traditional_policy_capacity_bytes * config.limited_capacity_fraction)
        return TailoredPolicyBundle(config=config, capacity_bytes=capacity)
    if mode == "static":
        return StaticPolicyBundle(fixed_class=static_class, config=config)
    if mode == "random-policy":
        return RandomSelectionBundle(config=config, seed=seed)
    if mode == "lru":
        return LRUPolicy(capacity_bytes=config.traditional_policy_capacity_bytes)
    if mode == "lfu":
        return LFUPolicy(capacity_bytes=config.traditional_policy_capacity_bytes)
    if mode == "fifo":
        return FIFOPolicy(capacity_bytes=config.traditional_policy_capacity_bytes)
    if mode == "random-eviction":
        return RandomEvictionPolicy(capacity_bytes=config.traditional_policy_capacity_bytes, seed=seed)
    raise ValueError(f"unknown policy mode {mode!r}; expected one of {POLICY_MODES}")
