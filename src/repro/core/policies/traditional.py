"""Traditional, workload-agnostic caching policies: LRU, LFU, FIFO, random eviction.

These are the baselines of Figure 11 and Table 2.  They are *reactive*: no
object enters the cache until a request misses on it, and a byte capacity is
enforced by evicting victims chosen by the policy's ordering.  Because the
non-training request stream of an FL job touches each round's (or each
metadata record's) keys essentially once before moving on, reactive policies
never have the next request's data resident — which is why the paper measures
~0 % hit rates for them against FLStore's ~99 %.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.common.rng import derive_rng
from repro.common.units import GB
from repro.core.policies.base import CachingPolicy, PolicyPlan
from repro.fl.catalog import RoundCatalog
from repro.fl.keys import DataKey
from repro.fl.rounds import RoundRecord
from repro.workloads.base import WorkloadRequest


@dataclass
class _Bookkeeping:
    """Per-key accounting shared by every capacity-bounded policy."""

    size_bytes: int = 0
    admitted_at: float = 0.0
    last_access: float = 0.0
    access_count: int = 0
    sequence: int = 0


class CapacityBoundPolicy(CachingPolicy):
    """Base class of reactive policies with a fixed byte capacity."""

    name = "capacity-bound"
    admit_on_miss = True

    def __init__(self, capacity_bytes: int = 8 * GB) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self._capacity = int(capacity_bytes)
        self._entries: dict[DataKey, _Bookkeeping] = {}
        self._sequence = 0

    # --------------------------------------------------------------- planning

    def plan_ingest(self, record: RoundRecord, catalog: RoundCatalog) -> PolicyPlan:
        """Reactive policies ignore round arrival — nothing is cached proactively."""
        del record, catalog
        return PolicyPlan()

    def plan_request(
        self, request: WorkloadRequest, required_keys: list[DataKey], catalog: RoundCatalog
    ) -> PolicyPlan:
        """Reactive policies never prefetch."""
        del request, required_keys, catalog
        return PolicyPlan()

    # ------------------------------------------------------------ bookkeeping

    def record_access(self, key: DataKey, hit: bool, now: float) -> None:
        entry = self._entries.get(key)
        if entry is not None:
            entry.last_access = now
            entry.access_count += 1
        del hit

    def record_admission(self, key: DataKey, size_bytes: int, now: float) -> None:
        self._sequence += 1
        self._entries[key] = _Bookkeeping(
            size_bytes=size_bytes,
            admitted_at=now,
            last_access=now,
            access_count=1,
            sequence=self._sequence,
        )

    def record_eviction(self, key: DataKey) -> None:
        self._entries.pop(key, None)

    # ------------------------------------------------------ capacity control

    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    @property
    def tracked_bytes(self) -> int:
        """Bytes the policy believes are currently cached."""
        return sum(entry.size_bytes for entry in self._entries.values())

    def select_evictions(self, needed_bytes: int, cached_sizes: dict[DataKey, int]) -> list[DataKey]:
        """Pick victims in policy order until ``needed_bytes`` are freed."""
        victims: list[DataKey] = []
        freed = 0
        for key in self._victim_order():
            if freed >= needed_bytes:
                break
            if key not in cached_sizes:
                continue
            victims.append(key)
            freed += cached_sizes[key]
        return victims

    @abc.abstractmethod
    def _victim_order(self) -> list[DataKey]:
        """Keys sorted from first-to-evict to last-to-evict."""


class LRUPolicy(CapacityBoundPolicy):
    """Evict the least-recently-used object first."""

    name = "lru"

    def _victim_order(self) -> list[DataKey]:
        return sorted(self._entries, key=lambda k: self._entries[k].last_access)


class LFUPolicy(CapacityBoundPolicy):
    """Evict the least-frequently-used object first (ties broken by recency)."""

    name = "lfu"

    def _victim_order(self) -> list[DataKey]:
        return sorted(
            self._entries,
            key=lambda k: (self._entries[k].access_count, self._entries[k].last_access),
        )


class FIFOPolicy(CapacityBoundPolicy):
    """Evict the earliest-admitted object first."""

    name = "fifo"

    def _victim_order(self) -> list[DataKey]:
        return sorted(self._entries, key=lambda k: self._entries[k].sequence)


class RandomEvictionPolicy(CapacityBoundPolicy):
    """Evict uniformly random victims (a sanity-check baseline)."""

    name = "random-eviction"

    def __init__(self, capacity_bytes: int = 8 * GB, seed: int = 7) -> None:
        super().__init__(capacity_bytes)
        self._rng = derive_rng(seed, "random-eviction")

    def _victim_order(self) -> list[DataKey]:
        keys = list(self._entries)
        self._rng.shuffle(keys)
        return keys
