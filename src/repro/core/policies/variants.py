"""FLStore policy variants used in the paper's ablations.

* :class:`StaticPolicyBundle` — the FLStore-Static ablation (Appendix C):
  the caching policy is fixed to one workload class and never adapts when the
  request mix changes (e.g. still caching only the aggregated model after the
  workload switched from inference to malicious filtering).
* :class:`RandomSelectionBundle` — the FLStore-Random ablation (Section 5.4):
  a policy class is chosen uniformly at random for every request, ignoring
  the taxonomy.
"""

from __future__ import annotations

from repro.common.rng import derive_rng
from repro.config import CachePolicyConfig
from repro.core.policies.tailored import TailoredPolicyBundle
from repro.workloads.base import PolicyClass, WorkloadRequest


class StaticPolicyBundle(TailoredPolicyBundle):
    """A tailored bundle whose policy class never changes with the workload."""

    name = "flstore-static"

    def __init__(
        self,
        fixed_class: PolicyClass = PolicyClass.P1_INDIVIDUAL,
        config: CachePolicyConfig | None = None,
        capacity_bytes: int | None = None,
    ) -> None:
        super().__init__(config=config, capacity_bytes=capacity_bytes)
        self.fixed_class = fixed_class

    def select_policy_class(self, request: WorkloadRequest) -> PolicyClass:
        del request
        return self.fixed_class


class RandomSelectionBundle(TailoredPolicyBundle):
    """A tailored bundle that picks a random policy class for every request."""

    name = "flstore-random"

    def __init__(
        self,
        config: CachePolicyConfig | None = None,
        capacity_bytes: int | None = None,
        seed: int = 7,
    ) -> None:
        super().__init__(config=config, capacity_bytes=capacity_bytes)
        self._rng = derive_rng(seed, "random-policy-selection")
        self._classes = list(PolicyClass)

    def select_policy_class(self, request: WorkloadRequest) -> PolicyClass:
        del request
        return self._classes[int(self._rng.integers(0, len(self._classes)))]
