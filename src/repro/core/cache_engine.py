"""The Cache Engine (Section 4.2).

The Cache Engine receives incoming FL metadata from training, consults the
caching policy to separate hot from cold data, tracks where every cached
object lives (the ``(client, round) -> function_id`` dictionary of the
paper), places hot objects into the serverless cache, and asynchronously
backs everything up to the persistent store.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

from repro.cloud.object_store import ObjectStore
from repro.cloud.payload import payload_size_bytes
from repro.core.policies.base import CachingPolicy, PolicyPlan
from repro.core.serverless_cache import ServerlessCacheCluster
from repro.fl.catalog import RoundCatalog
from repro.fl.keys import DataKey
from repro.fl.rounds import RoundRecord
from repro.simulation.records import (
    CostAccumulator,
    CostBreakdown,
    LatencyAccumulator,
    LatencyBreakdown,
)
from repro.workloads.base import WorkloadRequest


@dataclass
class IngestReport:
    """Accounting of one round ingestion."""

    round_id: int
    admitted_keys: int = 0
    evicted_keys: int = 0
    backup_cost: CostBreakdown = field(default_factory=CostBreakdown)
    placement_latency: LatencyBreakdown = field(default_factory=LatencyBreakdown)


class CacheEngine:
    """Separates hot from cold FL metadata and tracks cached object locations."""

    def __init__(
        self,
        policy: CachingPolicy,
        cluster: ServerlessCacheCluster,
        persistent_store: ObjectStore,
        catalog: RoundCatalog | None = None,
    ) -> None:
        self.policy = policy
        self.cluster = cluster
        self.persistent_store = persistent_store
        self.catalog = catalog if catalog is not None else RoundCatalog()
        #: The paper's CacheEngine dictionary: cached key -> function id.
        self._locations: dict[DataKey, str] = {}
        #: Objects we failed to place (capacity); they stay cold in the store.
        self.placement_failures: int = 0

    # ------------------------------------------------------------- ingestion

    def ingest_round(self, record: RoundRecord, now: float = 0.0) -> IngestReport:
        """Ingest a completed training round (Step 1 and Steps 4-5 of Figure 6).

        Every object is asynchronously backed up to the persistent store
        (cold path); the policy decides which objects are hot and go into the
        serverless cache.  Backup cost is accounted for but backup latency is
        off the request path.
        """
        self.catalog.register_round(record)
        report = IngestReport(round_id=record.round_id)

        backup_cost = CostAccumulator()
        for key, value in record.objects():
            result = self.persistent_store.put(key, value, size_bytes=payload_size_bytes(value))
            backup_cost.add(result.cost)
        report.backup_cost = backup_cost.finalize()

        plan = self.policy.plan_ingest(record, self.catalog)
        report.placement_latency, admitted = self._apply_admissions(plan.admit_keys, record, now)
        report.admitted_keys = admitted
        report.evicted_keys = self._apply_evictions(plan.evict_keys)
        self._enforce_capacity()
        return report

    def ingest_round_cold(self, record: RoundRecord, now: float = 0.0) -> IngestReport:
        """Register and back up a round without touching the cache plane.

        The catch-up path of a replica-warmed shard join uses this: the
        joining shard must know every round (catalog) and every object must
        be durable (persistent store), but cache placement is covered by the
        scheduled replica warm events — running the policy here would ingest
        the same bytes twice.
        """
        self.catalog.register_round(record)
        report = IngestReport(round_id=record.round_id)
        backup_cost = CostAccumulator()
        for key, value in record.objects():
            result = self.persistent_store.put(key, value, size_bytes=payload_size_bytes(value))
            backup_cost.add(result.cost)
        report.backup_cost = backup_cost.finalize()
        return report

    def _apply_admissions(
        self, keys: list[DataKey], record: RoundRecord, now: float
    ) -> tuple[LatencyBreakdown, int]:
        latency = LatencyAccumulator()
        admitted = 0
        for key in keys:
            if self.is_cached(key):
                continue
            try:
                value = record.get(key)
            except KeyError:
                continue
            size = payload_size_bytes(value)
            try:
                placement = self.cluster.place(key, value, size, now=now)
            except Exception:  # CapacityError or platform limits: keep the object cold
                self.placement_failures += 1
                continue
            latency.add(placement.latency)
            self._locations[key] = placement.primary_function_id
            self.policy.record_admission(key, size, now)
            admitted += 1
        return latency.finalize(), admitted

    def _apply_evictions(self, keys: list[DataKey]) -> int:
        evicted = 0
        for key in keys:
            if self.cluster.evict(key):
                evicted += 1
            self._locations.pop(key, None)
            self.policy.record_eviction(key)
        return evicted

    def _enforce_capacity(self) -> int:
        """Evict policy-selected victims when a capacity-bounded policy overflows."""
        capacity = self.policy.capacity_bytes
        if capacity is None:
            return 0
        excess = self.cluster.total_cached_bytes - capacity
        if excess <= 0:
            return 0
        # select_evictions only reads the mapping, so the live view avoids
        # copying every (key, size) pair on each capacity check.
        victims = self.policy.select_evictions(excess, self.cluster.sizes_view())
        return self._apply_evictions(victims)

    # ------------------------------------------------------- request support

    def lookup(self, keys: list[DataKey]) -> dict[DataKey, str | None]:
        """Resolve ``keys`` to the functions caching them (``None`` on miss)."""
        resolved_map = self.cluster.resolve_many(keys)
        result: dict[DataKey, str | None] = {}
        for key in keys:
            function_id = resolved_map[key].function_id
            result[key] = function_id
            if function_id is not None:
                self._locations[key] = function_id
            else:
                self._locations.pop(key, None)
        return result

    def is_cached(self, key: DataKey) -> bool:
        """Whether a live copy of ``key`` exists in the serverless cache."""
        return self.cluster.is_live(key)

    def admit(self, key: DataKey, value: object, now: float = 0.0) -> LatencyBreakdown:
        """Place a single object (fetched on demand or prefetched) into the cache."""
        size = payload_size_bytes(value)
        try:
            placement = self.cluster.place(key, value, size, now=now)
        except Exception:
            self.placement_failures += 1
            return LatencyBreakdown.zero()
        self._locations[key] = placement.primary_function_id
        self.policy.record_admission(key, size, now)
        self._enforce_capacity()
        return placement.latency

    def plan_request(self, request: WorkloadRequest, required_keys: list[DataKey]) -> PolicyPlan:
        """Ask the policy for prefetch/evict advice around ``request``."""
        return self.policy.plan_request(request, required_keys, self.catalog)

    def apply_evictions(self, keys: list[DataKey]) -> int:
        """Evict ``keys`` from the serverless cache (public request-path hook)."""
        return self._apply_evictions(keys)

    def drop_lost_keys(self) -> list[DataKey]:
        """Forget mappings whose cached copies were all reclaimed."""
        lost = self.cluster.drop_lost_keys()
        for key in lost:
            self._locations.pop(key, None)
        return lost

    # ------------------------------------------------------------ inspection

    def register_location(self, key: DataKey, function_id: str) -> None:
        """Record that ``key`` is cached on ``function_id`` without moving data.

        Used when reconstructing the location table (e.g. after a Cache Engine
        restart) and by the component-overhead experiment of Section 5.5.
        """
        self._locations[key] = function_id

    def location_of(self, key: DataKey) -> str | None:
        """The function currently recorded as caching ``key`` (``None`` if unknown)."""
        return self._locations.get(key)

    @property
    def cached_key_count(self) -> int:
        """Number of keys currently tracked as cached."""
        return len(self._locations)

    def memory_overhead_bytes(self) -> int:
        """Approximate footprint of the location dictionary (Section 5.5)."""
        getsizeof = sys.getsizeof
        total = getsizeof(self._locations)
        # Keys are uniformly sized dataclass instances and function ids
        # repeat heavily; memoizing their sizes keeps this walk cheap at the
        # 100k-entry scale of the Section 5.5 experiment (totals unchanged).
        data_key_size: int | None = None
        id_sizes: dict[str, int] = {}
        for key, function_id in self._locations.items():
            if type(key) is DataKey:
                if data_key_size is None:
                    data_key_size = getsizeof(key)
                total += data_key_size
            else:
                total += getsizeof(key)
            size = id_sizes.get(function_id)
            if size is None:
                size = getsizeof(function_id)
                id_sizes[function_id] = size
            total += size
        return total
