"""The Cache Engine (Section 4.2).

The Cache Engine receives incoming FL metadata from training, consults the
caching policy to separate hot from cold data, tracks where every cached
object lives (the ``(client, round) -> function_id`` dictionary of the
paper), places hot objects into the serverless cache, and asynchronously
backs everything up to the persistent store.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

from repro.cloud.object_store import ObjectStore
from repro.cloud.payload import payload_size_bytes
from repro.core.policies.base import CachingPolicy, PolicyPlan
from repro.core.serverless_cache import ServerlessCacheCluster
from repro.fl.catalog import RoundCatalog
from repro.fl.keys import DataKey
from repro.fl.rounds import RoundRecord
from repro.simulation.records import CostBreakdown, LatencyBreakdown
from repro.workloads.base import WorkloadRequest


@dataclass
class IngestReport:
    """Accounting of one round ingestion."""

    round_id: int
    admitted_keys: int = 0
    evicted_keys: int = 0
    backup_cost: CostBreakdown = field(default_factory=CostBreakdown)
    placement_latency: LatencyBreakdown = field(default_factory=LatencyBreakdown)


class CacheEngine:
    """Separates hot from cold FL metadata and tracks cached object locations."""

    def __init__(
        self,
        policy: CachingPolicy,
        cluster: ServerlessCacheCluster,
        persistent_store: ObjectStore,
        catalog: RoundCatalog | None = None,
    ) -> None:
        self.policy = policy
        self.cluster = cluster
        self.persistent_store = persistent_store
        self.catalog = catalog if catalog is not None else RoundCatalog()
        #: The paper's CacheEngine dictionary: cached key -> function id.
        self._locations: dict[DataKey, str] = {}
        #: Objects we failed to place (capacity); they stay cold in the store.
        self.placement_failures: int = 0

    # ------------------------------------------------------------- ingestion

    def ingest_round(self, record: RoundRecord, now: float = 0.0) -> IngestReport:
        """Ingest a completed training round (Step 1 and Steps 4-5 of Figure 6).

        Every object is asynchronously backed up to the persistent store
        (cold path); the policy decides which objects are hot and go into the
        serverless cache.  Backup cost is accounted for but backup latency is
        off the request path.
        """
        self.catalog.register_round(record)
        report = IngestReport(round_id=record.round_id)

        for key, value in record.objects():
            result = self.persistent_store.put(key, value, size_bytes=payload_size_bytes(value))
            report.backup_cost = report.backup_cost + result.cost

        plan = self.policy.plan_ingest(record, self.catalog)
        report.placement_latency, admitted = self._apply_admissions(plan.admit_keys, record, now)
        report.admitted_keys = admitted
        report.evicted_keys = self._apply_evictions(plan.evict_keys)
        self._enforce_capacity()
        return report

    def _apply_admissions(
        self, keys: list[DataKey], record: RoundRecord, now: float
    ) -> tuple[LatencyBreakdown, int]:
        latency = LatencyBreakdown.zero()
        admitted = 0
        for key in keys:
            if self.is_cached(key):
                continue
            try:
                value = record.get(key)
            except KeyError:
                continue
            size = payload_size_bytes(value)
            try:
                placement = self.cluster.place(key, value, size, now=now)
            except Exception:  # CapacityError or platform limits: keep the object cold
                self.placement_failures += 1
                continue
            latency = latency + placement.latency
            self._locations[key] = placement.primary_function_id
            self.policy.record_admission(key, size, now)
            admitted += 1
        return latency, admitted

    def _apply_evictions(self, keys: list[DataKey]) -> int:
        evicted = 0
        for key in keys:
            if self.cluster.evict(key):
                evicted += 1
            self._locations.pop(key, None)
            self.policy.record_eviction(key)
        return evicted

    def _enforce_capacity(self) -> int:
        """Evict policy-selected victims when a capacity-bounded policy overflows."""
        capacity = self.policy.capacity_bytes
        if capacity is None:
            return 0
        excess = self.cluster.total_cached_bytes - capacity
        if excess <= 0:
            return 0
        victims = self.policy.select_evictions(excess, self.cluster.cached_sizes())
        return self._apply_evictions(victims)

    # ------------------------------------------------------- request support

    def lookup(self, keys: list[DataKey]) -> dict[DataKey, str | None]:
        """Resolve ``keys`` to the functions caching them (``None`` on miss)."""
        result: dict[DataKey, str | None] = {}
        for key in keys:
            resolved = self.cluster.resolve(key)
            result[key] = resolved.function_id
            if resolved.function_id is not None:
                self._locations[key] = resolved.function_id
            else:
                self._locations.pop(key, None)
        return result

    def is_cached(self, key: DataKey) -> bool:
        """Whether a live copy of ``key`` exists in the serverless cache."""
        return self.cluster.contains(key)

    def admit(self, key: DataKey, value: object, now: float = 0.0) -> LatencyBreakdown:
        """Place a single object (fetched on demand or prefetched) into the cache."""
        size = payload_size_bytes(value)
        try:
            placement = self.cluster.place(key, value, size, now=now)
        except Exception:
            self.placement_failures += 1
            return LatencyBreakdown.zero()
        self._locations[key] = placement.primary_function_id
        self.policy.record_admission(key, size, now)
        self._enforce_capacity()
        return placement.latency

    def plan_request(self, request: WorkloadRequest, required_keys: list[DataKey]) -> PolicyPlan:
        """Ask the policy for prefetch/evict advice around ``request``."""
        return self.policy.plan_request(request, required_keys, self.catalog)

    def apply_evictions(self, keys: list[DataKey]) -> int:
        """Evict ``keys`` from the serverless cache (public request-path hook)."""
        return self._apply_evictions(keys)

    def drop_lost_keys(self) -> list[DataKey]:
        """Forget mappings whose cached copies were all reclaimed."""
        lost = self.cluster.drop_lost_keys()
        for key in lost:
            self._locations.pop(key, None)
        return lost

    # ------------------------------------------------------------ inspection

    def register_location(self, key: DataKey, function_id: str) -> None:
        """Record that ``key`` is cached on ``function_id`` without moving data.

        Used when reconstructing the location table (e.g. after a Cache Engine
        restart) and by the component-overhead experiment of Section 5.5.
        """
        self._locations[key] = function_id

    def location_of(self, key: DataKey) -> str | None:
        """The function currently recorded as caching ``key`` (``None`` if unknown)."""
        return self._locations.get(key)

    @property
    def cached_key_count(self) -> int:
        """Number of keys currently tracked as cached."""
        return len(self._locations)

    def memory_overhead_bytes(self) -> int:
        """Approximate footprint of the location dictionary (Section 5.5)."""
        total = sys.getsizeof(self._locations)
        for key, function_id in self._locations.items():
            total += sys.getsizeof(key) + sys.getsizeof(function_id)
        return total
