"""FLStore core: cache engine, request tracker, serverless cache, caching policies."""

from repro.core.cache_engine import CacheEngine
from repro.core.flstore import FLStore, ServeResult, build_default_flstore
from repro.core.request_tracker import RequestTracker
from repro.core.serverless_cache import ServerlessCacheCluster

__all__ = [
    "CacheEngine",
    "FLStore",
    "RequestTracker",
    "ServeResult",
    "ServerlessCacheCluster",
    "build_default_flstore",
]
