"""The FLStore facade: serving non-training FL requests from a serverless cache.

This module wires together the Cache Engine, the Request Tracker, the
serverless cache cluster, and the persistent store into the system of
Figure 5, and implements the end-to-end request workflow of Figure 6:

1. client updates and metadata arrive after each training round and are
   ingested (hot data into the serverless cache, everything into the
   persistent store),
2. a non-training request arrives at the Request Tracker,
3. the Cache Engine resolves the data the request needs to the functions
   caching it; misses are fetched from the persistent store,
4. the workload executes *on* the serverless functions holding the data
   (locality-aware execution), and
5. the tailored caching policy prefetches the data the next request will
   need and evicts data that is no longer necessary.

The :meth:`FLStore.serve` method returns a :class:`ServeResult` carrying the
workload output plus the latency and dollar cost of the request, decomposed
the same way the paper's evaluation reports them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.cloud.object_store import ObjectStore
from repro.common.errors import DataNotFoundError
from repro.common.ids import IdGenerator
from repro.config import SimulationConfig
from repro.core.cache_engine import CacheEngine, IngestReport
from repro.core.policies.base import CachingPolicy
from repro.core.policies.factory import make_policy_bundle
from repro.core.request_tracker import RequestTracker
from repro.core.serverless_cache import ServerlessCacheCluster
from repro.fl.catalog import RoundCatalog
from repro.fl.keys import DataKey
from repro.fl.models import ModelSpec, get_model_spec
from repro.fl.rounds import RoundRecord
from repro.network.costs import TransferCostModel
from repro.network.model import NetworkTopology
from repro.serverless.faults import ZipfianFaultInjector
from repro.serverless.platform import ServerlessPlatform
from repro.simulation.clock import SimClock
from repro.simulation.metrics import RequestRecord
from repro.simulation.records import (
    CostAccumulator,
    CostBreakdown,
    LatencyAccumulator,
    LatencyBreakdown,
)
from repro.workloads.base import WorkloadRequest
from repro.workloads.registry import get_workload


@dataclass(slots=True)
class ServeResult:
    """Outcome of serving one non-training request."""

    request_id: str
    workload: str
    result: dict[str, Any]
    latency: LatencyBreakdown
    cost: CostBreakdown
    cache_hits: int = 0
    cache_misses: int = 0
    failovers: int = 0
    prefetched_keys: int = 0
    evicted_keys: int = 0
    served_by: list[str] = field(default_factory=list)
    #: The function the workload executed on (None on substrates that run
    #: requests outside the serverless fleet, e.g. the aggregator baselines).
    #: The discrete-event engine queues concurrent requests on this function.
    execution_function: str | None = None

    @property
    def hit_rate(self) -> float:
        """Fraction of required objects found in the serverless cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 1.0

    def to_record(self, system: str, model_name: str, round_id: int, client_id: int | None = None) -> RequestRecord:
        """Convert into a :class:`RequestRecord` for the metrics collector."""
        return RequestRecord(
            request_id=self.request_id,
            system=system,
            workload=self.workload,
            model_name=model_name,
            round_id=round_id,
            latency=self.latency,
            cost=self.cost,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            client_id=client_id,
        )


class FLStore:
    """Serverless storage and execution layer for non-training FL workloads."""

    system_name = "flstore"

    def __init__(
        self,
        config: SimulationConfig | None = None,
        policy: CachingPolicy | None = None,
        replication_factor: int | None = None,
        fault_injector: ZipfianFaultInjector | None = None,
        persistent_store: ObjectStore | None = None,
        clock: SimClock | None = None,
    ) -> None:
        self.config = config or SimulationConfig()
        self.clock = clock or SimClock()
        self.topology = NetworkTopology(self.config.network)
        self.cost_model = TransferCostModel(self.config.pricing)
        self.platform = ServerlessPlatform(
            config=self.config.serverless, pricing=self.config.pricing, clock=self.clock
        )
        self.cluster = ServerlessCacheCluster(
            self.platform, config=self.config.serverless, replication_factor=replication_factor
        )
        self.persistent_store = (
            persistent_store
            if persistent_store is not None
            else ObjectStore(self.topology.objstore, self.cost_model, name="persistent-store")
        )
        self.catalog = RoundCatalog()
        self.policy = policy or make_policy_bundle(
            "tailored", config=self.config.cache_policy, seed=self.config.seed
        )
        self.engine = CacheEngine(self.policy, self.cluster, self.persistent_store, catalog=self.catalog)
        self.tracker = RequestTracker()
        self.fault_injector = fault_injector
        self.model_spec: ModelSpec = get_model_spec(self.config.job.model_name)
        self.ingest_cost = CostBreakdown.zero()
        self._request_ids = IdGenerator(prefix="req", width=6)

    # --------------------------------------------------------------- ingest

    def ingest_round(self, record: RoundRecord) -> IngestReport:
        """Ingest a freshly completed training round (asynchronous to requests)."""
        report = self.engine.ingest_round(record, now=self.clock.now())
        self.ingest_cost = self.ingest_cost + report.backup_cost
        return report

    def ingest_round_cold(self, record: RoundRecord) -> IngestReport:
        """Register and back up a round without populating the cache.

        Used by replica-warmed shard joins, where cache placement arrives via
        scheduled warm events instead of the ingest policy (see
        :meth:`repro.core.cache_engine.CacheEngine.ingest_round_cold`).
        """
        report = self.engine.ingest_round_cold(record, now=self.clock.now())
        self.ingest_cost = self.ingest_cost + report.backup_cost
        return report

    # ---------------------------------------------------------------- serve

    def make_request(
        self,
        workload: str,
        round_id: int,
        client_id: int | None = None,
        history_rounds: int = 2,
        **params: Any,
    ) -> WorkloadRequest:
        """Convenience constructor for a request with an auto-generated id."""
        return WorkloadRequest(
            request_id=self._request_ids.next(),
            workload=workload,
            round_id=round_id,
            client_id=client_id,
            history_rounds=history_rounds,
            params=params,
        )

    def serve(self, request: WorkloadRequest) -> ServeResult:
        """Serve one non-training request end to end (Figure 6 workflow)."""
        workload = get_workload(request.workload)
        required_keys = workload.required_keys(request, self.catalog)
        tracked = self.tracker.submit(request.request_id)
        routed = tracked.function_ids

        latency = LatencyAccumulator()
        latency.add_communication(self.topology.client.rtt_seconds)
        cost = CostAccumulator()
        failovers = 0

        # --- optional fault injection (function reclamations) --------------
        if self.fault_injector is not None:
            reclaimed = self.fault_injector.sample_reclamations(
                self.cluster.function_ids(), now=self.clock.now()
            )
            for function_id in reclaimed:
                self.platform.reclaim_function(function_id)
            if reclaimed:
                self.engine.drop_lost_keys()

        # --- resolve and gather required data ------------------------------
        # One batched resolution pass covers the whole gather loop; admitting
        # a missed object mutates the cache (and may evict other keys), so
        # the batch map is only trusted until the first admission, after
        # which the remaining keys fall back to per-key resolution.
        resolution = self.cluster.resolve_many(required_keys)
        resolution_stale = False
        data: dict[DataKey, Any] = {}
        hits = 0
        misses = 0
        miss_fetch_seconds = 0.0
        failed_functions: set[str] = set()
        now = self.clock.now()
        failover_timeout = self.config.serverless.failover_timeout_seconds
        get_function = self.platform.get_function
        record_access = self.policy.record_access
        for key in required_keys:
            resolved = self.cluster.resolve(key) if resolution_stale else resolution[key]
            function_id = resolved.function_id
            if resolved.failed_over:
                failovers += 1
                # The failover timeout is paid once per failed primary
                # function, not once per key it held.
                primary = self.cluster.primary_function_of(key) or f"lost:{key}"
                if primary not in failed_functions:
                    failed_functions.add(primary)
                    latency.add_queueing(failover_timeout)
            if function_id is not None:
                hits += 1
                data[key] = get_function(function_id).load(key)
                record_access(key, hit=True, now=now)
                if function_id not in routed:
                    routed.append(function_id)
            else:
                misses += 1
                fetch_latency, fetch_cost, value = self._fetch_from_persistent(key)
                latency.add(fetch_latency)
                cost.add(fetch_cost)
                miss_fetch_seconds += fetch_latency.total_seconds
                record_access(key, hit=False, now=now)
                if value is None:
                    continue
                data[key] = value
                if self.policy.admit_on_miss:
                    latency.add(self.engine.admit(key, value, now=now))
                    resolution_stale = True

        # --- locality-aware execution on the serverless cache --------------
        compute_seconds = workload.compute_seconds(self.model_spec, max(len(required_keys), 1))
        execution_function = self.cluster.pick_execution_function(
            required_keys, resolved=None if resolution_stale else resolution
        )
        if execution_function is None:
            execution_function, spawn_latency = self._any_warm_function()
            latency.add(spawn_latency)
        invoke = self.platform.invoke(execution_function, busy_seconds=compute_seconds)
        latency.add(invoke.latency)
        cost.add(invoke.cost)
        if execution_function not in routed:
            routed.append(execution_function)
        if miss_fetch_seconds > 0:
            # The executing function is occupied (and billed per GB-second)
            # while it pulls cold objects from the persistent store; the
            # latency of that wait is already counted above, this adds the
            # corresponding serverless billing.
            memory_gb = (
                self.platform.get_function(execution_function).memory_limit_bytes / (1024**3)
            )
            cost.add(self.cost_model.lambda_execution_cost(memory_gb, miss_fetch_seconds))

        result = workload.compute(request, data)

        # --- return results and persist them --------------------------------
        latency.add_communication(
            self.topology.client.transfer_seconds(workload.result_size_bytes)
        )
        result_key = ("result", request.request_id)
        store_result = self.persistent_store.put(result_key, result, size_bytes=workload.result_size_bytes)
        cost.add(store_result.cost)  # asynchronous: cost counted, latency off the critical path

        # --- tailored prefetching and eviction ------------------------------
        plan = self.engine.plan_request(request, required_keys)
        prefetched = 0
        for key in plan.prefetch_keys:
            if self.engine.is_cached(key):
                continue
            _, fetch_cost, value = self._fetch_from_persistent(key)
            if value is None:
                continue
            cost.add(fetch_cost)  # prefetch is asynchronous: cost only
            self.engine.admit(key, value, now=self.clock.now())
            prefetched += 1
        evicted = self.engine.apply_evictions(plan.evict_keys)

        # --- per-request share of always-on costs ---------------------------
        cost.add(self._provisioned_share())

        tracked.completed = True
        self.clock.advance(latency.total_seconds)
        return ServeResult(
            request_id=request.request_id,
            workload=request.workload,
            result=result,
            latency=latency.finalize(),
            cost=cost.finalize(),
            cache_hits=hits,
            cache_misses=misses,
            failovers=failovers,
            prefetched_keys=prefetched,
            evicted_keys=evicted,
            served_by=list(routed),
            execution_function=execution_function,
        )

    # ---------------------------------------------------------------- helpers

    def _fetch_from_persistent(self, key: DataKey) -> tuple[LatencyBreakdown, CostBreakdown, Any]:
        """Fetch a cold object from the persistent store (returns ``None`` if absent)."""
        try:
            result = self.persistent_store.get(key)
        except DataNotFoundError:
            return LatencyBreakdown.zero(), CostBreakdown.zero(), None
        return result.latency, result.cost, result.value

    def _any_warm_function(self) -> tuple[str, LatencyBreakdown]:
        """Return any warm function plus the cold-start latency of spawning one.

        The spawn latency is zero when the fleet already has a warm function;
        otherwise the caller must charge the returned cold-start latency to
        the request (it used to be silently dropped).
        """
        warm = self.platform.warm_functions()
        if warm:
            return warm[0].function_id, LatencyBreakdown.zero()
        function, spawn = self.platform.spawn_function()
        return function.function_id, spawn.latency

    def _provisioned_share(self) -> CostBreakdown:
        """Per-request share of FLStore's always-on costs (keep-alive pings)."""
        share_hours = self.config.trace_duration_hours / max(1, self.config.trace_num_requests)
        return self.platform.keepalive_cost(share_hours)

    # ------------------------------------------------------------- reporting

    def standby_cost(self, duration_hours: float | None = None) -> CostBreakdown:
        """Cost of keeping FLStore available for ``duration_hours`` with no requests."""
        hours = self.config.trace_duration_hours if duration_hours is None else duration_hours
        return self.platform.keepalive_cost(hours)

    @property
    def cached_bytes(self) -> int:
        """Bytes of FL metadata currently resident in the serverless cache."""
        return self.cluster.total_cached_bytes

    @property
    def warm_function_count(self) -> int:
        """Number of warm serverless functions backing the cache."""
        return self.platform.warm_count

    def component_overhead(self) -> dict[str, int]:
        """Memory overhead of the Cache Engine and Request Tracker (Section 5.5)."""
        return {
            "cache_engine_bytes": self.engine.memory_overhead_bytes(),
            "request_tracker_bytes": self.tracker.memory_overhead_bytes(),
        }


def build_default_flstore(
    config: SimulationConfig | None = None,
    policy_mode: str = "tailored",
    replication_factor: int | None = None,
    fault_injector: ZipfianFaultInjector | None = None,
    persistent_store: ObjectStore | None = None,
) -> FLStore:
    """Build an FLStore instance with the requested policy variant.

    Parameters
    ----------
    config:
        Simulation configuration (defaults to the paper's setup).
    policy_mode:
        Policy variant: ``"tailored"`` (FLStore), ``"limited"``, ``"static"``,
        ``"random-policy"``, ``"lru"``, ``"lfu"``, ``"fifo"`` or
        ``"random-eviction"`` (see Figure 11 and Table 2).
    replication_factor:
        Number of replica functions per cached object (Section 4.5).
    fault_injector:
        Optional Zipfian reclamation injector (Appendix A.2).
    persistent_store:
        Use an existing persistent store (lets several systems share one
        cold-data repository in comparative experiments).
    """
    config = config or SimulationConfig()
    policy = make_policy_bundle(policy_mode, config=config.cache_policy, seed=config.seed)
    return FLStore(
        config=config,
        policy=policy,
        replication_factor=replication_factor,
        fault_injector=fault_injector,
        persistent_store=persistent_store,
    )
