"""FLStore reproduction: efficient federated-learning storage for non-training workloads.

This package reproduces the system described in *FLStore: Efficient Federated
Learning Storage for non-training workloads* (MLSys 2025).  It contains:

* cloud substrates (object store, in-memory cache service, dedicated
  aggregator instance) with analytic latency and cost models,
* a serverless-function platform emulator,
* a federated-learning metadata substrate (model zoo, clients, rounds,
  simulated FL jobs),
* the ten non-training workloads evaluated in the paper,
* the FLStore core (cache engine, request tracker, serverless cache,
  tailored caching policies P1-P4, replication and fault tolerance),
* the two paper baselines (ObjStore-Agg and Cache-Agg),
* an analysis/experiment harness that regenerates every table and figure of
  the paper's evaluation, and
* the declarative scenario layer (:mod:`repro.scenario`): one typed,
  validated spec that builds, runs, and sweeps every serving-tier topology.

Quickstart
----------
>>> from repro import ScenarioSpec, run_scenario
>>> report = run_scenario(ScenarioSpec(num_rounds=3))  # doctest: +SKIP
>>> from repro import build_default_flstore, FLJobSimulator, SimulationConfig
>>> config = SimulationConfig.small()
>>> job = FLJobSimulator(config)
>>> rounds = job.run_rounds(5)
>>> flstore = build_default_flstore(config)
>>> for record in rounds:
...     flstore.ingest_round(record)
"""

from repro.config import (
    FLJobConfig,
    PricingConfig,
    ServerlessConfig,
    SimulationConfig,
)
from repro.core.flstore import FLStore, ServeResult, build_default_flstore
from repro.engine.flstore import EngineFLStore
from repro.fl.trainer import FLJobSimulator
from repro.scenario import ScenarioSpec, ScenarioValidationError
from repro.scenario import run as run_scenario
from repro.scenario import sweep as sweep_scenarios
from repro.traces.arrivals import make_arrival_process
from repro.workloads.base import WorkloadRequest
from repro.workloads.registry import get_workload, list_workloads

__version__ = "1.0.0"

__all__ = [
    "EngineFLStore",
    "FLJobConfig",
    "FLJobSimulator",
    "FLStore",
    "PricingConfig",
    "ScenarioSpec",
    "ScenarioValidationError",
    "ServeResult",
    "ServerlessConfig",
    "SimulationConfig",
    "WorkloadRequest",
    "build_default_flstore",
    "get_workload",
    "list_workloads",
    "make_arrival_process",
    "run_scenario",
    "sweep_scenarios",
    "__version__",
]
