"""ObjStore-Agg: a SageMaker-style aggregator backed by an S3-style object store.

This is the first baseline of Section 5.1: the dedicated aggregator instance
fetches every object a non-training request needs from the cloud object
store, processes it, and writes results back.  Because object-store bandwidth
is the slowest path in the system, this baseline is heavily
communication-bound (≈99 % of request latency in the paper's breakup).
"""

from __future__ import annotations

from typing import Any

from repro.baselines.base import AggregatorBaseline
from repro.cloud.object_store import ObjectStore
from repro.common.errors import DataNotFoundError
from repro.config import SimulationConfig
from repro.simulation.clock import SimClock
from repro.simulation.records import CostBreakdown, LatencyBreakdown


class ObjStoreAggregator(AggregatorBaseline):
    """Dedicated aggregator + cloud object store (the paper's ObjStore-Agg)."""

    system_name = "objstore-agg"

    def __init__(self, config: SimulationConfig | None = None, clock: SimClock | None = None) -> None:
        super().__init__(config=config, clock=clock)
        self.object_store = ObjectStore(self.topology.objstore, self.cost_model, name="objstore-agg-s3")

    def _store_object(self, key: Any, value: Any, size_bytes: int) -> CostBreakdown:
        result = self.object_store.put(key, value, size_bytes=size_bytes)
        return result.cost

    def _fetch_object(self, key: Any) -> tuple[LatencyBreakdown, CostBreakdown, Any]:
        try:
            result = self.object_store.get(key)
        except DataNotFoundError:
            return LatencyBreakdown.zero(), CostBreakdown.zero(), None
        return result.latency, result.cost, result.value

    def _store_result(self, key: Any, value: Any, size_bytes: int) -> tuple[LatencyBreakdown, CostBreakdown]:
        result = self.object_store.put(key, value, size_bytes=size_bytes)
        return result.latency, result.cost

    def provisioned_cost(self, duration_hours: float) -> CostBreakdown:
        """Always-on aggregator instance plus object-store storage of the job's metadata."""
        # Depends only on the (fixed) job configuration and the duration, so
        # the per-request share is memoized (one query per served request).
        cached = self._provisioned_effects.get(duration_hours)
        if cached is not None:
            return cached
        instance = self.instance.idle_cost(duration_hours)
        storage = self.cost_model.objstore_storage_cost(self.expected_job_bytes(), duration_hours)
        cost = instance + storage
        self._provisioned_effects[duration_hours] = cost
        return cost
