"""Cache-Agg: a SageMaker-style aggregator backed by an ElastiCache-style cloud cache.

This is the second baseline of Section 5.1: the FL metadata lives in a
provisioned in-memory cache cluster.  Fetches are faster than from the
object store, but the data still has to cross the network into the
aggregator for every request, and the provisioned cache nodes are billed per
hour whether or not requests arrive — which is why the paper finds Cache-Agg
to be the most expensive configuration (Figure 9, Figure 17).
"""

from __future__ import annotations

import math
from typing import Any

from repro.baselines.base import AggregatorBaseline
from repro.cloud.memory_cache import MemoryCacheService
from repro.common.errors import DataNotFoundError
from repro.common.units import GB
from repro.config import SimulationConfig
from repro.simulation.clock import SimClock
from repro.simulation.records import CostBreakdown, LatencyBreakdown


class CacheAggregator(AggregatorBaseline):
    """Dedicated aggregator + provisioned in-memory cloud cache (the paper's Cache-Agg)."""

    system_name = "cache-agg"

    def __init__(self, config: SimulationConfig | None = None, clock: SimClock | None = None) -> None:
        super().__init__(config=config, clock=clock)
        self.memory_cache = MemoryCacheService(
            self.topology.cache, self.cost_model, self.config.pricing, name="cache-agg-elasticache"
        )

    def _store_object(self, key: Any, value: Any, size_bytes: int) -> CostBreakdown:
        result = self.memory_cache.put(key, value, size_bytes=size_bytes)
        return result.cost

    def _fetch_object(self, key: Any) -> tuple[LatencyBreakdown, CostBreakdown, Any]:
        try:
            result = self.memory_cache.get(key)
        except DataNotFoundError:
            return LatencyBreakdown.zero(), CostBreakdown.zero(), None
        return result.latency, result.cost, result.value

    def _store_result(self, key: Any, value: Any, size_bytes: int) -> tuple[LatencyBreakdown, CostBreakdown]:
        result = self.memory_cache.put(key, value, size_bytes=size_bytes)
        return result.latency, result.cost

    def provisioned_nodes_for_job(self) -> int:
        """Cache nodes needed to hold the configured FL job's metadata working set."""
        node_bytes = self.config.pricing.cache_node_memory_gb * GB
        return max(1, math.ceil(self.expected_job_bytes() / node_bytes))

    def provisioned_cost(self, duration_hours: float) -> CostBreakdown:
        """Always-on aggregator instance plus the provisioned cache cluster.

        The cluster is sized for the whole FL job's metadata (the paper's
        Cache-Agg keeps all metadata in ElastiCache), not just for the rounds
        ingested so far in a given experiment.
        """
        instance = self.instance.idle_cost(duration_hours)
        nodes = max(self.provisioned_nodes_for_job(), self.memory_cache.provisioned_nodes)
        # The node count only changes when the stored volume crosses a node
        # boundary, so the summed cost is memoized per (nodes, duration).
        cached = self._provisioned_effects.get((nodes, duration_hours))
        if cached is not None:
            return cached
        cost = instance + self.cost_model.cache_node_cost(nodes, duration_hours)
        self._provisioned_effects[(nodes, duration_hours)] = cost
        return cost
