"""Shared machinery of the dedicated-aggregator baselines.

Both baselines follow the Figure 3 architecture: a dedicated, always-on
aggregator instance (the compute plane) serves non-training requests by
fetching the required FL metadata from a separate data plane over the
network, executing the workload locally, and writing the result back.  The
subclasses differ only in the data plane: a cloud object store
(:class:`~repro.baselines.objstore_agg.ObjStoreAggregator`) or a provisioned
in-memory cache (:class:`~repro.baselines.cache_agg.CacheAggregator`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

from repro.cloud.instance import DedicatedInstance
from repro.cloud.payload import payload_size_bytes
from repro.common.ids import IdGenerator
from repro.config import SimulationConfig
from repro.core.flstore import ServeResult
from repro.fl.catalog import RoundCatalog
from repro.fl.keys import DataKey
from repro.fl.models import ModelSpec, get_model_spec
from repro.fl.rounds import RoundRecord
from repro.network.costs import TransferCostModel
from repro.network.model import NetworkTopology
from repro.simulation.clock import SimClock
from repro.simulation.records import (
    CostAccumulator,
    CostBreakdown,
    LatencyAccumulator,
    LatencyBreakdown,
)
from repro.workloads.base import WorkloadRequest
from repro.workloads.registry import get_workload


@dataclass
class BaselineIngestReport:
    """Accounting of one round ingestion into a baseline data plane."""

    round_id: int
    stored_keys: int = 0
    upload_cost: CostBreakdown = field(default_factory=CostBreakdown)


class AggregatorBaseline(abc.ABC):
    """A dedicated aggregator instance backed by a remote data plane."""

    system_name = "baseline"

    def __init__(self, config: SimulationConfig | None = None, clock: SimClock | None = None) -> None:
        self.config = config or SimulationConfig()
        self.clock = clock or SimClock()
        self.topology = NetworkTopology(self.config.network)
        self.cost_model = TransferCostModel(self.config.pricing)
        self.instance = DedicatedInstance(self.config.pricing)
        self.catalog = RoundCatalog()
        self.model_spec: ModelSpec = get_model_spec(self.config.job.model_name)
        self.ingest_cost = CostBreakdown.zero()
        self._request_ids = IdGenerator(prefix="req", width=6)
        #: Memoized provisioned-cost results (queried once per served
        #: request with the same duration; see subclass ``provisioned_cost``).
        self._provisioned_effects: dict[Any, CostBreakdown] = {}

    # ----------------------------------------------------------- data plane

    @abc.abstractmethod
    def _store_object(self, key: Any, value: Any, size_bytes: int) -> CostBreakdown:
        """Persist one object into the data plane; returns the upload cost."""

    @abc.abstractmethod
    def _fetch_object(self, key: Any) -> tuple[LatencyBreakdown, CostBreakdown, Any]:
        """Fetch one object from the data plane into the aggregator's memory."""

    @abc.abstractmethod
    def _store_result(self, key: Any, value: Any, size_bytes: int) -> tuple[LatencyBreakdown, CostBreakdown]:
        """Write a workload result back to the data plane."""

    @abc.abstractmethod
    def provisioned_cost(self, duration_hours: float) -> CostBreakdown:
        """Always-on cost of the compute and data planes for ``duration_hours``."""

    # --------------------------------------------------------------- ingest

    def ingest_round(self, record: RoundRecord) -> BaselineIngestReport:
        """Store a training round's metadata in the data plane."""
        self.catalog.register_round(record)
        report = BaselineIngestReport(round_id=record.round_id)
        upload_cost = CostAccumulator()
        for key, value in record.objects():
            upload_cost.add(self._store_object(key, value, payload_size_bytes(value)))
            report.stored_keys += 1
        report.upload_cost = upload_cost.finalize()
        self.ingest_cost = self.ingest_cost + report.upload_cost
        return report

    # ----------------------------------------------------------------- serve

    def make_request(
        self,
        workload: str,
        round_id: int,
        client_id: int | None = None,
        history_rounds: int = 2,
        **params: Any,
    ) -> WorkloadRequest:
        """Convenience constructor for a request with an auto-generated id."""
        return WorkloadRequest(
            request_id=self._request_ids.next(),
            workload=workload,
            round_id=round_id,
            client_id=client_id,
            history_rounds=history_rounds,
            params=params,
        )

    def serve(self, request: WorkloadRequest) -> ServeResult:
        """Serve one non-training request with the conventional GET/compute/PUT flow."""
        workload = get_workload(request.workload)
        required_keys = workload.required_keys(request, self.catalog)

        latency = LatencyAccumulator()
        latency.add_communication(self.topology.client.rtt_seconds)
        cost = CostAccumulator()

        # GET every required object from the remote data plane (Step 2 of Figure 3).
        data: dict[DataKey, Any] = {}
        misses = 0
        for key in required_keys:
            fetch_latency, fetch_cost, value = self._fetch_object(key)
            latency.add(fetch_latency)
            cost.add(fetch_cost)
            if value is None:
                misses += 1
                continue
            data[key] = value

        # Execute the workload on the dedicated aggregator instance.
        compute_seconds = workload.compute_seconds(self.model_spec, max(len(required_keys), 1))
        execution = self.instance.execute(compute_seconds)
        latency.add(execution.latency)
        cost.add(execution.cost)
        result = workload.compute(request, data)

        # PUT the result back to the data plane (Step 3) and return it (Step 4).
        put_latency, put_cost = self._store_result(("result", request.request_id), result, workload.result_size_bytes)
        latency.add(put_latency)
        cost.add(put_cost)
        latency.add_communication(
            self.topology.client.transfer_seconds(workload.result_size_bytes)
        )

        # The dedicated instance is occupied for the whole request, including
        # the time it spends waiting for data to cross the network — this is
        # where the communication bottleneck becomes a dollar cost.
        cost.add(self.instance.occupancy_cost(latency.communication_seconds))

        # Per-request share of the always-on compute and data planes.
        cost.add(self._provisioned_share())

        self.clock.advance(latency.total_seconds)
        return ServeResult(
            request_id=request.request_id,
            workload=request.workload,
            result=result,
            latency=latency.finalize(),
            cost=cost.finalize(),
            cache_hits=0,
            cache_misses=len(required_keys),
            served_by=[self.instance.name],
        )

    # ---------------------------------------------------------------- shared

    def _provisioned_share(self) -> CostBreakdown:
        """Per-request share of always-on service costs over the trace window."""
        share_hours = self.config.trace_duration_hours / max(1, self.config.trace_num_requests)
        return self.provisioned_cost(share_hours)

    def expected_job_bytes(self) -> int:
        """Total metadata volume of the configured FL job (sizing for data planes)."""
        job = self.config.job
        per_round = (job.clients_per_round + 1) * self.model_spec.size_bytes
        metadata = job.clients_per_round * 4096
        return (per_round + metadata) * job.total_rounds
