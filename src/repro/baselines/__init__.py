"""The paper's baseline architectures: ObjStore-Agg and Cache-Agg (Figure 3)."""

from repro.baselines.base import AggregatorBaseline
from repro.baselines.objstore_agg import ObjStoreAggregator
from repro.baselines.cache_agg import CacheAggregator

__all__ = ["AggregatorBaseline", "CacheAggregator", "ObjStoreAggregator"]
