"""Exception hierarchy used across the FLStore reproduction."""

from __future__ import annotations


class FLStoreError(Exception):
    """Base class for every error raised by this package."""


class ConfigurationError(FLStoreError):
    """A configuration value is inconsistent or out of range."""


class DataNotFoundError(FLStoreError):
    """A requested object does not exist in the queried store."""

    def __init__(self, key: object, store: str = "store") -> None:
        super().__init__(f"object {key!r} not found in {store}")
        self.key = key
        self.store = store


class CacheMissError(FLStoreError):
    """A lookup hit neither the serverless cache nor a configured fallback."""


class CapacityError(FLStoreError):
    """An object does not fit in the remaining capacity of a function or cache."""


class FunctionReclaimedError(FLStoreError):
    """A serverless function was reclaimed by the provider and its memory lost."""

    def __init__(self, function_id: str) -> None:
        super().__init__(f"serverless function {function_id} was reclaimed")
        self.function_id = function_id


class RequestRoutingError(FLStoreError):
    """The request tracker could not route a request to any live function."""


class WorkloadError(FLStoreError):
    """A non-training workload received inconsistent or insufficient data."""
