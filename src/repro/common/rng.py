"""Deterministic random-number-generator helpers.

Every stochastic component of the simulator derives its generator from a
single integer seed plus a stream name, so experiments are reproducible and
independent components do not share generator state.
"""

from __future__ import annotations

import hashlib

import numpy as np


def seeded_rng(seed: int) -> np.random.Generator:
    """Return a NumPy generator seeded with ``seed``."""
    return np.random.default_rng(seed)


def derive_rng(seed: int, *streams: object) -> np.random.Generator:
    """Derive an independent generator from ``seed`` and a stream identifier.

    Parameters
    ----------
    seed:
        The experiment-level master seed.
    streams:
        Any hashable labels (strings, ints) identifying the consumer, e.g.
        ``derive_rng(7, "client", 42)``.

    Returns
    -------
    numpy.random.Generator
        A generator whose state is a deterministic function of ``seed`` and
        ``streams`` and is independent of other derived streams.
    """
    label = ":".join(str(s) for s in streams)
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    child_seed = int.from_bytes(digest[:8], "little")
    return np.random.default_rng(child_seed)


def derive_seed(seed: int, *streams: object) -> int:
    """Return a deterministic integer sub-seed for ``seed`` and ``streams``."""
    label = ":".join(str(s) for s in streams)
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")
