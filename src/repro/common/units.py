"""Unit constants and conversion helpers.

All sizes inside the simulator are expressed in **bytes** and all durations in
**seconds** unless a name explicitly says otherwise (``*_mb``, ``*_hours``).
Costs are expressed in US dollars.
"""

from __future__ import annotations

KB: int = 1024
MB: int = 1024 * 1024
GB: int = 1024 * 1024 * 1024
TB: int = 1024 * 1024 * 1024 * 1024

MINUTES: float = 60.0
HOURS: float = 3600.0
DAYS: float = 86400.0


def mb_to_bytes(mb: float) -> int:
    """Convert mebibytes to bytes (rounded to the nearest byte)."""
    return int(round(mb * MB))


def gb_to_bytes(gb: float) -> int:
    """Convert gibibytes to bytes (rounded to the nearest byte)."""
    return int(round(gb * GB))


def bytes_to_mb(n_bytes: float) -> float:
    """Convert bytes to mebibytes."""
    return n_bytes / MB


def bytes_to_gb(n_bytes: float) -> float:
    """Convert bytes to gibibytes."""
    return n_bytes / GB


def bytes_to_tb(n_bytes: float) -> float:
    """Convert bytes to tebibytes."""
    return n_bytes / TB


def seconds_to_hours(seconds: float) -> float:
    """Convert seconds to hours."""
    return seconds / HOURS


def hours_to_seconds(hours: float) -> float:
    """Convert hours to seconds."""
    return hours * HOURS


def per_month_to_per_second(dollars_per_month: float) -> float:
    """Convert a monthly price to a per-second price (30-day month)."""
    return dollars_per_month / (30.0 * DAYS)


def per_hour_to_per_second(dollars_per_hour: float) -> float:
    """Convert an hourly price to a per-second price."""
    return dollars_per_hour / HOURS
