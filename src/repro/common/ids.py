"""Deterministic identifier generation for functions, requests, and objects."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field


@dataclass
class IdGenerator:
    """Generates sequential, prefixed string identifiers.

    The generator is deterministic so simulation runs with the same inputs
    produce identical identifiers, which keeps traces and test expectations
    stable.

    Examples
    --------
    >>> gen = IdGenerator(prefix="fn")
    >>> gen.next()
    'fn-0000'
    >>> gen.next()
    'fn-0001'
    """

    prefix: str = "id"
    width: int = 4
    _counter: itertools.count = field(default_factory=itertools.count, repr=False)

    def next(self) -> str:
        """Return the next identifier."""
        return f"{self.prefix}-{next(self._counter):0{self.width}d}"

    def peek_count(self) -> int:
        """Return how many identifiers have been issued so far."""
        value = next(self._counter)
        # itertools.count cannot be rewound; recreate it one step back.
        self._counter = itertools.count(value)
        return value
