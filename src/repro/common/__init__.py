"""Shared low-level utilities: units, deterministic RNG, errors, identifiers."""

from repro.common.errors import (
    CacheMissError,
    CapacityError,
    ConfigurationError,
    DataNotFoundError,
    FLStoreError,
    FunctionReclaimedError,
    RequestRoutingError,
)
from repro.common.ids import IdGenerator
from repro.common.rng import derive_rng, seeded_rng
from repro.common.units import (
    GB,
    HOURS,
    KB,
    MB,
    MINUTES,
    TB,
    bytes_to_gb,
    bytes_to_mb,
    gb_to_bytes,
    mb_to_bytes,
    seconds_to_hours,
)

__all__ = [
    "CacheMissError",
    "CapacityError",
    "ConfigurationError",
    "DataNotFoundError",
    "FLStoreError",
    "FunctionReclaimedError",
    "IdGenerator",
    "RequestRoutingError",
    "derive_rng",
    "seeded_rng",
    "GB",
    "HOURS",
    "KB",
    "MB",
    "MINUTES",
    "TB",
    "bytes_to_gb",
    "bytes_to_mb",
    "gb_to_bytes",
    "mb_to_bytes",
    "seconds_to_hours",
]
