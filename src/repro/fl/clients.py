"""The cross-device client population.

Clients in cross-device FL are heterogeneous phones/edge devices with varying
compute, network, availability, and data characteristics.  The non-training
workloads (scheduling, clustering, incentives) reason about exactly this
heterogeneity, so the population generator assigns every client:

* a latent cluster (drives correlated model updates for clustering and
  personalization workloads),
* a resource profile (drives scheduling workloads),
* a data size and quality level (drives incentive/reputation workloads),
* a malicious flag (drives malicious-filtering and debugging workloads).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import derive_rng
from repro.config import FLJobConfig
from repro.fl.metadata import ResourceProfile


@dataclass(frozen=True)
class ClientDevice:
    """Static description of one client device in the population."""

    client_id: int
    cluster_id: int
    resources: ResourceProfile
    num_samples: int
    #: Label-quality score in [0, 1]; low quality degrades local accuracy.
    data_quality: float
    is_malicious: bool = False

    def __post_init__(self) -> None:
        if self.num_samples <= 0:
            raise ConfigurationError("num_samples must be positive")
        if not 0.0 <= self.data_quality <= 1.0:
            raise ConfigurationError("data_quality must be in [0, 1]")


class ClientPopulation:
    """Deterministically generates and holds the client population of an FL job."""

    def __init__(self, config: FLJobConfig, seed: int = 7) -> None:
        self.config = config
        self.seed = seed
        self._clients = self._generate()

    def _generate(self) -> list[ClientDevice]:
        rng = derive_rng(self.seed, "client-population")
        clients: list[ClientDevice] = []
        n = self.config.total_clients
        n_malicious = int(round(self.config.malicious_fraction * n))
        malicious_ids = set(rng.choice(n, size=n_malicious, replace=False).tolist()) if n_malicious else set()
        for client_id in range(n):
            cluster_id = int(rng.integers(0, self.config.latent_clusters))
            resources = ResourceProfile(
                cpu_ghz=float(rng.uniform(1.0, 3.2)),
                memory_gb=float(rng.choice([2.0, 3.0, 4.0, 6.0, 8.0])),
                bandwidth_mbps=float(rng.uniform(5.0, 100.0)),
                battery_fraction=float(rng.uniform(0.2, 1.0)),
                availability=float(rng.uniform(0.5, 1.0)),
            )
            clients.append(
                ClientDevice(
                    client_id=client_id,
                    cluster_id=cluster_id,
                    resources=resources,
                    num_samples=int(rng.integers(100, 2000)),
                    data_quality=float(rng.uniform(0.5, 1.0)),
                    is_malicious=client_id in malicious_ids,
                )
            )
        return clients

    # -------------------------------------------------------------- lookup

    def __len__(self) -> int:
        return len(self._clients)

    def __iter__(self):
        return iter(self._clients)

    def get(self, client_id: int) -> ClientDevice:
        """Return the client with ``client_id``."""
        if not 0 <= client_id < len(self._clients):
            raise KeyError(f"client {client_id} is outside the population of {len(self._clients)}")
        return self._clients[client_id]

    @property
    def clients(self) -> list[ClientDevice]:
        """Every client in the population."""
        return list(self._clients)

    @property
    def malicious_ids(self) -> set[int]:
        """Identifiers of the adversarial clients."""
        return {c.client_id for c in self._clients if c.is_malicious}

    def cluster_members(self, cluster_id: int) -> list[ClientDevice]:
        """Clients assigned to latent cluster ``cluster_id``."""
        return [c for c in self._clients if c.cluster_id == cluster_id]

    def select_round_participants(self, round_id: int) -> list[ClientDevice]:
        """Deterministically select the clients participating in ``round_id``.

        Selection is uniform over the population (standard cross-device FL
        protocol, Section 5.1 of the paper) but weighted slightly by
        availability so highly available devices participate more often —
        matching the behaviour intelligent client-selection systems assume.
        """
        rng = derive_rng(self.seed, "round-selection", round_id)
        weights = np.array([c.resources.availability for c in self._clients], dtype=float)
        weights = weights / weights.sum()
        chosen = rng.choice(
            len(self._clients),
            size=self.config.clients_per_round,
            replace=False,
            p=weights,
        )
        return [self._clients[int(i)] for i in sorted(chosen)]
