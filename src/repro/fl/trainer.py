"""Synthetic FL job simulation: produces the metadata stream FLStore stores.

The paper's evaluation does not depend on the *quality* of the trained models
— only on the metadata stream an FL job generates: per-round client model
updates of realistic size, per-client configuration/performance metadata,
and the aggregated model.  :class:`FLJobSimulator` generates that stream
deterministically, with enough structure that the non-training workloads have
meaningful work to do:

* clients belong to latent clusters, so clustering/personalization recover
  structure,
* malicious clients submit out-of-distribution updates, so filtering and
  debugging can detect them,
* local accuracy follows a noisy convergence curve, so incentive and
  reputation calculations vary across clients and rounds,
* hyperparameters and device resources drift, so scheduling and tuning
  workloads see changing metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import derive_rng
from repro.config import FLJobConfig, SimulationConfig
from repro.fl.aggregation import fedavg
from repro.fl.clients import ClientDevice, ClientPopulation
from repro.fl.metadata import ClientRoundMetadata, HyperParameters
from repro.fl.models import ModelSpec, ModelUpdate, get_model_spec
from repro.fl.rounds import RoundRecord


@dataclass
class FLJobState:
    """Mutable state of a running simulated FL job."""

    model_spec: ModelSpec
    global_weights: np.ndarray
    current_round: int = 0
    #: Mean local accuracy per completed round (a noisy convergence curve).
    accuracy_history: list[float] = field(default_factory=list)

    @property
    def latest_accuracy(self) -> float:
        """Mean local accuracy of the last completed round (0 before any round)."""
        return self.accuracy_history[-1] if self.accuracy_history else 0.0


class FLJobSimulator:
    """Generates :class:`RoundRecord` objects for a configured FL job."""

    def __init__(self, config: SimulationConfig | FLJobConfig | None = None, seed: int | None = None) -> None:
        if config is None:
            config = SimulationConfig()
        if isinstance(config, SimulationConfig):
            self.job_config = config.job
            self.seed = config.seed if seed is None else seed
        else:
            self.job_config = config
            self.seed = 7 if seed is None else seed
        self.model_spec = get_model_spec(self.job_config.model_name)
        self.population = ClientPopulation(self.job_config, seed=self.seed)
        rng = derive_rng(self.seed, "global-init")
        dim = self.job_config.reduced_dim
        self._cluster_centers = derive_rng(self.seed, "cluster-centers").normal(
            0.0, 1.0, size=(self.job_config.latent_clusters, dim)
        )
        self.state = FLJobState(
            model_spec=self.model_spec,
            global_weights=rng.normal(0.0, 0.1, size=dim),
        )

    # ------------------------------------------------------------ generation

    def generate_round(self, round_id: int | None = None) -> RoundRecord:
        """Generate (and apply) the next training round.

        Passing an explicit ``round_id`` is only allowed if it equals the next
        round; rounds must be generated in order because each round's updates
        depend on the current global model.
        """
        next_round = self.state.current_round
        if round_id is not None and round_id != next_round:
            raise ConfigurationError(
                f"rounds must be generated in order; expected {next_round}, got {round_id}"
            )
        participants = self.population.select_round_participants(next_round)
        updates: dict[int, ModelUpdate] = {}
        metadata: dict[int, ClientRoundMetadata] = {}
        accuracies: list[float] = []
        for client in participants:
            update, meta = self._client_round(client, next_round)
            updates[client.client_id] = update
            metadata[client.client_id] = meta
            accuracies.append(meta.local_accuracy)
        aggregate = fedavg(list(updates.values()), round_id=next_round)
        self.state.global_weights = aggregate.weights
        self.state.accuracy_history.append(float(np.mean(accuracies)))
        self.state.current_round += 1
        return RoundRecord(round_id=next_round, updates=updates, aggregate=aggregate, metadata=metadata)

    def run_rounds(self, num_rounds: int) -> list[RoundRecord]:
        """Generate the next ``num_rounds`` rounds and return them."""
        if num_rounds < 0:
            raise ValueError("num_rounds must be non-negative")
        return [self.generate_round() for _ in range(num_rounds)]

    def rounds(self, num_rounds: int | None = None) -> Iterator[RoundRecord]:
        """Lazily iterate over rounds (defaults to the configured total)."""
        total = self.job_config.total_rounds if num_rounds is None else num_rounds
        for _ in range(total):
            yield self.generate_round()

    # ---------------------------------------------------------- client model

    def _convergence_accuracy(self, round_id: int, client: ClientDevice, rng: np.random.Generator) -> float:
        """A noisy logistic convergence curve modulated by data quality."""
        progress = round_id / max(1.0, 0.3 * self.job_config.total_rounds)
        base = 0.15 + 0.75 / (1.0 + np.exp(-3.0 * (progress - 1.0)))
        quality_penalty = (1.0 - client.data_quality) * 0.25
        noise = rng.normal(0.0, 0.02)
        return float(np.clip(base - quality_penalty + noise, 0.01, 0.99))

    def _client_round(self, client: ClientDevice, round_id: int) -> tuple[ModelUpdate, ClientRoundMetadata]:
        rng = derive_rng(self.seed, "client-round", client.client_id, round_id)
        dim = self.job_config.reduced_dim
        center = self._cluster_centers[client.cluster_id]
        progress = min(1.0, round_id / max(1, self.job_config.total_rounds))
        if client.is_malicious:
            # Adversarial update: large-norm, sign-flipped direction unrelated
            # to the client's cluster, detectable by norm/cosine screening.
            weights = rng.normal(0.0, 3.0, size=dim) - 2.0 * self.state.global_weights
            local_accuracy = float(rng.uniform(0.05, 0.3))
        else:
            personal = rng.normal(0.0, 0.2, size=dim)
            drift = (1.0 - progress) * 0.5
            weights = (
                self.state.global_weights
                + drift * 0.3 * center
                + 0.1 * personal
                + rng.normal(0.0, 0.02, size=dim)
            )
            local_accuracy = self._convergence_accuracy(round_id, client, rng)

        update = ModelUpdate(
            client_id=client.client_id,
            round_id=round_id,
            model_name=self.model_spec.name,
            weights=weights,
            size_bytes=self.model_spec.size_bytes,
            metrics={
                "num_samples": float(client.num_samples),
                "local_accuracy": local_accuracy,
                "local_loss": float(max(0.01, 2.5 * (1.0 - local_accuracy) + rng.normal(0.0, 0.05))),
            },
        )

        lr_decay = self.job_config.base_learning_rate * (0.99 ** (round_id // 10))
        hyper = HyperParameters(
            learning_rate=float(max(1e-5, lr_decay * rng.uniform(0.8, 1.2))),
            local_epochs=self.job_config.local_epochs,
            batch_size=int(rng.choice([16, 32, 64])),
        )
        train_seconds = float(
            self.job_config.mean_local_training_seconds
            * (2.0 / client.resources.cpu_ghz)
            * rng.uniform(0.8, 1.3)
        )
        upload_seconds = float(
            self.model_spec.size_bytes / (client.resources.bandwidth_mbps * 125_000.0)
        )
        meta = ClientRoundMetadata(
            client_id=client.client_id,
            round_id=round_id,
            hyperparameters=hyper,
            resources=client.resources,
            local_accuracy=local_accuracy,
            local_loss=float(update.metrics["local_loss"]),
            train_seconds=train_seconds,
            upload_seconds=upload_seconds,
            num_samples=client.num_samples,
            selected=True,
            dropped_out=bool(rng.random() < 0.02),
        )
        return update, meta
