"""A lightweight index of which clients participated in which rounds.

Non-training workloads phrase their data needs as "all client updates of
round *i*" or "client *c*'s updates across rounds" (Table 1).  To translate a
request into concrete :class:`~repro.fl.keys.DataKey` objects, the serving
system needs to know which clients actually participated in each round; the
:class:`RoundCatalog` records exactly that, and nothing else — it never holds
the (large) updates themselves, so both FLStore and the baselines can keep it
locally at negligible memory cost (Section 5.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fl.rounds import RoundRecord


@dataclass
class RoundCatalog:
    """Tracks round membership and metadata availability for one FL job."""

    _participants: dict[int, list[int]] = field(default_factory=dict)
    _metadata_clients: dict[int, list[int]] = field(default_factory=dict)

    def register_round(self, record: RoundRecord) -> None:
        """Record the membership of ``record``'s round."""
        self._participants[record.round_id] = list(record.participant_ids)
        self._metadata_clients[record.round_id] = sorted(record.metadata)

    def register_membership(
        self,
        round_id: int,
        participant_ids: list[int],
        metadata_client_ids: list[int] | None = None,
    ) -> None:
        """Record membership without a full :class:`RoundRecord` (used by traces)."""
        self._participants[round_id] = sorted(participant_ids)
        self._metadata_clients[round_id] = sorted(
            metadata_client_ids if metadata_client_ids is not None else participant_ids
        )

    # -------------------------------------------------------------- queries

    def has_round(self, round_id: int) -> bool:
        """Whether ``round_id`` has been registered."""
        return round_id in self._participants

    def participants(self, round_id: int) -> list[int]:
        """Clients that submitted updates in ``round_id`` (empty if unknown)."""
        return list(self._participants.get(round_id, []))

    def metadata_clients(self, round_id: int) -> list[int]:
        """Clients with metadata records in ``round_id`` (empty if unknown)."""
        return list(self._metadata_clients.get(round_id, []))

    def rounds(self) -> list[int]:
        """Every registered round, sorted ascending."""
        return sorted(self._participants)

    @property
    def latest_round(self) -> int:
        """The most recent registered round, or ``-1`` if none."""
        return max(self._participants) if self._participants else -1

    def recent_rounds(self, count: int, up_to: int | None = None) -> list[int]:
        """The most recent ``count`` registered rounds, optionally capped at ``up_to``."""
        rounds = [r for r in self.rounds() if up_to is None or r <= up_to]
        return rounds[-count:]

    def rounds_for_client(self, client_id: int, up_to: int | None = None) -> list[int]:
        """Rounds in which ``client_id`` participated, optionally capped at ``up_to``."""
        return [
            r
            for r, members in sorted(self._participants.items())
            if client_id in members and (up_to is None or r <= up_to)
        ]

    def __len__(self) -> int:
        return len(self._participants)
