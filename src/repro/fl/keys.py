"""Canonical keys identifying FL metadata objects across every store.

The Cache Engine of the paper tracks data with ``(client, round) -> function``
mappings (Section 4.2).  We generalise the key slightly so that aggregated
models and per-client configuration metadata share the same key space as
client model updates; this lets the persistent store, the serverless cache,
and every caching policy speak about the same objects.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DataKind(enum.Enum):
    """What kind of FL metadata a key refers to."""

    #: A single client's model update for one round.
    CLIENT_UPDATE = "client_update"
    #: The aggregated (global) model produced at the end of one round.
    AGGREGATE = "aggregate"
    #: Configuration / performance metadata for one client and round
    #: (hyperparameters, resources, accuracy, payouts).
    METADATA = "metadata"


@dataclass(frozen=True, order=True)
class DataKey:
    """Identifies one FL metadata object.

    Attributes
    ----------
    kind:
        The object category (update, aggregate, metadata).
    round_id:
        Training round the object belongs to.
    client_id:
        Producing client, or ``-1`` for round-level objects such as the
        aggregated model.
    """

    kind: DataKind
    round_id: int
    client_id: int = -1

    @classmethod
    def update(cls, client_id: int, round_id: int) -> "DataKey":
        """Key of ``client_id``'s model update in ``round_id``."""
        return cls(kind=DataKind.CLIENT_UPDATE, round_id=round_id, client_id=client_id)

    @classmethod
    def aggregate(cls, round_id: int) -> "DataKey":
        """Key of the aggregated model produced in ``round_id``."""
        return cls(kind=DataKind.AGGREGATE, round_id=round_id, client_id=-1)

    @classmethod
    def metadata(cls, client_id: int, round_id: int) -> "DataKey":
        """Key of ``client_id``'s configuration/performance metadata in ``round_id``."""
        return cls(kind=DataKind.METADATA, round_id=round_id, client_id=client_id)

    @property
    def is_update(self) -> bool:
        """Whether this key refers to a client model update."""
        return self.kind is DataKind.CLIENT_UPDATE

    @property
    def is_aggregate(self) -> bool:
        """Whether this key refers to an aggregated model."""
        return self.kind is DataKind.AGGREGATE

    @property
    def is_metadata(self) -> bool:
        """Whether this key refers to configuration/performance metadata."""
        return self.kind is DataKind.METADATA

    def __str__(self) -> str:
        if self.is_aggregate:
            return f"aggregate/r{self.round_id}"
        return f"{self.kind.value}/c{self.client_id}/r{self.round_id}"
