"""Canonical keys identifying FL metadata objects across every store.

The Cache Engine of the paper tracks data with ``(client, round) -> function``
mappings (Section 4.2).  We generalise the key slightly so that aggregated
models and per-client configuration metadata share the same key space as
client model updates; this lets the persistent store, the serverless cache,
and every caching policy speak about the same objects.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DataKind(enum.Enum):
    """What kind of FL metadata a key refers to."""

    #: A single client's model update for one round.
    CLIENT_UPDATE = "client_update"
    #: The aggregated (global) model produced at the end of one round.
    AGGREGATE = "aggregate"
    #: Configuration / performance metadata for one client and round
    #: (hyperparameters, resources, accuracy, payouts).
    METADATA = "metadata"


@dataclass(frozen=True, order=True)
class DataKey:
    """Identifies one FL metadata object.

    Attributes
    ----------
    kind:
        The object category (update, aggregate, metadata).
    round_id:
        Training round the object belongs to.
    client_id:
        Producing client, or ``-1`` for round-level objects such as the
        aggregated model.
    """

    kind: DataKind
    round_id: int
    client_id: int = -1

    def __post_init__(self) -> None:
        # Keys are hashed millions of times on the cache hot path (index and
        # location dictionaries); precomputing once per instance avoids
        # re-hashing the fields on every lookup.
        object.__setattr__(self, "_hash", _key_hash(self.kind, self.round_id, self.client_id))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    @classmethod
    def update(cls, client_id: int, round_id: int) -> "DataKey":
        """Key of ``client_id``'s model update in ``round_id`` (interned)."""
        pair = (round_id, client_id)
        key = _UPDATE_INTERN.get(pair)
        if key is None:
            key = object.__new__(cls)
            state = key.__dict__
            state["kind"] = _CLIENT_UPDATE
            state["round_id"] = round_id
            state["client_id"] = client_id
            state["_hash"] = _key_hash(_CLIENT_UPDATE, round_id, client_id)
            _UPDATE_INTERN[pair] = key
        return key

    @classmethod
    def aggregate(cls, round_id: int) -> "DataKey":
        """Key of the aggregated model produced in ``round_id`` (interned)."""
        key = _AGGREGATE_INTERN.get(round_id)
        if key is None:
            key = object.__new__(cls)
            state = key.__dict__
            state["kind"] = _AGGREGATE
            state["round_id"] = round_id
            state["client_id"] = -1
            state["_hash"] = _key_hash(_AGGREGATE, round_id, -1)
            _AGGREGATE_INTERN[round_id] = key
        return key

    @classmethod
    def metadata(cls, client_id: int, round_id: int) -> "DataKey":
        """Key of ``client_id``'s configuration/performance metadata in ``round_id`` (interned)."""
        pair = (round_id, client_id)
        key = _METADATA_INTERN.get(pair)
        if key is None:
            key = object.__new__(cls)
            state = key.__dict__
            state["kind"] = _METADATA
            state["round_id"] = round_id
            state["client_id"] = client_id
            state["_hash"] = _key_hash(_METADATA, round_id, client_id)
            _METADATA_INTERN[pair] = key
        return key

    @property
    def is_update(self) -> bool:
        """Whether this key refers to a client model update."""
        return self.kind is DataKind.CLIENT_UPDATE

    @property
    def is_aggregate(self) -> bool:
        """Whether this key refers to an aggregated model."""
        return self.kind is DataKind.AGGREGATE

    @property
    def is_metadata(self) -> bool:
        """Whether this key refers to configuration/performance metadata."""
        return self.kind is DataKind.METADATA

    def __str__(self) -> str:
        if self.is_aggregate:
            return f"aggregate/r{self.round_id}"
        return f"{self.kind.value}/c{self.client_id}/r{self.round_id}"


#: Enum member aliases (skip the Enum descriptor lookup on the hot path).
_CLIENT_UPDATE = DataKind.CLIENT_UPDATE
_AGGREGATE = DataKind.AGGREGATE
_METADATA = DataKind.METADATA

#: Per-kind mixing constants (arbitrary odd numbers) for the arithmetic hash.
_KIND_SALT = {
    DataKind.CLIENT_UPDATE: 0x9E3779B97F4A7C15,
    DataKind.AGGREGATE: 0xC2B2AE3D27D4EB4F,
    DataKind.METADATA: 0x165667B19E3779F9,
}


def _key_hash(kind: DataKind, round_id: int, client_id: int) -> int:
    """Hash of one key's fields, computed without building a tuple.

    Only needs to be consistent within one process (equal fields ⇒ equal
    hash); ``hash(int)`` is a no-op for machine-size ints, so mixing the
    fields arithmetically is cheaper than hashing an ``(enum, int, int)``
    tuple on every key creation.
    """
    return hash(_KIND_SALT[kind] ^ (round_id * 0x100000001B3) ^ (client_id + 0x7F4A7C15))


#: Interning tables for the factory constructors.  The request hot path
#: rebuilds the same keys for every request; handing back the existing
#: instance lets dict lookups take the identity fast path (no ``__eq__``)
#: and reuses the precomputed hash.  Keys built via ``DataKey(...)``
#: directly still compare equal to interned ones.
_UPDATE_INTERN: dict[tuple[int, int], DataKey] = {}
_AGGREGATE_INTERN: dict[int, DataKey] = {}
_METADATA_INTERN: dict[tuple[int, int], DataKey] = {}
