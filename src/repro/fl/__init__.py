"""Federated-learning substrate: models, clients, rounds, metadata, and job simulation."""

from repro.fl.aggregation import fedavg
from repro.fl.clients import ClientDevice, ClientPopulation
from repro.fl.keys import DataKey, DataKind
from repro.fl.metadata import ClientRoundMetadata, HyperParameters, ResourceProfile
from repro.fl.models import MODEL_ZOO, ModelSpec, ModelUpdate, get_model_spec
from repro.fl.rounds import RoundRecord
from repro.fl.trainer import FLJobSimulator, FLJobState

__all__ = [
    "ClientDevice",
    "ClientPopulation",
    "ClientRoundMetadata",
    "DataKey",
    "DataKind",
    "FLJobSimulator",
    "FLJobState",
    "HyperParameters",
    "MODEL_ZOO",
    "ModelSpec",
    "ModelUpdate",
    "ResourceProfile",
    "RoundRecord",
    "fedavg",
    "get_model_spec",
]
