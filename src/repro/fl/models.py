"""The cross-device FL model zoo and the model-update payload type.

Figure 19 of the paper measures the serialized memory footprint of 23 models
commonly used in cross-device FL (average ~161 MB) to argue that whole client
updates fit comfortably inside a serverless function's 10 GB memory.
:data:`MODEL_ZOO` reproduces that catalogue using the serialized sizes of the
corresponding ``torchvision`` checkpoints.

A :class:`ModelUpdate` carries (a) a *reduced* dense weight vector that the
non-training workloads actually compute on and (b) the model's *logical*
serialized size, which every latency/cost model uses for data movement.  This
is the substitution documented in DESIGN.md: workload outputs depend on the
weight values, while latency and cost depend only on the byte size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.units import mb_to_bytes


@dataclass(frozen=True)
class ModelSpec:
    """Static description of a model architecture used in cross-device FL."""

    name: str
    #: Serialized checkpoint size in MB (float32 weights).
    size_mb: float
    #: Approximate parameter count in millions (informational).
    params_millions: float
    #: Model family, used for grouping in reports.
    family: str = "cnn"

    @property
    def size_bytes(self) -> int:
        """Serialized size in bytes."""
        return mb_to_bytes(self.size_mb)

    def __post_init__(self) -> None:
        if self.size_mb <= 0:
            raise ConfigurationError(f"model {self.name}: size_mb must be positive")
        if self.params_millions <= 0:
            raise ConfigurationError(f"model {self.name}: params_millions must be positive")


def _spec(name: str, size_mb: float, params_millions: float, family: str) -> ModelSpec:
    return ModelSpec(name=name, size_mb=size_mb, params_millions=params_millions, family=family)


#: The 23-model catalogue of Figure 19 (torchvision serialized checkpoint sizes).
MODEL_ZOO: dict[str, ModelSpec] = {
    spec.name: spec
    for spec in [
        _spec("resnet18", 44.7, 11.7, "resnet"),
        _spec("resnet34", 83.3, 21.8, "resnet"),
        _spec("resnet50", 97.8, 25.6, "resnet"),
        _spec("resnet101", 170.5, 44.5, "resnet"),
        _spec("resnet152", 230.5, 60.2, "resnet"),
        _spec("resnext50_32x4d", 95.8, 25.0, "resnet"),
        _spec("resnext101_32x8d", 339.6, 88.8, "resnet"),
        _spec("wide_resnet50_2", 131.8, 68.9, "resnet"),
        _spec("wide_resnet101_2", 242.9, 126.9, "resnet"),
        _spec("densenet121", 30.8, 8.0, "densenet"),
        _spec("densenet161", 110.4, 28.7, "densenet"),
        _spec("densenet169", 54.7, 14.2, "densenet"),
        _spec("densenet201", 77.4, 20.0, "densenet"),
        _spec("alexnet", 233.1, 61.1, "classic"),
        _spec("vgg13", 507.5, 133.0, "classic"),
        _spec("vgg16", 527.8, 138.4, "classic"),
        _spec("inception_v3", 103.9, 27.2, "inception"),
        _spec("mobilenet_v2", 13.6, 3.5, "mobile"),
        _spec("mobilenet_v3_small", 9.8, 2.5, "mobile"),
        _spec("shufflenet_v2", 8.8, 2.3, "mobile"),
        _spec("efficientnet_b0", 20.5, 5.3, "efficientnet"),
        _spec("efficientnet_v2_small", 82.7, 21.5, "efficientnet"),
        _spec("swin_transformer_v2_tiny", 110.3, 28.4, "transformer"),
    ]
}

#: The four models used throughout the paper's evaluation (Section 5.1).
EVALUATION_MODELS: tuple[str, ...] = (
    "resnet18",
    "mobilenet_v3_small",
    "efficientnet_v2_small",
    "swin_transformer_v2_tiny",
)


def get_model_spec(name: str) -> ModelSpec:
    """Look up a model by name.

    Raises
    ------
    KeyError
        If ``name`` is not part of :data:`MODEL_ZOO`.
    """
    try:
        return MODEL_ZOO[name]
    except KeyError as exc:
        known = ", ".join(sorted(MODEL_ZOO))
        raise KeyError(f"unknown model {name!r}; known models: {known}") from exc


def average_model_size_mb() -> float:
    """Average serialized size of the zoo in MB (paper reports ~161 MB)."""
    return float(np.mean([spec.size_mb for spec in MODEL_ZOO.values()]))


@dataclass(frozen=True)
class ModelUpdate:
    """One client's model update (or an aggregated global model) for one round.

    Attributes
    ----------
    client_id:
        The producing client, or ``-1`` for an aggregated model.
    round_id:
        Training round the update belongs to.
    model_name:
        Architecture name (must exist in :data:`MODEL_ZOO`).
    weights:
        Reduced dense weight vector used by non-training computations.
    size_bytes:
        Logical serialized size used by every transfer-latency/cost model.
    metrics:
        Training-side metrics attached by the client (loss, accuracy,
        number of local samples), consumed by several workloads.
    """

    client_id: int
    round_id: int
    model_name: str
    weights: np.ndarray
    size_bytes: int
    metrics: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.weights.ndim != 1:
            raise ConfigurationError("update weights must be a 1-D reduced vector")
        if self.size_bytes <= 0:
            raise ConfigurationError("size_bytes must be positive")

    @property
    def is_aggregate(self) -> bool:
        """Whether this update is an aggregated (global) model."""
        return self.client_id == -1

    @property
    def dim(self) -> int:
        """Dimensionality of the reduced weight vector."""
        return int(self.weights.shape[0])

    def l2_norm(self) -> float:
        """Euclidean norm of the reduced weight vector."""
        return float(np.linalg.norm(self.weights))

    def distance_to(self, other: "ModelUpdate") -> float:
        """Euclidean distance between two updates' reduced weight vectors."""
        if self.dim != other.dim:
            raise ValueError(
                f"cannot compare updates of different dimensionality ({self.dim} vs {other.dim})"
            )
        return float(np.linalg.norm(self.weights - other.weights))

    def cosine_similarity(self, other: "ModelUpdate") -> float:
        """Cosine similarity between two updates' reduced weight vectors."""
        if self.dim != other.dim:
            raise ValueError(
                f"cannot compare updates of different dimensionality ({self.dim} vs {other.dim})"
            )
        denom = np.linalg.norm(self.weights) * np.linalg.norm(other.weights)
        if denom == 0:
            return 0.0
        return float(np.dot(self.weights, other.weights) / denom)
