"""Round records: the unit of FL metadata ingested by FLStore.

At the end of every training round, the aggregator receives one model update
per participating client plus per-client configuration/performance metadata,
and produces the aggregated global model.  FLStore's Cache Engine receives
exactly this bundle (Step 1 of Figure 6); a :class:`RoundRecord` packages it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.fl.keys import DataKey
from repro.fl.metadata import ClientRoundMetadata
from repro.fl.models import ModelUpdate


@dataclass(frozen=True)
class RoundRecord:
    """Everything produced by one FL training round."""

    round_id: int
    #: ``client_id -> ModelUpdate`` for every participating client.
    updates: Mapping[int, ModelUpdate]
    #: The aggregated (global) model of this round.
    aggregate: ModelUpdate
    #: ``client_id -> ClientRoundMetadata`` for every client that reported
    #: metadata this round (participants plus availability reports).
    metadata: Mapping[int, ClientRoundMetadata] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for client_id, update in self.updates.items():
            if update.round_id != self.round_id:
                raise ValueError(
                    f"update of client {client_id} belongs to round {update.round_id}, "
                    f"not {self.round_id}"
                )
        if self.aggregate.round_id != self.round_id:
            raise ValueError("aggregate model belongs to a different round")

    @property
    def participant_ids(self) -> list[int]:
        """Sorted identifiers of the clients that submitted updates."""
        return sorted(self.updates)

    @property
    def num_participants(self) -> int:
        """Number of clients that submitted updates."""
        return len(self.updates)

    @property
    def update_bytes(self) -> int:
        """Total logical size of this round's client updates."""
        return sum(u.size_bytes for u in self.updates.values())

    @property
    def total_bytes(self) -> int:
        """Total logical size of updates, aggregate, and metadata."""
        metadata_bytes = sum(m.size_bytes for m in self.metadata.values())
        return self.update_bytes + self.aggregate.size_bytes + metadata_bytes

    # ------------------------------------------------------------- key views

    def update_keys(self) -> list[DataKey]:
        """Keys of every client update in this round."""
        return [DataKey.update(cid, self.round_id) for cid in self.participant_ids]

    def metadata_keys(self) -> list[DataKey]:
        """Keys of every metadata record in this round."""
        return [DataKey.metadata(cid, self.round_id) for cid in sorted(self.metadata)]

    def aggregate_key(self) -> DataKey:
        """Key of this round's aggregated model."""
        return DataKey.aggregate(self.round_id)

    def all_keys(self) -> list[DataKey]:
        """Every key produced by this round (updates, aggregate, metadata)."""
        return [*self.update_keys(), self.aggregate_key(), *self.metadata_keys()]

    def objects(self) -> Iterator[tuple[DataKey, object]]:
        """Iterate over ``(key, object)`` pairs for everything in this round."""
        for cid in self.participant_ids:
            yield DataKey.update(cid, self.round_id), self.updates[cid]
        yield self.aggregate_key(), self.aggregate
        for cid in sorted(self.metadata):
            yield DataKey.metadata(cid, self.round_id), self.metadata[cid]

    def get(self, key: DataKey) -> object:
        """Return the object identified by ``key``.

        Raises
        ------
        KeyError
            If the key does not belong to this round or the client did not
            participate.
        """
        if key.round_id != self.round_id:
            raise KeyError(f"{key} does not belong to round {self.round_id}")
        if key.is_aggregate:
            return self.aggregate
        if key.is_update:
            return self.updates[key.client_id]
        return self.metadata[key.client_id]
