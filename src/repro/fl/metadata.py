"""Per-client, per-round configuration and performance metadata.

Policy P4 of the paper caches *metadata and hyperparameters* — everything the
scheduling, hyperparameter-tuning, incentive, and payout workloads consume —
separately from the (much larger) model updates.  The dataclasses below model
that metadata stream.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Mapping

from repro.common.errors import ConfigurationError
from repro.common.units import KB


@dataclass(frozen=True)
class HyperParameters:
    """Hyperparameters a client used for one round of local training."""

    learning_rate: float = 0.01
    local_epochs: int = 5
    batch_size: int = 32
    momentum: float = 0.9
    weight_decay: float = 5e-4
    optimizer: str = "sgd"

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if self.local_epochs <= 0:
            raise ConfigurationError("local_epochs must be positive")
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")

    def as_dict(self) -> dict[str, float | int | str]:
        """Plain-dict view (used by the hyperparameter-tuning workload)."""
        return asdict(self)


@dataclass(frozen=True)
class ResourceProfile:
    """Device resources reported by a client for scheduling decisions."""

    cpu_ghz: float = 2.0
    memory_gb: float = 4.0
    bandwidth_mbps: float = 20.0
    battery_fraction: float = 1.0
    #: Probability the client is online when selected (used by schedulers).
    availability: float = 0.9

    def __post_init__(self) -> None:
        if self.cpu_ghz <= 0 or self.memory_gb <= 0 or self.bandwidth_mbps <= 0:
            raise ConfigurationError("resource quantities must be positive")
        if not 0.0 <= self.battery_fraction <= 1.0:
            raise ConfigurationError("battery_fraction must be in [0, 1]")
        if not 0.0 <= self.availability <= 1.0:
            raise ConfigurationError("availability must be in [0, 1]")

    def capability_score(self) -> float:
        """A scalar device-capability score used by performance-aware scheduling."""
        return self.cpu_ghz * 0.4 + self.memory_gb * 0.1 + self.bandwidth_mbps * 0.02 + self.availability


@dataclass(frozen=True)
class ClientRoundMetadata:
    """Everything recorded about one client's participation in one round.

    This is the object cached by policy P4 and consumed by the scheduling,
    incentive, reputation, and hyperparameter-tuning workloads.  Its logical
    size is a few KB — tiny compared to model updates — which is why P4 can
    afford to keep a sliding window of recent rounds for every client.
    """

    client_id: int
    round_id: int
    hyperparameters: HyperParameters
    resources: ResourceProfile
    #: Accuracy of the client's local model on its held-out split.
    local_accuracy: float = 0.0
    #: Training loss after local training.
    local_loss: float = 1.0
    #: Seconds of on-device training.
    train_seconds: float = 0.0
    #: Seconds spent uploading the update.
    upload_seconds: float = 0.0
    #: Number of local training samples (FedAvg weighting).
    num_samples: int = 1
    #: Whether the client was selected for training this round.
    selected: bool = True
    #: Whether the client dropped out before finishing the round.
    dropped_out: bool = False
    #: Cumulative incentive payout to this client (dollars).
    payout_dollars: float = 0.0
    extra: Mapping[str, float] = field(default_factory=dict)

    #: Serialized size of a metadata record (a few KB of JSON in practice).
    size_bytes: int = 4 * KB

    def __post_init__(self) -> None:
        if self.num_samples <= 0:
            raise ConfigurationError("num_samples must be positive")
        if not 0.0 <= self.local_accuracy <= 1.0:
            raise ConfigurationError("local_accuracy must be in [0, 1]")

    @property
    def round_duration_seconds(self) -> float:
        """Total wall-clock contribution of this client to the round."""
        return self.train_seconds + self.upload_seconds
