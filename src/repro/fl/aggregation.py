"""Model-update aggregation (FedAvg and robust variants).

FLStore treats aggregation as just another workload that can run on the
serverless cache (Section 3, "Serverless aggregators"); the reproduction
provides FedAvg plus two robust aggregators used by the malicious-filtering
and debugging workloads as references.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.fl.models import ModelUpdate


def _validate(updates: Sequence[ModelUpdate]) -> None:
    if not updates:
        raise ValueError("cannot aggregate an empty list of updates")
    dims = {u.dim for u in updates}
    if len(dims) != 1:
        raise ValueError(f"updates have inconsistent dimensionality: {sorted(dims)}")
    names = {u.model_name for u in updates}
    if len(names) != 1:
        raise ValueError(f"updates come from different model architectures: {sorted(names)}")


def fedavg(updates: Sequence[ModelUpdate], round_id: int | None = None) -> ModelUpdate:
    """Sample-weighted federated averaging (McMahan et al., 2017).

    Each update is weighted by its ``num_samples`` metric (defaulting to 1).
    The result is an aggregate :class:`ModelUpdate` with ``client_id == -1``.
    """
    _validate(updates)
    weights = np.array([float(u.metrics.get("num_samples", 1.0)) for u in updates])
    weights = weights / weights.sum()
    stacked = np.stack([u.weights for u in updates])
    averaged = np.einsum("i,ij->j", weights, stacked)
    reference = updates[0]
    return ModelUpdate(
        client_id=-1,
        round_id=round_id if round_id is not None else reference.round_id,
        model_name=reference.model_name,
        weights=averaged,
        size_bytes=reference.size_bytes,
        metrics={"num_samples": float(sum(u.metrics.get("num_samples", 1.0) for u in updates))},
    )


def coordinate_median(updates: Sequence[ModelUpdate], round_id: int | None = None) -> ModelUpdate:
    """Coordinate-wise median aggregation, robust to a minority of outliers."""
    _validate(updates)
    stacked = np.stack([u.weights for u in updates])
    median = np.median(stacked, axis=0)
    reference = updates[0]
    return ModelUpdate(
        client_id=-1,
        round_id=round_id if round_id is not None else reference.round_id,
        model_name=reference.model_name,
        weights=median,
        size_bytes=reference.size_bytes,
        metrics={"aggregator": 1.0},
    )


def trimmed_mean(
    updates: Sequence[ModelUpdate],
    trim_fraction: float = 0.1,
    round_id: int | None = None,
) -> ModelUpdate:
    """Coordinate-wise trimmed mean, dropping the ``trim_fraction`` extremes per side."""
    _validate(updates)
    if not 0.0 <= trim_fraction < 0.5:
        raise ValueError("trim_fraction must be in [0, 0.5)")
    stacked = np.stack([u.weights for u in updates])
    n = stacked.shape[0]
    k = int(np.floor(trim_fraction * n))
    sorted_values = np.sort(stacked, axis=0)
    trimmed = sorted_values[k : n - k] if n - 2 * k > 0 else sorted_values
    mean = trimmed.mean(axis=0)
    reference = updates[0]
    return ModelUpdate(
        client_id=-1,
        round_id=round_id if round_id is not None else reference.round_id,
        model_name=reference.model_name,
        weights=mean,
        size_bytes=reference.size_bytes,
        metrics={"aggregator": 2.0},
    )
