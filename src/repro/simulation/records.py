"""Latency and cost record types shared by every substrate and by FLStore.

The paper's evaluation decomposes end-to-end request handling into a
*communication* part (moving metadata between the data plane and the compute
plane) and a *computation* part (executing the non-training workload), and
decomposes cost into data-transfer, request, compute, and provisioned-service
components.  The two dataclasses below carry exactly that decomposition so
that every experiment can report the same breakups as Figures 15-17.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class LatencyBreakdown:
    """Latency of one operation or one request, split by origin (seconds)."""

    communication_seconds: float = 0.0
    computation_seconds: float = 0.0
    queueing_seconds: float = 0.0
    cold_start_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Total latency (sum of every component)."""
        return (
            self.communication_seconds
            + self.computation_seconds
            + self.queueing_seconds
            + self.cold_start_seconds
        )

    def __add__(self, other: "LatencyBreakdown") -> "LatencyBreakdown":
        if not isinstance(other, LatencyBreakdown):
            return NotImplemented
        return LatencyBreakdown(
            communication_seconds=self.communication_seconds + other.communication_seconds,
            computation_seconds=self.computation_seconds + other.computation_seconds,
            queueing_seconds=self.queueing_seconds + other.queueing_seconds,
            cold_start_seconds=self.cold_start_seconds + other.cold_start_seconds,
        )

    def scaled(self, factor: float) -> "LatencyBreakdown":
        """Return a copy with every component multiplied by ``factor``."""
        return LatencyBreakdown(
            communication_seconds=self.communication_seconds * factor,
            computation_seconds=self.computation_seconds * factor,
            queueing_seconds=self.queueing_seconds * factor,
            cold_start_seconds=self.cold_start_seconds * factor,
        )

    @classmethod
    def zero(cls) -> "LatencyBreakdown":
        """The additive identity."""
        return cls()

    @classmethod
    def communication(cls, seconds: float) -> "LatencyBreakdown":
        """A breakdown consisting only of communication latency."""
        return cls(communication_seconds=seconds)

    @classmethod
    def computation(cls, seconds: float) -> "LatencyBreakdown":
        """A breakdown consisting only of computation latency."""
        return cls(computation_seconds=seconds)


@dataclass(frozen=True)
class CostBreakdown:
    """Dollar cost of one operation or one request, split by origin."""

    transfer_dollars: float = 0.0
    request_dollars: float = 0.0
    compute_dollars: float = 0.0
    storage_dollars: float = 0.0
    #: Always-on provisioned services attributed to this operation
    #: (aggregator instance hours, cache node hours, keep-alive pings).
    provisioned_dollars: float = 0.0

    @property
    def total_dollars(self) -> float:
        """Total cost (sum of every component)."""
        return (
            self.transfer_dollars
            + self.request_dollars
            + self.compute_dollars
            + self.storage_dollars
            + self.provisioned_dollars
        )

    @property
    def communication_dollars(self) -> float:
        """Cost attributable to moving data (transfer + per-request charges)."""
        return self.transfer_dollars + self.request_dollars

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        if not isinstance(other, CostBreakdown):
            return NotImplemented
        return CostBreakdown(
            transfer_dollars=self.transfer_dollars + other.transfer_dollars,
            request_dollars=self.request_dollars + other.request_dollars,
            compute_dollars=self.compute_dollars + other.compute_dollars,
            storage_dollars=self.storage_dollars + other.storage_dollars,
            provisioned_dollars=self.provisioned_dollars + other.provisioned_dollars,
        )

    def scaled(self, factor: float) -> "CostBreakdown":
        """Return a copy with every component multiplied by ``factor``."""
        return CostBreakdown(
            transfer_dollars=self.transfer_dollars * factor,
            request_dollars=self.request_dollars * factor,
            compute_dollars=self.compute_dollars * factor,
            storage_dollars=self.storage_dollars * factor,
            provisioned_dollars=self.provisioned_dollars * factor,
        )

    @classmethod
    def zero(cls) -> "CostBreakdown":
        """The additive identity."""
        return cls()


class LatencyAccumulator:
    """Mutable running sum of :class:`LatencyBreakdown` components.

    The request hot path adds dozens of breakdowns per request; summing into
    plain float slots avoids allocating an intermediate frozen dataclass per
    addition.  Components are accumulated in the same order ``__add__`` sums
    them, so ``finalize()`` is bit-identical to folding with ``+``.
    """

    __slots__ = ("communication_seconds", "computation_seconds", "queueing_seconds", "cold_start_seconds")

    def __init__(self, initial: LatencyBreakdown | None = None) -> None:
        self.communication_seconds = 0.0
        self.computation_seconds = 0.0
        self.queueing_seconds = 0.0
        self.cold_start_seconds = 0.0
        if initial is not None:
            self.add(initial)

    def add(self, other: LatencyBreakdown) -> "LatencyAccumulator":
        self.communication_seconds += other.communication_seconds
        self.computation_seconds += other.computation_seconds
        self.queueing_seconds += other.queueing_seconds
        self.cold_start_seconds += other.cold_start_seconds
        return self

    def add_communication(self, seconds: float) -> "LatencyAccumulator":
        self.communication_seconds += seconds
        return self

    def add_queueing(self, seconds: float) -> "LatencyAccumulator":
        self.queueing_seconds += seconds
        return self

    @property
    def total_seconds(self) -> float:
        return (
            self.communication_seconds
            + self.computation_seconds
            + self.queueing_seconds
            + self.cold_start_seconds
        )

    def finalize(self) -> LatencyBreakdown:
        """Freeze the running sums into an immutable breakdown."""
        return LatencyBreakdown(
            communication_seconds=self.communication_seconds,
            computation_seconds=self.computation_seconds,
            queueing_seconds=self.queueing_seconds,
            cold_start_seconds=self.cold_start_seconds,
        )


class CostAccumulator:
    """Mutable running sum of :class:`CostBreakdown` components."""

    __slots__ = (
        "transfer_dollars",
        "request_dollars",
        "compute_dollars",
        "storage_dollars",
        "provisioned_dollars",
    )

    def __init__(self, initial: CostBreakdown | None = None) -> None:
        self.transfer_dollars = 0.0
        self.request_dollars = 0.0
        self.compute_dollars = 0.0
        self.storage_dollars = 0.0
        self.provisioned_dollars = 0.0
        if initial is not None:
            self.add(initial)

    def add(self, other: CostBreakdown) -> "CostAccumulator":
        self.transfer_dollars += other.transfer_dollars
        self.request_dollars += other.request_dollars
        self.compute_dollars += other.compute_dollars
        self.storage_dollars += other.storage_dollars
        self.provisioned_dollars += other.provisioned_dollars
        return self

    def finalize(self) -> CostBreakdown:
        """Freeze the running sums into an immutable breakdown."""
        return CostBreakdown(
            transfer_dollars=self.transfer_dollars,
            request_dollars=self.request_dollars,
            compute_dollars=self.compute_dollars,
            storage_dollars=self.storage_dollars,
            provisioned_dollars=self.provisioned_dollars,
        )


@dataclass(slots=True)
class OperationResult:
    """Return value of a storage or compute operation in a substrate.

    Attributes
    ----------
    value:
        The payload (fetched object, computation output) or ``None``.
    latency:
        Latency incurred by the operation.
    cost:
        Dollar cost incurred by the operation.
    """

    value: Any = None
    latency: LatencyBreakdown = field(default_factory=LatencyBreakdown)
    cost: CostBreakdown = field(default_factory=CostBreakdown)

    def merge(self, other: "OperationResult") -> "OperationResult":
        """Combine two results, keeping the *other* value and summing metrics."""
        return OperationResult(
            value=other.value,
            latency=self.latency + other.latency,
            cost=self.cost + other.cost,
        )
