"""Per-request metric collection and aggregation.

The experiment harness runs identical non-training request traces through
FLStore and the baselines and records one :class:`RequestRecord` per served
request.  :class:`MetricsCollector` aggregates them into the statistics that
appear in the paper's figures: per-request latency/cost distributions, total
time and cost over a trace, communication/computation breakups, and hit
rates.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.simulation.records import CostBreakdown, LatencyBreakdown


@dataclass(frozen=True, slots=True)
class RequestRecord:
    """Outcome of one non-training request served by some system."""

    request_id: str
    system: str
    workload: str
    model_name: str
    round_id: int
    latency: LatencyBreakdown
    cost: CostBreakdown
    cache_hits: int = 0
    cache_misses: int = 0
    client_id: int | None = None
    extra: Mapping[str, float] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Fraction of required objects served from the cache (1.0 if nothing was required)."""
        total = self.cache_hits + self.cache_misses
        if total == 0:
            return 1.0
        return self.cache_hits / total


@dataclass(frozen=True)
class MetricSummary:
    """Aggregate statistics over a set of request records."""

    count: int
    mean_latency_seconds: float
    median_latency_seconds: float
    p95_latency_seconds: float
    max_latency_seconds: float
    mean_cost_dollars: float
    total_latency_seconds: float
    total_cost_dollars: float
    total_communication_seconds: float
    total_computation_seconds: float
    total_communication_dollars: float
    total_compute_dollars: float
    hit_rate: float

    @property
    def communication_fraction(self) -> float:
        """Fraction of total latency spent in communication."""
        if self.total_latency_seconds == 0:
            return 0.0
        return self.total_communication_seconds / self.total_latency_seconds


def summarize_records(records: Sequence[RequestRecord]) -> MetricSummary:
    """Compute a :class:`MetricSummary` for ``records``.

    Raises
    ------
    ValueError
        If ``records`` is empty.
    """
    if not records:
        raise ValueError("cannot summarize an empty record sequence")
    latencies = np.array([r.latency.total_seconds for r in records], dtype=float)
    costs = np.array([r.cost.total_dollars for r in records], dtype=float)
    comm_lat = float(sum(r.latency.communication_seconds for r in records))
    comp_lat = float(sum(r.latency.computation_seconds for r in records))
    comm_cost = float(sum(r.cost.communication_dollars for r in records))
    compute_cost = float(sum(r.cost.compute_dollars for r in records))
    hits = sum(r.cache_hits for r in records)
    misses = sum(r.cache_misses for r in records)
    hit_rate = hits / (hits + misses) if (hits + misses) > 0 else 1.0
    return MetricSummary(
        count=len(records),
        mean_latency_seconds=float(latencies.mean()),
        median_latency_seconds=float(np.median(latencies)),
        p95_latency_seconds=float(np.percentile(latencies, 95)),
        max_latency_seconds=float(latencies.max()),
        mean_cost_dollars=float(costs.mean()),
        total_latency_seconds=float(latencies.sum()),
        total_cost_dollars=float(costs.sum()),
        total_communication_seconds=comm_lat,
        total_computation_seconds=comp_lat,
        total_communication_dollars=comm_cost,
        total_compute_dollars=compute_cost,
        hit_rate=hit_rate,
    )


class MetricsCollector:
    """Accumulates request records and produces grouped summaries."""

    def __init__(self) -> None:
        self._records: list[RequestRecord] = []

    def record(self, record: RequestRecord) -> None:
        """Append one request record."""
        self._records.append(record)

    def extend(self, records: Iterable[RequestRecord]) -> None:
        """Append many request records."""
        self._records.extend(records)

    @property
    def records(self) -> list[RequestRecord]:
        """All records collected so far (in insertion order)."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        """Drop every collected record."""
        self._records.clear()

    def summary(self) -> MetricSummary:
        """Summary over every collected record."""
        return summarize_records(self._records)

    def by_workload(self) -> dict[str, MetricSummary]:
        """Summaries grouped by workload name."""
        return self._grouped(lambda r: r.workload)

    def by_system(self) -> dict[str, MetricSummary]:
        """Summaries grouped by serving system (e.g. ``flstore``, ``objstore-agg``)."""
        return self._grouped(lambda r: r.system)

    def by_model(self) -> dict[str, MetricSummary]:
        """Summaries grouped by model name."""
        return self._grouped(lambda r: r.model_name)

    def by_system_and_workload(self) -> dict[tuple[str, str], MetricSummary]:
        """Summaries grouped by (system, workload)."""
        return self._grouped(lambda r: (r.system, r.workload))

    def _grouped(self, key) -> dict:
        groups: dict = defaultdict(list)
        for record in self._records:
            groups[key(record)].append(record)
        return {k: summarize_records(v) for k, v in groups.items()}
