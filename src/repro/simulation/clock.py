"""A virtual clock for the storage/compute simulation.

The simulator does not run a full discrete-event engine; storage and compute
operations return analytic latency values.  The clock exists so that
components which accrue *time-based* costs (always-on instances, provisioned
cache nodes, keep-alive pings) and policies that reason about request
ordering have a shared notion of "now".
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SimClock:
    """Monotonic virtual clock measured in seconds.

    Examples
    --------
    >>> clock = SimClock()
    >>> clock.now()
    0.0
    >>> clock.advance(2.5)
    2.5
    >>> clock.now()
    2.5
    """

    _now: float = 0.0
    _epoch: float = field(default=0.0, repr=False)

    def now(self) -> float:
        """Return the current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot advance the clock by a negative amount ({seconds})")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Advance the clock to ``timestamp`` if it is in the future."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def elapsed(self) -> float:
        """Seconds elapsed since the clock was created (or last reset).

        Examples
        --------
        >>> clock = SimClock()
        >>> _ = clock.advance(4.0)
        >>> clock.elapsed()
        4.0
        >>> clock.reset(10.0)
        >>> clock.elapsed()
        0.0
        >>> _ = clock.advance(2.5)
        >>> clock.elapsed()
        2.5
        """
        return self._now - self._epoch

    def reset(self, epoch: float = 0.0) -> None:
        """Reset the clock to ``epoch`` (zero by default).

        Passing an ``epoch`` rebases the clock mid-experiment: ``now()``
        jumps to ``epoch`` and ``elapsed()`` restarts from zero there, so
        time-based accrual (keep-alive billing, policy recency) can be
        measured per phase without discarding the absolute timeline.

        Examples
        --------
        >>> clock = SimClock()
        >>> _ = clock.advance(3.0)
        >>> clock.reset()
        >>> (clock.now(), clock.elapsed())
        (0.0, 0.0)
        >>> clock.reset(100.0)
        >>> clock.now()
        100.0
        >>> clock.elapsed()
        0.0
        """
        self._now = float(epoch)
        self._epoch = float(epoch)
