"""Simulation primitives: virtual clock, latency/cost records, metrics collection."""

from repro.simulation.clock import SimClock
from repro.simulation.metrics import MetricsCollector, RequestRecord, summarize_records
from repro.simulation.records import CostBreakdown, LatencyBreakdown, OperationResult

__all__ = [
    "CostBreakdown",
    "LatencyBreakdown",
    "MetricsCollector",
    "OperationResult",
    "RequestRecord",
    "SimClock",
    "summarize_records",
]
