"""Default cloud pricing catalogue and its sources.

The numeric values live in :class:`repro.config.PricingConfig` so they can be
swept in sensitivity analyses; this module documents their provenance and
exposes the default instance used throughout the package.

Sources (AWS us-east-1 public list prices, 2024, as referenced by the paper):

* **S3** — $0.005 per 1,000 PUT, $0.0004 per 1,000 GET, $0.023/GB-month
  storage, $0.09/GB data transfer out to another service over the public
  endpoint.
* **ElastiCache** — cache.r6g.xlarge at $0.326/hour, 26.32 GiB per node.
* **SageMaker** — ml.m5.4xlarge at $0.922/hour (the aggregator instance used
  in Section 5.1).
* **Lambda** — $0.0000166667 per GB-second, $0.20 per million requests,
  $0.0087 per instance-month of keep-alive pings (from InfiniStore, cited in
  Section 4.5 of the paper).
"""

from __future__ import annotations

from repro.config import PricingConfig

#: Default pricing used by every experiment unless a sweep overrides it.
DEFAULT_PRICING = PricingConfig()


def pricing_summary(pricing: PricingConfig | None = None) -> dict[str, float]:
    """Return the pricing catalogue as a flat ``name -> dollars`` mapping."""
    p = pricing or DEFAULT_PRICING
    return {
        "objstore_put_request": p.objstore_put_request_cost,
        "objstore_get_request": p.objstore_get_request_cost,
        "objstore_storage_per_gb_month": p.objstore_storage_cost_per_gb_month,
        "objstore_transfer_per_gb": p.objstore_transfer_cost_per_gb,
        "cache_node_per_hour": p.cache_node_cost_per_hour,
        "cache_transfer_per_gb": p.cache_transfer_cost_per_gb,
        "aggregator_per_hour": p.aggregator_cost_per_hour,
        "lambda_per_gb_second": p.lambda_cost_per_gb_second,
        "lambda_per_million_requests": p.lambda_cost_per_million_requests,
        "lambda_keepalive_per_instance_month": p.lambda_keepalive_cost_per_instance_month,
    }


__all__ = ["DEFAULT_PRICING", "pricing_summary"]
