"""Cloud service substrates: object store, in-memory cache service, dedicated instance."""

from repro.cloud.object_store import ObjectStore
from repro.cloud.memory_cache import MemoryCacheService
from repro.cloud.instance import DedicatedInstance
from repro.cloud.payload import payload_size_bytes

__all__ = [
    "DedicatedInstance",
    "MemoryCacheService",
    "ObjectStore",
    "payload_size_bytes",
]
