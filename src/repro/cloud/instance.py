"""A dedicated always-on aggregator instance (AWS SageMaker ml.m5.4xlarge equivalent).

In the baselines of Figure 3, this instance forms the *compute plane*: it
receives non-training requests, fetches the required FL metadata from the
data plane (object store or cloud cache), executes the workload, and writes
results back.  Its cost model is a simple hourly rate attributed to requests
in proportion to the time they occupy the instance, plus an always-on
component accounted for by the experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.config import PricingConfig
from repro.simulation.records import CostBreakdown, LatencyBreakdown, OperationResult


@dataclass
class InstanceStats:
    """Cumulative execution counters for a dedicated instance."""

    executions: int = 0
    busy_seconds: float = 0.0


class DedicatedInstance:
    """An always-on cloud server with a fixed hourly price.

    Parameters
    ----------
    pricing:
        Cloud pricing catalogue (uses ``aggregator_cost_per_hour``).
    relative_speed:
        Multiplier on workload compute time relative to the reference
        serverless function (a 16-vCPU instance is faster than a 1-2 vCPU
        function; the default 0.5 halves compute time).
    """

    def __init__(self, pricing: PricingConfig, relative_speed: float = 0.5, name: str = "aggregator") -> None:
        if relative_speed <= 0:
            raise ConfigurationError("relative_speed must be positive")
        self.name = name
        self._pricing = pricing
        self._relative_speed = relative_speed
        self.stats = InstanceStats()
        # Workload compute times are discrete (per workload and key count),
        # so the frozen latency/cost pairs are memoized per duration.
        self._execute_effects: dict[float, tuple[float, LatencyBreakdown, CostBreakdown]] = {}
        self._idle_effects: dict[float, CostBreakdown] = {}

    def execute(self, compute_seconds: float) -> OperationResult:
        """Run a workload that needs ``compute_seconds`` of reference compute time.

        Returns the computation latency on this instance and the share of the
        hourly instance price consumed while busy.
        """
        if compute_seconds < 0:
            raise ValueError("compute_seconds must be non-negative")
        effects = self._execute_effects.get(compute_seconds)
        if effects is None:
            busy = compute_seconds * self._relative_speed
            latency = LatencyBreakdown.computation(busy)
            cost = CostBreakdown(compute_dollars=busy / 3600.0 * self._pricing.aggregator_cost_per_hour)
            effects = (busy, latency, cost)
            self._execute_effects[compute_seconds] = effects
        busy, latency, cost = effects
        self.stats.executions += 1
        self.stats.busy_seconds += busy
        return OperationResult(value=None, latency=latency, cost=cost)

    def occupancy_cost(self, seconds: float) -> CostBreakdown:
        """Cost of the instance being tied up for ``seconds`` (e.g. waiting on I/O).

        This is the mechanism behind the paper's observation that the
        baselines' communication bottleneck translates directly into dollar
        cost: while the aggregator waits for metadata to arrive from the data
        plane it is still billed by the hour.
        """
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        return CostBreakdown(compute_dollars=seconds / 3600.0 * self._pricing.aggregator_cost_per_hour)

    def idle_cost(self, duration_hours: float) -> CostBreakdown:
        """Cost of keeping the instance provisioned for ``duration_hours``.

        The paper attributes this always-on cost to non-training serving
        because the aggregator must stay up (and is often kept up long after
        training ends) to answer debugging/auditing requests.
        """
        effects = self._idle_effects.get(duration_hours)
        if effects is not None:
            return effects
        effects = CostBreakdown(
            provisioned_dollars=duration_hours * self._pricing.aggregator_cost_per_hour
        )
        self._idle_effects[duration_hours] = effects
        return effects

    @property
    def relative_speed(self) -> float:
        """Compute-time multiplier relative to the reference serverless function."""
        return self._relative_speed
