"""An ElastiCache-like provisioned in-memory cache service.

This is the data plane of the paper's *Cache-Agg* baseline: a Redis/Memcached
cluster that is faster than the object store but (a) still sits across the
network from the aggregator's compute plane and (b) charges per provisioned
node-hour whether or not requests arrive.  Both properties drive the paper's
Figure 9 / Figure 17 results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Hashable, Iterator

from repro.cloud.payload import payload_size_bytes
from repro.common.errors import DataNotFoundError
from repro.common.units import GB
from repro.config import PricingConfig
from repro.network.costs import TransferCostModel
from repro.network.model import NetworkLink
from repro.simulation.records import CostBreakdown, LatencyBreakdown, OperationResult


@dataclass
class _CachedObject:
    value: Any
    size_bytes: int


@dataclass
class MemoryCacheStats:
    """Cumulative operation counters for the cache service."""

    puts: int = 0
    gets: int = 0
    missed_gets: int = 0
    bytes_written: int = 0
    bytes_read: int = 0


class MemoryCacheService:
    """Provisioned in-memory key/value cache (AWS ElastiCache equivalent).

    The node count is sized automatically from the stored volume: enough
    nodes are provisioned to hold the working set, and the hourly node cost
    is reported through :meth:`provisioned_cost`.
    """

    def __init__(
        self,
        link: NetworkLink,
        cost_model: TransferCostModel,
        pricing: PricingConfig,
        name: str = "memory-cache",
        min_nodes: int = 1,
    ) -> None:
        self.name = name
        self._link = link
        self._costs = cost_model
        self._pricing = pricing
        self._min_nodes = max(1, int(min_nodes))
        self._objects: dict[Hashable, _CachedObject] = {}
        self.stats = MemoryCacheStats()
        # Transfer latency/cost depend only on payload size (sizes repeat
        # heavily), so the frozen breakdown pairs are memoized per size.
        self._transfer_effects: dict[int, tuple[LatencyBreakdown, CostBreakdown]] = {}
        #: Running sum of cached object sizes; keeps ``total_stored_bytes``
        #: (consulted on every provisioned-cost query) O(1).
        self._stored_bytes: int = 0

    def _size_effects(self, size: int) -> tuple[LatencyBreakdown, CostBreakdown]:
        effects = self._transfer_effects.get(size)
        if effects is None:
            latency = LatencyBreakdown.communication(self._link.transfer_seconds(size))
            effects = (latency, self._costs.cache_transfer_cost(size))
            self._transfer_effects[size] = effects
        return effects

    # ------------------------------------------------------------------ API

    def put(self, key: Hashable, value: Any, size_bytes: int | None = None) -> OperationResult:
        """Store ``value`` under ``key``; returns upload latency and transfer cost."""
        size = int(size_bytes) if size_bytes is not None else payload_size_bytes(value)
        existing = self._objects.get(key)
        self._objects[key] = _CachedObject(value=value, size_bytes=size)
        self._stored_bytes += size - (existing.size_bytes if existing else 0)
        self.stats.puts += 1
        self.stats.bytes_written += size
        latency, cost = self._size_effects(size)
        return OperationResult(value=None, latency=latency, cost=cost)

    def get(self, key: Hashable) -> OperationResult:
        """Fetch ``key``; raises :class:`DataNotFoundError` if absent."""
        record = self._objects.get(key)
        if record is None:
            self.stats.missed_gets += 1
            raise DataNotFoundError(key, self.name)
        self.stats.gets += 1
        self.stats.bytes_read += record.size_bytes
        latency, cost = self._size_effects(record.size_bytes)
        return OperationResult(value=record.value, latency=latency, cost=cost)

    def delete(self, key: Hashable) -> OperationResult:
        """Remove ``key`` if present (idempotent)."""
        record = self._objects.pop(key, None)
        if record is not None:
            self._stored_bytes -= record.size_bytes
        return OperationResult(value=None)

    def contains(self, key: Hashable) -> bool:
        """Whether ``key`` is currently cached."""
        return key in self._objects

    def keys(self) -> Iterator[Hashable]:
        """Iterate over every cached key."""
        return iter(list(self._objects.keys()))

    def __len__(self) -> int:
        return len(self._objects)

    @property
    def total_stored_bytes(self) -> int:
        """Sum of logical sizes of every cached object."""
        return self._stored_bytes

    @property
    def provisioned_nodes(self) -> int:
        """Number of cache nodes needed to hold the current working set."""
        node_capacity = self._pricing.cache_node_memory_gb * GB
        needed = math.ceil(self.total_stored_bytes / node_capacity) if node_capacity else 1
        return max(self._min_nodes, needed)

    def provisioned_cost(self, duration_hours: float) -> CostBreakdown:
        """Node-hour cost of keeping the cluster provisioned for ``duration_hours``."""
        return self._costs.cache_node_cost(self.provisioned_nodes, duration_hours)
