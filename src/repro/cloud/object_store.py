"""An S3/MinIO-like cloud object store with analytic latency and cost.

This is the *persistent data plane* of both the baselines (Figure 3) and
FLStore (the cold-data repository of Figure 5).  Objects are held in process
memory; what is simulated is the latency (one RTT plus size/bandwidth over
the ``objstore`` network link) and dollar cost (per-request charge plus
per-GB egress on reads) of every PUT/GET, exactly the quantities the paper's
evaluation depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterator

from repro.cloud.payload import payload_size_bytes
from repro.common.errors import DataNotFoundError
from repro.network.costs import TransferCostModel
from repro.network.model import NetworkLink
from repro.simulation.records import CostBreakdown, LatencyBreakdown, OperationResult


@dataclass
class _StoredObject:
    value: Any
    size_bytes: int


@dataclass
class ObjectStoreStats:
    """Cumulative operation counters of one object store instance."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    missed_gets: int = 0


class ObjectStore:
    """A durable key/value blob store (AWS S3 / MinIO equivalent).

    Parameters
    ----------
    link:
        Network path between the caller (aggregator or serverless function)
        and the store; determines transfer latency.
    cost_model:
        Converts operation sizes to dollar amounts.
    name:
        Human-readable identifier used in error messages and reports.
    """

    def __init__(
        self,
        link: NetworkLink,
        cost_model: TransferCostModel,
        name: str = "object-store",
    ) -> None:
        self.name = name
        self._link = link
        self._costs = cost_model
        self._objects: dict[Hashable, _StoredObject] = {}
        self.stats = ObjectStoreStats()
        # Latency/cost of an operation depend only on the payload size, and
        # FL metadata sizes repeat heavily (every update of a model has the
        # same size), so the frozen breakdown pairs are memoized per size.
        self._put_effects: dict[int, tuple[LatencyBreakdown, CostBreakdown]] = {}
        self._get_effects: dict[int, tuple[LatencyBreakdown, CostBreakdown]] = {}

    # ------------------------------------------------------------------ API

    def put(self, key: Hashable, value: Any, size_bytes: int | None = None) -> OperationResult:
        """Store ``value`` under ``key`` and return the latency/cost of the upload."""
        size = int(size_bytes) if size_bytes is not None else payload_size_bytes(value)
        self._objects[key] = _StoredObject(value=value, size_bytes=size)
        self.stats.puts += 1
        self.stats.bytes_written += size
        effects = self._put_effects.get(size)
        if effects is None:
            latency = LatencyBreakdown.communication(self._link.transfer_seconds(size))
            effects = (latency, self._costs.objstore_put_cost(size))
            self._put_effects[size] = effects
        return OperationResult(value=None, latency=effects[0], cost=effects[1])

    def get(self, key: Hashable) -> OperationResult:
        """Fetch the object stored under ``key``.

        Raises
        ------
        DataNotFoundError
            If no object exists under ``key``.
        """
        record = self._objects.get(key)
        if record is None:
            self.stats.missed_gets += 1
            raise DataNotFoundError(key, self.name)
        size = record.size_bytes
        self.stats.gets += 1
        self.stats.bytes_read += size
        effects = self._get_effects.get(size)
        if effects is None:
            latency = LatencyBreakdown.communication(self._link.transfer_seconds(size))
            effects = (latency, self._costs.objstore_get_cost(size))
            self._get_effects[size] = effects
        return OperationResult(value=record.value, latency=effects[0], cost=effects[1])

    def delete(self, key: Hashable) -> OperationResult:
        """Remove ``key`` if present (idempotent, free of charge)."""
        if key in self._objects:
            del self._objects[key]
            self.stats.deletes += 1
        return OperationResult(value=None)

    def contains(self, key: Hashable) -> bool:
        """Whether ``key`` currently exists in the store."""
        return key in self._objects

    def size_of(self, key: Hashable) -> int:
        """Logical size of the object under ``key`` in bytes."""
        record = self._objects.get(key)
        if record is None:
            raise DataNotFoundError(key, self.name)
        return record.size_bytes

    def keys(self) -> Iterator[Hashable]:
        """Iterate over every stored key."""
        return iter(list(self._objects.keys()))

    def __len__(self) -> int:
        return len(self._objects)

    @property
    def total_stored_bytes(self) -> int:
        """Sum of the logical sizes of every stored object."""
        return sum(obj.size_bytes for obj in self._objects.values())

    def storage_cost(self, duration_hours: float) -> CostBreakdown:
        """Cost of holding the current contents for ``duration_hours``."""
        return self._costs.objstore_storage_cost(self.total_stored_bytes, duration_hours)
