"""Helpers for determining the logical size of stored payloads.

FL metadata objects (model updates, aggregated models, hyperparameter
records) declare their serialized size through a ``size_bytes`` attribute;
raw byte strings use their length; anything else falls back to a conservative
estimate based on NumPy array buffers.
"""

from __future__ import annotations

import sys
from typing import Any

import numpy as np


def payload_size_bytes(value: Any) -> int:
    """Return the logical serialized size of ``value`` in bytes.

    The lookup order is:

    1. a ``size_bytes`` attribute or key (FL metadata objects),
    2. ``len(value)`` for ``bytes``/``bytearray``,
    3. ``value.nbytes`` for NumPy arrays,
    4. ``sys.getsizeof`` as a final fallback.
    """
    size = getattr(value, "size_bytes", None)
    if size is not None:
        return int(size)
    if isinstance(value, dict) and "size_bytes" in value:
        return int(value["size_bytes"])
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    return int(sys.getsizeof(value))
