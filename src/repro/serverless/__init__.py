"""Serverless platform emulator: functions, platform, fault injection."""

from repro.serverless.function import FunctionState, ServerlessFunction
from repro.serverless.platform import PlatformStats, ServerlessPlatform
from repro.serverless.faults import ZipfianFaultInjector

__all__ = [
    "FunctionState",
    "PlatformStats",
    "ServerlessFunction",
    "ServerlessPlatform",
    "ZipfianFaultInjector",
]
