"""The serverless platform: spawning, invoking, and billing function instances.

The platform emulates the provider-side behaviour FLStore relies on
(Section 4.5 of the paper):

* functions stay warm (and keep their memory) as long as they are invoked or
  pinged at least once per keep-alive interval,
* spawning a new function pays a cold-start latency,
* executions are billed per GB-second plus a per-request charge,
* keep-alive pings have a tiny but non-zero monthly cost per instance,
* the provider may reclaim warm functions at any time (fault injection is
  handled by :class:`repro.serverless.faults.ZipfianFaultInjector`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.common.errors import DataNotFoundError, FunctionReclaimedError
from repro.common.ids import IdGenerator
from repro.common.units import GB
from repro.config import PricingConfig, ServerlessConfig
from repro.network.costs import TransferCostModel
from repro.serverless.function import RequestQueue, ServerlessFunction
from repro.simulation.clock import SimClock
from repro.simulation.records import CostBreakdown, LatencyBreakdown, OperationResult


@dataclass
class PlatformStats:
    """Cumulative accounting of the serverless platform."""

    functions_spawned: int = 0
    functions_reclaimed: int = 0
    invocations: int = 0
    cold_starts: int = 0
    billed_gb_seconds: float = 0.0
    total_execution_cost: float = 0.0
    #: Admission control: requests rejected outright at a full queue.
    requests_shed: int = 0
    #: Admission control: requests served on the degraded object-store path.
    requests_degraded: int = 0
    #: Waiters drained by a reclamation that finished without a slot.
    requests_requeued: int = 0


class ServerlessPlatform:
    """Manages a fleet of warm serverless functions.

    Parameters
    ----------
    config:
        Platform parameters (memory limits, cold-start latency, keep-alive
        interval, replication defaults).
    pricing:
        Cloud pricing used for execution and keep-alive billing.
    clock:
        Shared virtual clock; used to time-stamp invocations and compute
        keep-alive costs.
    """

    def __init__(
        self,
        config: ServerlessConfig | None = None,
        pricing: PricingConfig | None = None,
        clock: SimClock | None = None,
    ) -> None:
        self.config = config or ServerlessConfig()
        self.pricing = pricing or PricingConfig()
        self.clock = clock or SimClock()
        self.cost_model = TransferCostModel(self.pricing)
        self.stats = PlatformStats()
        self._functions: dict[str, ServerlessFunction] = {}
        self._ids = IdGenerator(prefix="fn")
        self._reclamation_listeners: list[Callable[[str], None]] = []
        #: Memoized warm-function list; invalidated whenever the fleet's
        #: composition changes (spawn/reclaim/restore/remove).  Placement
        #: scans it on every admission, so rebuilding it per call is wasteful.
        self._warm_cache: list[ServerlessFunction] | None = None
        #: Memoized invocation latency/cost per (memory_gb, busy_seconds).
        self._invoke_effects: dict[tuple[float, float], tuple[LatencyBreakdown, CostBreakdown]] = {}
        #: Memoized keep-alive cost per (instance_count, duration_hours).
        self._keepalive_effects: dict[tuple[int, float], CostBreakdown] = {}
        #: Per-function queues of requests waiting for an execution slot
        #: (populated by the discrete-event engine; empty on the analytic path).
        self._queues: dict[str, RequestQueue] = {}
        #: Capacity bound applied to newly created waiter queues.  Starts at
        #: the config value; the engine layer overrides it (see
        #: :meth:`set_queue_capacity`) when its admission bound differs, so
        #: the two layers never disagree about how deep a queue may grow.
        self._queue_capacity = self.config.max_queue_depth
        #: Concurrency limit applied to newly spawned functions.  Starts at
        #: the config value; the autoscaler re-scales it at runtime (see
        #: :meth:`set_function_concurrency`) to model spawning/retiring warm
        #: instances behind each logical function.
        self._function_concurrency = self.config.function_concurrency

    def add_reclamation_listener(self, listener: Callable[[str], None]) -> None:
        """Subscribe to reclamation events (called with the function id).

        Listeners let index structures (the cache cluster's liveness index)
        invalidate exactly the affected entries instead of probing every key
        after each fault-injection step.
        """
        self._reclamation_listeners.append(listener)

    # ----------------------------------------------------------- lifecycle

    def spawn_function(
        self,
        memory_bytes: int | None = None,
        cpu_cores: int = 2,
    ) -> tuple[ServerlessFunction, OperationResult]:
        """Provision a new warm function.

        Returns the function and an :class:`OperationResult` carrying the
        cold-start latency (there is no direct dollar charge for spawning).
        """
        memory = int(memory_bytes or self.config.default_function_memory_bytes)
        if memory > self.config.max_function_memory_bytes:
            raise ValueError(
                f"requested {memory} bytes exceeds the platform maximum of "
                f"{self.config.max_function_memory_bytes} bytes"
            )
        if len(self._functions) >= self.config.max_warm_functions:
            raise RuntimeError(
                f"platform already has {len(self._functions)} warm functions "
                f"(max_warm_functions={self.config.max_warm_functions})"
            )
        function = ServerlessFunction(
            self._ids.next(),
            memory_limit_bytes=memory,
            cpu_cores=cpu_cores,
            concurrency_limit=self._function_concurrency,
        )
        self._functions[function.function_id] = function
        self._warm_cache = None
        self.stats.functions_spawned += 1
        self.stats.cold_starts += 1
        latency = LatencyBreakdown(cold_start_seconds=self.config.cold_start_seconds)
        return function, OperationResult(value=function.function_id, latency=latency)

    def reclaim_function(self, function_id: str) -> None:
        """Simulate the provider reclaiming a warm function (memory lost)."""
        function = self._functions.get(function_id)
        if function is None:
            raise DataNotFoundError(function_id, "serverless platform")
        if function.is_warm:
            function.reclaim()
            self._warm_cache = None
            self.stats.functions_reclaimed += 1
            for listener in self._reclamation_listeners:
                listener(function_id)

    def restore_function(self, function_id: str) -> tuple[ServerlessFunction, OperationResult]:
        """Re-provision a previously reclaimed function (cold start, empty memory)."""
        function = self._functions.get(function_id)
        if function is None:
            raise DataNotFoundError(function_id, "serverless platform")
        function.restore()
        self._warm_cache = None
        self.stats.cold_starts += 1
        latency = LatencyBreakdown(cold_start_seconds=self.config.cold_start_seconds)
        return function, OperationResult(value=function_id, latency=latency)

    def remove_function(self, function_id: str) -> None:
        """Permanently remove a function from the fleet."""
        function = self._functions.pop(function_id, None)
        self._warm_cache = None
        if function is not None and function.is_warm:
            # Removal loses warm memory just like a reclamation does.
            for listener in self._reclamation_listeners:
                listener(function_id)

    # ------------------------------------------------------------- lookup

    def get_function(self, function_id: str) -> ServerlessFunction:
        """Return the function with ``function_id`` (warm or reclaimed)."""
        function = self._functions.get(function_id)
        if function is None:
            raise DataNotFoundError(function_id, "serverless platform")
        return function

    def has_function(self, function_id: str) -> bool:
        """Whether ``function_id`` exists on the platform."""
        return function_id in self._functions

    def functions(self) -> Iterator[ServerlessFunction]:
        """Iterate over every function (warm and reclaimed)."""
        return iter(list(self._functions.values()))

    def warm_functions(self) -> list[ServerlessFunction]:
        """Every function currently warm (shared memoized list; do not mutate)."""
        cached = self._warm_cache
        if cached is None:
            cached = [f for f in self._functions.values() if f.is_warm]
            self._warm_cache = cached
        return cached

    @property
    def warm_count(self) -> int:
        """Number of warm functions."""
        return len(self.warm_functions())

    @property
    def total_cached_bytes(self) -> int:
        """Bytes of FL metadata resident across all warm functions."""
        return sum(f.used_bytes for f in self.warm_functions())

    # ---------------------------------------------------------- execution

    def invoke(
        self,
        function_id: str,
        busy_seconds: float,
        payload_bytes: int = 0,
    ) -> OperationResult:
        """Invoke ``function_id`` for ``busy_seconds`` of compute.

        Returns the invocation latency (overhead + compute) and the billed
        cost (GB-seconds + per-request charge).  ``payload_bytes`` covers any
        request/response payload, billed at zero network cost because the
        caller (the request tracker) exchanges only small control messages.

        Raises
        ------
        FunctionReclaimedError
            If the function has been reclaimed; callers are expected to fail
            over to a replica or re-fetch from the persistent store.
        """
        function = self.get_function(function_id)
        if not function.is_warm:
            raise FunctionReclaimedError(function_id)
        if busy_seconds < 0:
            raise ValueError("busy_seconds must be non-negative")
        function.record_invocation(self.clock.now(), busy_seconds)
        self.stats.invocations += 1
        memory_gb = function.memory_limit_bytes / GB
        billed_seconds = max(busy_seconds, 0.001)  # providers bill a minimum duration
        self.stats.billed_gb_seconds += memory_gb * billed_seconds
        # Workload durations are discrete (per workload and key count), so
        # the frozen latency/cost pair is memoized per (memory, duration).
        effects = self._invoke_effects.get((memory_gb, busy_seconds))
        if effects is None:
            cost = self.cost_model.lambda_execution_cost(memory_gb, billed_seconds)
            latency = LatencyBreakdown(
                computation_seconds=busy_seconds,
                communication_seconds=self.config.invocation_overhead_seconds,
            )
            effects = (latency, cost)
            self._invoke_effects[(memory_gb, busy_seconds)] = effects
        latency, cost = effects
        self.stats.total_execution_cost += cost.total_dollars
        del payload_bytes  # control messages are negligible; kept for interface clarity
        return OperationResult(value=None, latency=latency, cost=cost)

    def ping(self, function_id: str) -> OperationResult:
        """Keep-alive ping: keeps the function warm, negligible latency/cost per call."""
        function = self.get_function(function_id)
        if not function.is_warm:
            raise FunctionReclaimedError(function_id)
        function.record_invocation(self.clock.now(), busy_seconds=0.0)
        return OperationResult(value=None)

    # ----------------------------------------------- concurrency & queueing
    #
    # The discrete-event engine (repro.engine) executes requests as timed
    # processes.  Each warm function admits ``concurrency_limit`` concurrent
    # executions; excess requests park an opaque waiter token in the
    # function's queue (FIFO or priority, per ``config.queue_discipline``).
    # The engine owns the tokens; the platform owns the ordering.

    def request_queue(self, function_id: str) -> RequestQueue:
        """The waiter queue of ``function_id`` (created on first use).

        The queue inherits the platform's discipline and admission bound
        (``config.max_queue_depth`` unless overridden via
        :meth:`set_queue_capacity`; 0 keeps it unbounded).
        """
        queue = self._queues.get(function_id)
        if queue is None:
            queue = RequestQueue(self.config.queue_discipline, capacity=self._queue_capacity)
            self._queues[function_id] = queue
        return queue

    def set_queue_capacity(self, capacity: int) -> None:
        """Re-bound every waiter queue (existing and future) at ``capacity``.

        Called by the engine layer when its admission bound overrides
        ``config.max_queue_depth``, so per-function queue capacities always
        match the bound admission control actually enforces.
        """
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0 (0 means unbounded), got {capacity}")
        self._queue_capacity = int(capacity)
        for queue in self._queues.values():
            queue.capacity = self._queue_capacity

    def queue_is_full(self, function_id: str) -> bool:
        """Whether ``function_id``'s waiter queue is at its admission bound."""
        return self.request_queue(function_id).full

    def set_function_concurrency(self, limit: int) -> list[object]:
        """Re-scale every function (existing and future) to ``limit`` slots.

        Models the autoscaler spawning or retiring warm instances behind each
        logical function: raising the limit immediately hands the new slots
        to queued waiters (their tokens are returned so the engine can resume
        them); lowering it retires slots lazily — active executions finish,
        and freed slots above the new limit are simply not re-granted.
        """
        if limit <= 0:
            raise ValueError(f"concurrency limit must be positive, got {limit}")
        self._function_concurrency = int(limit)
        granted: list[object] = []
        for function in self._functions.values():
            function.concurrency_limit = self._function_concurrency
            queue = self._queues.get(function.function_id)
            while queue and len(queue) > 0 and function.has_execution_slot:
                function.begin_execution()
                granted.append(queue.pop())
        return granted

    @property
    def function_concurrency(self) -> int:
        """Concurrency limit currently applied to (new and existing) functions."""
        return self._function_concurrency

    @property
    def provisioned_slots(self) -> int:
        """Execution slots provisioned across the warm fleet."""
        return sum(f.concurrency_limit for f in self.warm_functions())

    @property
    def provisioned_gb(self) -> float:
        """Warm provisioned capacity in GB (memory x slots, summed over the fleet).

        One slot models one warm instance of the function, so a function with
        ``concurrency_limit`` slots keeps that many instances (each with the
        function's full memory) resident — this is the quantity the
        autoscaler's warm-capacity cost integrates over time.
        """
        return sum(
            f.memory_limit_bytes / GB * f.concurrency_limit for f in self.warm_functions()
        )

    def try_acquire_slot(self, function_id: str) -> bool:
        """Occupy an execution slot on ``function_id`` if one is free now."""
        function = self.get_function(function_id)
        if not function.has_execution_slot:
            return False
        function.begin_execution()
        return True

    def enqueue_waiter(
        self,
        function_id: str,
        token: object,
        priority: float = 0.0,
        flow: object = None,
        weight: float = 1.0,
    ) -> None:
        """Park ``token`` until :meth:`release_slot` hands it a freed slot.

        ``flow``/``weight`` identify the tenant flow for the ``wfq``/``drr``
        disciplines; untagged requests share the anonymous flow at weight 1.
        """
        self.request_queue(function_id).push(token, priority, flow=flow, weight=weight)

    def evict_waiter(self, flow: object) -> object | None:
        """Evict the newest queued waiter of ``flow`` from any function queue.

        The push-out primitive of SLO-aware shedding: scans the fleet's
        queues for the flow's most recently enqueued token and removes it so
        the admission layer can shed that request instead of an arriving one.
        Returns the evicted token, or ``None`` when the flow has no waiter.
        """
        best_queue = None
        best_depth = -1
        for queue in self._queues.values():
            depth = queue.queued_flows().get(flow, 0)
            if depth > best_depth and depth > 0:
                best_queue = queue
                best_depth = depth
        if best_queue is None:
            return None
        return best_queue.evict(flow)

    def release_slot(self, function_id: str) -> object | None:
        """Free one slot on ``function_id``; returns the next waiter granted it.

        The freed slot is immediately re-occupied by the head of the queue
        (if any), whose token is returned so the caller can resume it.
        Returns ``None`` when nobody was waiting.
        """
        function = self._functions.get(function_id)
        if function is None:
            return None
        function.end_execution()
        queue = self._queues.get(function_id)
        if queue and function.has_execution_slot:
            function.begin_execution()
            return queue.pop()
        return None

    def drain_waiters(self, function_id: str) -> list[object]:
        """Remove and return every waiter of ``function_id`` (e.g. on reclaim)."""
        queue = self._queues.get(function_id)
        return queue.drain() if queue else []

    def queue_depth(self, function_id: str) -> int:
        """Requests currently waiting for a slot on ``function_id``."""
        queue = self._queues.get(function_id)
        return len(queue) if queue else 0

    def total_queue_depth(self) -> int:
        """Requests waiting for a slot across the whole fleet."""
        return sum(len(queue) for queue in self._queues.values())

    # ------------------------------------------------------------- billing

    def keepalive_cost(self, duration_hours: float, instance_count: int | None = None) -> CostBreakdown:
        """Cost of keep-alive pings for ``instance_count`` functions over ``duration_hours``.

        Defaults to the current number of warm functions.
        """
        count = self.warm_count if instance_count is None else instance_count
        cached = self._keepalive_effects.get((count, duration_hours))
        if cached is None:
            cached = self.cost_model.lambda_keepalive_cost(count, duration_hours)
            self._keepalive_effects[(count, duration_hours)] = cached
        return cached

    def memory_cost(self, duration_hours: float) -> CostBreakdown:
        """Cost of the memory held by warm functions for ``duration_hours``.

        Warm function memory is free on the provider side as long as the
        functions are regularly invoked (Section 4.5); only the keep-alive
        pings are billed, so this returns the keep-alive cost.
        """
        return self.keepalive_cost(duration_hours)
