"""A single emulated serverless function with resident memory.

A function models an AWS Lambda / OpenFaaS worker that stays *warm* as long
as it is periodically invoked (or pinged).  Its memory holds cached FL
metadata objects at client-model granularity (Section 4.2 of the paper), and
its co-located CPU executes non-training workloads against those objects.
"""

from __future__ import annotations

import enum
import heapq
from collections import deque
from dataclasses import dataclass
from typing import Any, Hashable, Iterator

from repro.cloud.payload import payload_size_bytes
from repro.common.errors import CapacityError, DataNotFoundError, FunctionReclaimedError
from repro.common.units import GB
from repro.config import QUEUE_DISCIPLINES


class FunctionState(enum.Enum):
    """Lifecycle state of a serverless function."""

    WARM = "warm"
    RECLAIMED = "reclaimed"


@dataclass(slots=True)
class _ResidentObject:
    value: Any
    size_bytes: int
    stored_at: float


class RequestQueue:
    """A queue of opaque waiter tokens under one of four disciplines.

    The discrete-event engine parks one token per request waiting for an
    execution slot on a function.  Ordering is deterministic under every
    discipline:

    * ``fifo`` pops in arrival order.
    * ``priority`` pops by ``(priority, arrival sequence)`` with lower
      priority values first, so equal priorities degrade to FIFO.
    * ``wfq`` is self-clocked weighted fair queueing over *flows* (tenant
      ids): each push is stamped with a virtual finish time
      ``max(vtime, flow's last finish) + 1/weight`` and pops run in finish
      order, so backlogged flows share service in proportion to weight.
    * ``drr`` is deficit round robin over flows: each flow banks a quantum
      equal to its weight once per rotation and serves requests while its
      deficit covers them, giving the same weighted shares with O(1) pops.

    Tokens pushed without a flow belong to the anonymous flow ``None`` at
    weight 1.0, which makes single-tenant behaviour under ``wfq``/``drr``
    degrade to FIFO.

    ``capacity`` bounds the queue for admission control: pushing onto a full
    queue raises :class:`CapacityError`, and the admission layer is expected
    to check :attr:`full` first and shed the request instead (``0`` keeps
    the queue unbounded).
    """

    __slots__ = (
        "discipline",
        "capacity",
        "_heap",
        "_seq",
        "_size",
        "_vtime",
        "_flow_finish",
        "_flows",
        "_active",
        "_deficit",
        "_quantum",
    )

    def __init__(self, discipline: str = "fifo", capacity: int = 0) -> None:
        if discipline not in QUEUE_DISCIPLINES:
            raise ValueError(f"unknown queue discipline {discipline!r}")
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0 (0 means unbounded), got {capacity}")
        self.discipline = discipline
        self.capacity = int(capacity)
        #: fifo/priority/wfq entries: ``(key, seq, token, flow)``.
        self._heap: list[tuple[float, int, Any, Hashable]] = []
        self._seq = 0
        self._size = 0
        # wfq state: the system virtual time (finish tag of the last pop) and
        # each flow's last assigned finish tag.
        self._vtime = 0.0
        self._flow_finish: dict[Hashable, float] = {}
        # drr state: per-flow FIFO backlogs, the round-robin rotation, and
        # per-flow deficit counters / quanta (quantum == configured weight).
        self._flows: dict[Hashable, deque[Any]] = {}
        self._active: deque[Hashable] = deque()
        self._deficit: dict[Hashable, float] = {}
        self._quantum: dict[Hashable, float] = {}

    @property
    def full(self) -> bool:
        """Whether the queue is at its capacity bound (never true when unbounded)."""
        return self.capacity > 0 and self._size >= self.capacity

    def push(
        self,
        token: Any,
        priority: float = 0.0,
        flow: Hashable = None,
        weight: float = 1.0,
    ) -> None:
        """Enqueue ``token``.

        ``priority`` orders only the ``priority`` discipline; ``flow`` and
        ``weight`` matter only to ``wfq``/``drr`` (the flow's weight is the
        one given with its first queued request of a busy period).

        Raises
        ------
        CapacityError
            If the queue is bounded and already full.
        """
        if self.full:
            raise CapacityError(
                f"request queue is at its capacity bound ({self.capacity}); "
                "the admission controller should have shed this request"
            )
        if weight <= 0.0:
            raise ValueError(f"flow weight must be positive, got {weight}")
        if self.discipline == "drr":
            backlog = self._flows.get(flow)
            if backlog is None:
                backlog = self._flows[flow] = deque()
                self._active.append(flow)
                self._deficit.setdefault(flow, 0.0)
            self._quantum[flow] = weight
            backlog.append(token)
        else:
            if self.discipline == "priority":
                key = priority
            elif self.discipline == "wfq":
                start = max(self._vtime, self._flow_finish.get(flow, 0.0))
                key = start + 1.0 / weight
                self._flow_finish[flow] = key
            else:
                key = 0.0
            heapq.heappush(self._heap, (key, self._seq, token, flow))
        self._seq += 1
        self._size += 1

    def pop(self) -> Any:
        """Dequeue the next token (raises ``IndexError`` when empty)."""
        if self.discipline == "drr":
            return self._pop_drr()
        key, _seq, token, _flow = heapq.heappop(self._heap)
        if self.discipline == "wfq" and key > self._vtime:
            self._vtime = key
        self._size -= 1
        return token

    def _pop_drr(self) -> Any:
        if not self._active:
            raise IndexError("pop from an empty request queue")
        while True:
            flow = self._active[0]
            if self._deficit.get(flow, 0.0) >= 1.0:
                self._deficit[flow] -= 1.0
                backlog = self._flows[flow]
                token = backlog.popleft()
                if not backlog:
                    # An emptied flow leaves the rotation and forfeits its
                    # banked deficit (no credit accrues while idle).
                    self._active.popleft()
                    del self._flows[flow]
                    self._deficit.pop(flow, None)
                self._size -= 1
                return token
            # The head flow's deficit cannot cover a request: bank one
            # quantum and rotate.  Quanta are positive, so this terminates.
            self._deficit[flow] = self._deficit.get(flow, 0.0) + self._quantum.get(flow, 1.0)
            self._active.rotate(-1)

    def evict(self, flow: Hashable) -> Any | None:
        """Remove and return ``flow``'s most recently enqueued token, if any.

        This is the admission controller's push-out primitive: under
        SLO-aware shedding a full queue evicts the newest request of the
        worst-violating flow instead of the arriving one.  Returns ``None``
        when the flow has nothing queued.
        """
        if self.discipline == "drr":
            backlog = self._flows.get(flow)
            if not backlog:
                return None
            token = backlog.pop()
            if not backlog:
                try:
                    self._active.remove(flow)
                except ValueError:  # pragma: no cover - rotation always holds it
                    pass
                del self._flows[flow]
                self._deficit.pop(flow, None)
            self._size -= 1
            return token
        candidates = [entry for entry in self._heap if entry[3] == flow]
        if not candidates:
            return None
        entry = max(candidates)
        self._heap.remove(entry)
        heapq.heapify(self._heap)
        if self.discipline == "wfq":
            remaining = [e[0] for e in self._heap if e[3] == flow]
            self._flow_finish[flow] = max(remaining) if remaining else self._vtime
        self._size -= 1
        return entry[2]

    def queued_flows(self) -> dict[Hashable, int]:
        """Backlog size per flow (``None`` keys the anonymous flow)."""
        if self.discipline == "drr":
            return {flow: len(backlog) for flow, backlog in self._flows.items()}
        counts: dict[Hashable, int] = {}
        for entry in self._heap:
            counts[entry[3]] = counts.get(entry[3], 0) + 1
        return counts

    def drain(self) -> list[Any]:
        """Remove and return every queued token in pop order."""
        if self.discipline == "drr":
            drained = []
            while self._size:
                drained.append(self._pop_drr())
            return drained
        drained = [entry[2] for entry in sorted(self._heap)]
        self._heap.clear()
        self._size = 0
        return drained

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0


#: Module-level alias: avoids an enum descriptor lookup per liveness check.
_WARM = FunctionState.WARM


@dataclass
class FunctionStats:
    """Cumulative counters of one function instance."""

    invocations: int = 0
    executions: int = 0
    busy_seconds: float = 0.0
    objects_stored: int = 0
    objects_evicted: int = 0


class ServerlessFunction:
    """One warm serverless function holding cached objects and running workloads.

    Parameters
    ----------
    function_id:
        Unique identifier assigned by the platform.
    memory_limit_bytes:
        Provisioned memory (at most 10 GB on AWS Lambda).
    cpu_cores:
        Number of vCPUs; only recorded for reporting, the compute-time model
        already accounts for function-class speed.
    """

    __slots__ = (
        "function_id",
        "memory_limit_bytes",
        "cpu_cores",
        "state",
        "last_invoked_at",
        "stats",
        "free_bytes",
        "concurrency_limit",
        "active_executions",
        "_objects",
        "_used_bytes",
    )

    def __init__(
        self,
        function_id: str,
        memory_limit_bytes: int = 4 * GB,
        cpu_cores: int = 2,
        concurrency_limit: int = 1,
    ) -> None:
        if memory_limit_bytes <= 0:
            raise ValueError("memory_limit_bytes must be positive")
        if concurrency_limit <= 0:
            raise ValueError("concurrency_limit must be positive")
        self.function_id = function_id
        self.memory_limit_bytes = int(memory_limit_bytes)
        self.cpu_cores = cpu_cores
        self.state = FunctionState.WARM
        self.last_invoked_at: float = 0.0
        self.stats = FunctionStats()
        #: Concurrent executions this instance admits before requests queue.
        self.concurrency_limit = int(concurrency_limit)
        #: Executions currently occupying a slot (engine-managed).
        self.active_executions = 0
        self._objects: dict[Hashable, _ResidentObject] = {}
        #: Running sum of resident object sizes; keeping it incrementally
        #: maintained makes ``free_bytes``/``can_fit`` O(1) on the placement
        #: hot path instead of O(resident objects).
        self._used_bytes: int = 0
        #: Remaining capacity, maintained alongside ``_used_bytes`` so the
        #: best-fit scan reads a plain attribute instead of a property.
        self.free_bytes: int = self.memory_limit_bytes

    # ------------------------------------------------------------ memory API

    @property
    def used_bytes(self) -> int:
        """Bytes of provisioned memory currently occupied by cached objects."""
        return self._used_bytes

    @property
    def is_warm(self) -> bool:
        """Whether the function is still resident (not reclaimed)."""
        return self.state is _WARM

    def can_fit(self, size_bytes: int) -> bool:
        """Whether an object of ``size_bytes`` fits in the remaining capacity."""
        return size_bytes <= self.free_bytes

    def store(self, key: Hashable, value: Any, now: float = 0.0, size_bytes: int | None = None) -> int:
        """Place ``value`` in this function's memory under ``key``.

        Returns the stored size in bytes.

        Raises
        ------
        FunctionReclaimedError
            If the function has been reclaimed.
        CapacityError
            If the object does not fit in the remaining memory.
        """
        if self.state is not _WARM:
            raise FunctionReclaimedError(self.function_id)
        size = int(size_bytes) if size_bytes is not None else payload_size_bytes(value)
        existing = self._objects.get(key)
        available = self.free_bytes + (existing.size_bytes if existing else 0)
        if size > available:
            raise CapacityError(
                f"object of {size} bytes does not fit in function {self.function_id} "
                f"({available} bytes available)"
            )
        self._objects[key] = _ResidentObject(value, size, now)
        delta = size - (existing.size_bytes if existing else 0)
        self._used_bytes += delta
        self.free_bytes -= delta
        self.stats.objects_stored += 1
        return size

    def load(self, key: Hashable) -> Any:
        """Return the object stored under ``key`` (no latency: data is local).

        Raises
        ------
        DataNotFoundError
            If ``key`` is not resident in this function.
        """
        self._ensure_warm()
        record = self._objects.get(key)
        if record is None:
            raise DataNotFoundError(key, f"function {self.function_id}")
        return record.value

    def evict(self, key: Hashable) -> bool:
        """Drop ``key`` from memory; returns whether it was present."""
        record = self._objects.pop(key, None)
        if record is not None:
            self._used_bytes -= record.size_bytes
            self.free_bytes += record.size_bytes
            self.stats.objects_evicted += 1
            return True
        return False

    def holds(self, key: Hashable) -> bool:
        """Whether ``key`` is resident in this function."""
        return self.state is _WARM and key in self._objects

    def resident_keys(self) -> Iterator[Hashable]:
        """Iterate over every resident key."""
        return iter(list(self._objects.keys()))

    def size_of(self, key: Hashable) -> int:
        """Logical size of the resident object under ``key``."""
        record = self._objects.get(key)
        if record is None:
            raise DataNotFoundError(key, f"function {self.function_id}")
        return record.size_bytes

    def __len__(self) -> int:
        return len(self._objects)

    # --------------------------------------------------------- execution API

    @property
    def has_execution_slot(self) -> bool:
        """Whether another request can start executing here right now."""
        return self.state is _WARM and self.active_executions < self.concurrency_limit

    def begin_execution(self) -> None:
        """Occupy one concurrency slot (engine bookkeeping).

        Raises
        ------
        FunctionReclaimedError
            If the function has been reclaimed.
        CapacityError
            If every concurrency slot is already in use.
        """
        self._ensure_warm()
        if self.active_executions >= self.concurrency_limit:
            raise CapacityError(
                f"function {self.function_id} is at its concurrency limit "
                f"({self.concurrency_limit})"
            )
        self.active_executions += 1

    def end_execution(self) -> None:
        """Release one concurrency slot (no-op past zero, e.g. after reclaim)."""
        if self.active_executions > 0:
            self.active_executions -= 1

    def record_invocation(self, now: float, busy_seconds: float = 0.0) -> None:
        """Account for one invocation at time ``now`` taking ``busy_seconds``."""
        self._ensure_warm()
        self.stats.invocations += 1
        if busy_seconds > 0:
            self.stats.executions += 1
            self.stats.busy_seconds += busy_seconds
        self.last_invoked_at = now

    def reclaim(self) -> None:
        """Simulate the provider reclaiming the function: all memory is lost."""
        self.state = FunctionState.RECLAIMED
        self._objects.clear()
        self._used_bytes = 0
        self.free_bytes = self.memory_limit_bytes
        self.active_executions = 0

    def restore(self) -> None:
        """Re-provision the function after reclamation (memory starts empty)."""
        self.state = FunctionState.WARM

    def _ensure_warm(self) -> None:
        if self.state is not _WARM:
            raise FunctionReclaimedError(self.function_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServerlessFunction(id={self.function_id!r}, state={self.state.value}, "
            f"used={self.used_bytes}/{self.memory_limit_bytes} bytes, objects={len(self)})"
        )
