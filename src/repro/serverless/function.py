"""A single emulated serverless function with resident memory.

A function models an AWS Lambda / OpenFaaS worker that stays *warm* as long
as it is periodically invoked (or pinged).  Its memory holds cached FL
metadata objects at client-model granularity (Section 4.2 of the paper), and
its co-located CPU executes non-training workloads against those objects.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Any, Hashable, Iterator

from repro.cloud.payload import payload_size_bytes
from repro.common.errors import CapacityError, DataNotFoundError, FunctionReclaimedError
from repro.common.units import GB


class FunctionState(enum.Enum):
    """Lifecycle state of a serverless function."""

    WARM = "warm"
    RECLAIMED = "reclaimed"


@dataclass(slots=True)
class _ResidentObject:
    value: Any
    size_bytes: int
    stored_at: float


class RequestQueue:
    """A FIFO or priority queue of opaque waiter tokens, optionally bounded.

    The discrete-event engine parks one token per request waiting for an
    execution slot on a function.  Ordering is deterministic: FIFO pops in
    arrival order; priority pops by ``(priority, arrival sequence)`` with
    lower priority values first, so equal priorities degrade to FIFO.

    ``capacity`` bounds the queue for admission control: pushing onto a full
    queue raises :class:`CapacityError`, and the admission layer is expected
    to check :attr:`full` first and shed the request instead (``0`` keeps
    the queue unbounded).
    """

    __slots__ = ("discipline", "capacity", "_heap", "_seq")

    def __init__(self, discipline: str = "fifo", capacity: int = 0) -> None:
        if discipline not in ("fifo", "priority"):
            raise ValueError(f"unknown queue discipline {discipline!r}")
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0 (0 means unbounded), got {capacity}")
        self.discipline = discipline
        self.capacity = int(capacity)
        self._heap: list[tuple[float, int, Any]] = []
        self._seq = 0

    @property
    def full(self) -> bool:
        """Whether the queue is at its capacity bound (never true when unbounded)."""
        return self.capacity > 0 and len(self._heap) >= self.capacity

    def push(self, token: Any, priority: float = 0.0) -> None:
        """Enqueue ``token`` (``priority`` is ignored under FIFO).

        Raises
        ------
        CapacityError
            If the queue is bounded and already full.
        """
        if self.full:
            raise CapacityError(
                f"request queue is at its capacity bound ({self.capacity}); "
                "the admission controller should have shed this request"
            )
        key = priority if self.discipline == "priority" else 0.0
        heapq.heappush(self._heap, (key, self._seq, token))
        self._seq += 1

    def pop(self) -> Any:
        """Dequeue the next token (raises ``IndexError`` when empty)."""
        return heapq.heappop(self._heap)[2]

    def drain(self) -> list[Any]:
        """Remove and return every queued token in pop order."""
        drained = [entry[2] for entry in sorted(self._heap)]
        self._heap.clear()
        return drained

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


#: Module-level alias: avoids an enum descriptor lookup per liveness check.
_WARM = FunctionState.WARM


@dataclass
class FunctionStats:
    """Cumulative counters of one function instance."""

    invocations: int = 0
    executions: int = 0
    busy_seconds: float = 0.0
    objects_stored: int = 0
    objects_evicted: int = 0


class ServerlessFunction:
    """One warm serverless function holding cached objects and running workloads.

    Parameters
    ----------
    function_id:
        Unique identifier assigned by the platform.
    memory_limit_bytes:
        Provisioned memory (at most 10 GB on AWS Lambda).
    cpu_cores:
        Number of vCPUs; only recorded for reporting, the compute-time model
        already accounts for function-class speed.
    """

    __slots__ = (
        "function_id",
        "memory_limit_bytes",
        "cpu_cores",
        "state",
        "last_invoked_at",
        "stats",
        "free_bytes",
        "concurrency_limit",
        "active_executions",
        "_objects",
        "_used_bytes",
    )

    def __init__(
        self,
        function_id: str,
        memory_limit_bytes: int = 4 * GB,
        cpu_cores: int = 2,
        concurrency_limit: int = 1,
    ) -> None:
        if memory_limit_bytes <= 0:
            raise ValueError("memory_limit_bytes must be positive")
        if concurrency_limit <= 0:
            raise ValueError("concurrency_limit must be positive")
        self.function_id = function_id
        self.memory_limit_bytes = int(memory_limit_bytes)
        self.cpu_cores = cpu_cores
        self.state = FunctionState.WARM
        self.last_invoked_at: float = 0.0
        self.stats = FunctionStats()
        #: Concurrent executions this instance admits before requests queue.
        self.concurrency_limit = int(concurrency_limit)
        #: Executions currently occupying a slot (engine-managed).
        self.active_executions = 0
        self._objects: dict[Hashable, _ResidentObject] = {}
        #: Running sum of resident object sizes; keeping it incrementally
        #: maintained makes ``free_bytes``/``can_fit`` O(1) on the placement
        #: hot path instead of O(resident objects).
        self._used_bytes: int = 0
        #: Remaining capacity, maintained alongside ``_used_bytes`` so the
        #: best-fit scan reads a plain attribute instead of a property.
        self.free_bytes: int = self.memory_limit_bytes

    # ------------------------------------------------------------ memory API

    @property
    def used_bytes(self) -> int:
        """Bytes of provisioned memory currently occupied by cached objects."""
        return self._used_bytes

    @property
    def is_warm(self) -> bool:
        """Whether the function is still resident (not reclaimed)."""
        return self.state is _WARM

    def can_fit(self, size_bytes: int) -> bool:
        """Whether an object of ``size_bytes`` fits in the remaining capacity."""
        return size_bytes <= self.free_bytes

    def store(self, key: Hashable, value: Any, now: float = 0.0, size_bytes: int | None = None) -> int:
        """Place ``value`` in this function's memory under ``key``.

        Returns the stored size in bytes.

        Raises
        ------
        FunctionReclaimedError
            If the function has been reclaimed.
        CapacityError
            If the object does not fit in the remaining memory.
        """
        if self.state is not _WARM:
            raise FunctionReclaimedError(self.function_id)
        size = int(size_bytes) if size_bytes is not None else payload_size_bytes(value)
        existing = self._objects.get(key)
        available = self.free_bytes + (existing.size_bytes if existing else 0)
        if size > available:
            raise CapacityError(
                f"object of {size} bytes does not fit in function {self.function_id} "
                f"({available} bytes available)"
            )
        self._objects[key] = _ResidentObject(value, size, now)
        delta = size - (existing.size_bytes if existing else 0)
        self._used_bytes += delta
        self.free_bytes -= delta
        self.stats.objects_stored += 1
        return size

    def load(self, key: Hashable) -> Any:
        """Return the object stored under ``key`` (no latency: data is local).

        Raises
        ------
        DataNotFoundError
            If ``key`` is not resident in this function.
        """
        self._ensure_warm()
        record = self._objects.get(key)
        if record is None:
            raise DataNotFoundError(key, f"function {self.function_id}")
        return record.value

    def evict(self, key: Hashable) -> bool:
        """Drop ``key`` from memory; returns whether it was present."""
        record = self._objects.pop(key, None)
        if record is not None:
            self._used_bytes -= record.size_bytes
            self.free_bytes += record.size_bytes
            self.stats.objects_evicted += 1
            return True
        return False

    def holds(self, key: Hashable) -> bool:
        """Whether ``key`` is resident in this function."""
        return self.state is _WARM and key in self._objects

    def resident_keys(self) -> Iterator[Hashable]:
        """Iterate over every resident key."""
        return iter(list(self._objects.keys()))

    def size_of(self, key: Hashable) -> int:
        """Logical size of the resident object under ``key``."""
        record = self._objects.get(key)
        if record is None:
            raise DataNotFoundError(key, f"function {self.function_id}")
        return record.size_bytes

    def __len__(self) -> int:
        return len(self._objects)

    # --------------------------------------------------------- execution API

    @property
    def has_execution_slot(self) -> bool:
        """Whether another request can start executing here right now."""
        return self.state is _WARM and self.active_executions < self.concurrency_limit

    def begin_execution(self) -> None:
        """Occupy one concurrency slot (engine bookkeeping).

        Raises
        ------
        FunctionReclaimedError
            If the function has been reclaimed.
        CapacityError
            If every concurrency slot is already in use.
        """
        self._ensure_warm()
        if self.active_executions >= self.concurrency_limit:
            raise CapacityError(
                f"function {self.function_id} is at its concurrency limit "
                f"({self.concurrency_limit})"
            )
        self.active_executions += 1

    def end_execution(self) -> None:
        """Release one concurrency slot (no-op past zero, e.g. after reclaim)."""
        if self.active_executions > 0:
            self.active_executions -= 1

    def record_invocation(self, now: float, busy_seconds: float = 0.0) -> None:
        """Account for one invocation at time ``now`` taking ``busy_seconds``."""
        self._ensure_warm()
        self.stats.invocations += 1
        if busy_seconds > 0:
            self.stats.executions += 1
            self.stats.busy_seconds += busy_seconds
        self.last_invoked_at = now

    def reclaim(self) -> None:
        """Simulate the provider reclaiming the function: all memory is lost."""
        self.state = FunctionState.RECLAIMED
        self._objects.clear()
        self._used_bytes = 0
        self.free_bytes = self.memory_limit_bytes
        self.active_executions = 0

    def restore(self) -> None:
        """Re-provision the function after reclamation (memory starts empty)."""
        self.state = FunctionState.WARM

    def _ensure_warm(self) -> None:
        if self.state is not _WARM:
            raise FunctionReclaimedError(self.function_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServerlessFunction(id={self.function_id!r}, state={self.state.value}, "
            f"used={self.used_bytes}/{self.memory_limit_bytes} bytes, objects={len(self)})"
        )
