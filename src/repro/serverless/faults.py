"""Fault injection for serverless function reclamation.

The paper's fault-tolerance evaluation (Appendix A.2) injects function
reclamations following a Zipfian distribution, matching the measurement
studies of AWS Lambda cited from InfiniCache.  The injector below decides,
for each served request, which (if any) of the currently warm functions are
reclaimed before the request executes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.rng import derive_rng


@dataclass
class FaultEvent:
    """One injected reclamation.

    ``time_seconds`` is the simulation time at which the reclamation was
    sampled — the analytic clock on the closed-loop path, the event loop's
    virtual time on the engine path — so fault traces can be lined up
    against arrival/completion timelines, not just request ordinals.
    """

    request_index: int
    function_id: str
    time_seconds: float = 0.0


class ZipfianFaultInjector:
    """Injects function reclamations with Zipf-distributed inter-arrival gaps.

    Parameters
    ----------
    fault_rate:
        Expected fraction of requests that experience at least one
        reclamation (0 disables fault injection).
    zipf_exponent:
        Exponent ``a`` of the Zipf distribution used to pick how many
        functions are reclaimed in a faulty step (heavier tail for smaller
        ``a``); must be > 1.
    seed:
        Master seed; the injector derives an independent stream.
    stream:
        Label of the derived RNG stream.  The default keeps the historical
        single-injector stream; multi-clause fault plans
        (:mod:`repro.engine.faults`) pass ``f"fault-{kind}-{i}"`` so every
        clause draws from an independently seeded, reproducible stream.
    """

    def __init__(
        self,
        fault_rate: float = 0.05,
        zipf_exponent: float = 2.5,
        seed: int = 7,
        stream: str = "fault-injector",
    ) -> None:
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError("fault_rate must be in [0, 1]")
        if zipf_exponent <= 1.0:
            raise ValueError("zipf_exponent must be > 1")
        self.fault_rate = fault_rate
        self.zipf_exponent = zipf_exponent
        self.stream = stream
        self._rng = derive_rng(seed, stream)
        self.events: list[FaultEvent] = []
        self._request_index = 0

    def sample_reclamations(
        self, candidate_function_ids: list[str], now: float = 0.0
    ) -> list[str]:
        """Return the function ids reclaimed before the next request.

        The number of reclaimed functions in a faulty step is Zipf-distributed
        (capped at the number of candidates); which functions are reclaimed is
        uniform over the candidates.  ``now`` is the simulation time stamped
        onto the recorded :class:`FaultEvent` rows.
        """
        self._request_index += 1
        if not candidate_function_ids or self.fault_rate == 0.0:
            return []
        if self._rng.random() >= self.fault_rate:
            return []
        count = int(self._rng.zipf(self.zipf_exponent))
        count = min(count, len(candidate_function_ids))
        chosen = self._rng.choice(candidate_function_ids, size=count, replace=False)
        reclaimed = [str(function_id) for function_id in np.atleast_1d(chosen)]
        for function_id in reclaimed:
            self.events.append(FaultEvent(self._request_index, function_id, now))
        return reclaimed

    @property
    def total_faults(self) -> int:
        """Number of reclamations injected so far."""
        return len(self.events)

    def reset(self) -> None:
        """Forget every injected event and restart the request counter."""
        self.events.clear()
        self._request_index = 0
