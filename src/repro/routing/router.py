"""Key-to-shard routing for the sharded serving tier.

The sharded front door (:class:`repro.engine.sharded.ShardedEngineFLStore`)
partitions the request stream across N independent FLStore shards.  Routing
is by *data affinity*: every request carries a routing key derived from the
FL metadata it touches (``(round_id, client_id)``), so requests that need
the same round's updates land on the shard whose cache already holds them.

Two placements are provided, both deterministic across processes and runs
(they use an explicit FNV-1a hash, never Python's randomized ``hash``):

* :class:`ModuloRouter` — ``hash(key) % num_shards``.  Perfectly balanced
  for uniform keys, but resizing the tier remaps almost every key.
* :class:`ConsistentHashRouter` — a classic hash ring with virtual nodes.
  Slightly less balanced, but growing the tier from N to N+1 shards remaps
  only ~1/(N+1) of the key space, which keeps shard caches warm across
  resizes.

Placement is pluggable: anything implementing :class:`ShardRouter` can be
handed to the front door (e.g. a locality- or load-aware placement learned
from the trace).
"""

from __future__ import annotations

import abc
import bisect

#: FNV-1a 64-bit offset basis / prime.
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def stable_hash_u64(data: str | bytes) -> int:
    """64-bit FNV-1a hash of ``data``; stable across processes and platforms.

    Python's builtin ``hash`` of strings is salted per process
    (``PYTHONHASHSEED``), which would make shard placement — and therefore
    every downstream latency number — irreproducible.  FNV-1a is tiny, has
    good avalanche behaviour for short keys, and is trivially portable.
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    value = _FNV_OFFSET
    for byte in data:
        value = ((value ^ byte) * _FNV_PRIME) & _MASK64
    return value


def request_routing_key(request) -> int:
    """The routing key of one :class:`~repro.workloads.base.WorkloadRequest`.

    Derived from the data coordinates the request touches — the target round
    and (when the workload follows one client across rounds) the client —
    not from the request id, so retries and repeated requests for the same
    data always land on the same shard.
    """
    client = request.client_id if request.client_id is not None else -1
    return stable_hash_u64(f"r{request.round_id}:c{client}")


class ShardRouter(abc.ABC):
    """Maps routing keys to shard indices ``[0, num_shards)``."""

    #: Machine-friendly identifier (used by the CLI and report labels).
    kind: str = "router"

    def __init__(self, num_shards: int) -> None:
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        self.num_shards = int(num_shards)

    @abc.abstractmethod
    def route(self, key: int) -> int:
        """The shard index responsible for routing key ``key``."""

    def resized(self, num_shards: int) -> "ShardRouter":
        """A router of the same kind and parameters over ``num_shards`` shards.

        Online resize (:meth:`repro.engine.sharded.ShardedEngineFLStore.add_shard`
        / ``remove_shard``) rebuilds placement through this hook, so custom
        parameters (e.g. a non-default ``vnodes``) survive the resize —
        rebuilding a ring with different parameters would remap far more
        than the advertised ~1/(N+1) of the key space.
        """
        return make_router(self.kind, num_shards)

    def route_request(self, request) -> int:
        """Shard index for a workload request (routes by its data affinity)."""
        return self.route(request_routing_key(request))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(num_shards={self.num_shards})"


class ModuloRouter(ShardRouter):
    """Modulo placement: ``key % num_shards``."""

    kind = "modulo"

    def route(self, key: int) -> int:
        return key % self.num_shards


class ConsistentHashRouter(ShardRouter):
    """Consistent-hash ring placement with virtual nodes.

    Each shard owns ``vnodes`` points on a 64-bit ring; a key is routed to
    the shard owning the first point clockwise from the key's hash.  More
    virtual nodes smooth the per-shard load at the cost of a larger ring.
    """

    kind = "consistent-hash"

    def __init__(self, num_shards: int, vnodes: int = 64) -> None:
        super().__init__(num_shards)
        if vnodes <= 0:
            raise ValueError(f"vnodes must be positive, got {vnodes}")
        self.vnodes = int(vnodes)
        points: list[tuple[int, int]] = []
        for shard in range(self.num_shards):
            for replica in range(self.vnodes):
                points.append((stable_hash_u64(f"shard-{shard}:vnode-{replica}"), shard))
        points.sort()
        self._ring_points = [point for point, _ in points]
        self._ring_shards = [shard for _, shard in points]

    def resized(self, num_shards: int) -> "ConsistentHashRouter":
        """A ring over ``num_shards`` shards with this router's ``vnodes``."""
        return ConsistentHashRouter(num_shards, vnodes=self.vnodes)

    def route(self, key: int) -> int:
        point = stable_hash_u64(f"key-{key}")
        index = bisect.bisect_right(self._ring_points, point)
        if index == len(self._ring_points):  # wrap around the ring
            index = 0
        return self._ring_shards[index]


#: Router kinds understood by :func:`make_router` (and the CLI).
ROUTER_KINDS: tuple[str, ...] = ("consistent-hash", "modulo")


def make_router(kind: str, num_shards: int, **kwargs) -> ShardRouter:
    """Build the router called ``kind`` over ``num_shards`` shards.

    Extra keyword arguments pass through to the router constructor
    (e.g. ``vnodes`` for ``consistent-hash``).
    """
    if kind == "modulo":
        return ModuloRouter(num_shards, **kwargs)
    if kind == "consistent-hash":
        return ConsistentHashRouter(num_shards, **kwargs)
    raise ValueError(f"unknown router kind {kind!r}; expected one of {ROUTER_KINDS}")
