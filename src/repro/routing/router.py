"""Key-to-shard routing for the sharded serving tier.

The sharded front door (:class:`repro.engine.sharded.ShardedEngineFLStore`)
partitions the request stream across N independent FLStore shards.  Routing
is by *data affinity*: every request carries a routing key derived from the
FL metadata it touches (``(round_id, client_id)``), so requests that need
the same round's updates land on the shard whose cache already holds them.

Two placements are provided, both deterministic across processes and runs
(they use an explicit FNV-1a hash, never Python's randomized ``hash``):

* :class:`ModuloRouter` — ``hash(key) % num_shards``.  Perfectly balanced
  for uniform keys, but resizing the tier remaps almost every key.
* :class:`ConsistentHashRouter` — a classic hash ring with virtual nodes.
  Slightly less balanced, but growing the tier from N to N+1 shards remaps
  only ~1/(N+1) of the key space, which keeps shard caches warm across
  resizes.
* :class:`JoinShortestQueueRouter` — load-aware placement over the ring's
  *affinity candidates*: each key names the first ``fanout`` distinct shards
  clockwise from its ring point, and an arrival goes to whichever candidate
  currently has the fewest outstanding requests.  Hot keys therefore spread
  over a small, stable shard set (caches stay warm on every candidate)
  instead of melting one shard while its neighbours idle.

Placement is pluggable: anything implementing :class:`ShardRouter` can be
handed to the front door (e.g. a locality- or load-aware placement learned
from the trace).  A router that defines ``bind_load_probe`` is handed a
``slot -> load`` callable by the front door (rebound after every resize), so
load-aware placements see live queue state without owning a reference to the
tier.
"""

from __future__ import annotations

import abc
import bisect

#: FNV-1a 64-bit offset basis / prime.
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def stable_hash_u64(data: str | bytes) -> int:
    """64-bit FNV-1a hash of ``data``; stable across processes and platforms.

    Python's builtin ``hash`` of strings is salted per process
    (``PYTHONHASHSEED``), which would make shard placement — and therefore
    every downstream latency number — irreproducible.  FNV-1a is tiny, has
    good avalanche behaviour for short keys, and is trivially portable.
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    value = _FNV_OFFSET
    for byte in data:
        value = ((value ^ byte) * _FNV_PRIME) & _MASK64
    return value


def request_routing_key(request) -> int:
    """The routing key of one :class:`~repro.workloads.base.WorkloadRequest`.

    Derived from the data coordinates the request touches — the target round
    and (when the workload follows one client across rounds) the client —
    not from the request id, so retries and repeated requests for the same
    data always land on the same shard.
    """
    client = request.client_id if request.client_id is not None else -1
    return stable_hash_u64(f"r{request.round_id}:c{client}")


class ShardRouter(abc.ABC):
    """Maps routing keys to shard indices ``[0, num_shards)``."""

    #: Machine-friendly identifier (used by the CLI and report labels).
    kind: str = "router"

    def __init__(self, num_shards: int) -> None:
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        self.num_shards = int(num_shards)

    @abc.abstractmethod
    def route(self, key: int) -> int:
        """The shard index responsible for routing key ``key``."""

    def resized(self, num_shards: int) -> "ShardRouter":
        """A router of the same kind and parameters over ``num_shards`` shards.

        Online resize (:meth:`repro.engine.sharded.ShardedEngineFLStore.add_shard`
        / ``remove_shard``) rebuilds placement through this hook, so custom
        parameters (e.g. a non-default ``vnodes``) survive the resize —
        rebuilding a ring with different parameters would remap far more
        than the advertised ~1/(N+1) of the key space.
        """
        return make_router(self.kind, num_shards)

    def route_request(self, request) -> int:
        """Shard index for a workload request (routes by its data affinity)."""
        return self.route(request_routing_key(request))

    def replica_slots(self, key: int, count: int) -> list[int]:
        """The ``count`` distinct slots holding replicas of ``key``, primary first.

        Used by hot-key replication: slot 0 of the result is always
        :meth:`route`'s answer (the primary owner), and the remainder are the
        key's successor slots.  The default walks slots consecutively, which
        is the natural successor set for modulo placement; ring routers
        override this with the clockwise vnode walk so replicas land exactly
        where a resize would move the key (caches stay warm across resizes).
        """
        wanted = min(int(count), self.num_shards)
        primary = self.route(key)
        return [(primary + step) % self.num_shards for step in range(wanted)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(num_shards={self.num_shards})"


class ModuloRouter(ShardRouter):
    """Modulo placement: ``key % num_shards``."""

    kind = "modulo"

    def route(self, key: int) -> int:
        return key % self.num_shards


class ConsistentHashRouter(ShardRouter):
    """Consistent-hash ring placement with virtual nodes.

    Each shard owns ``vnodes`` points on a 64-bit ring; a key is routed to
    the shard owning the first point clockwise from the key's hash.  More
    virtual nodes smooth the per-shard load at the cost of a larger ring.
    """

    kind = "consistent-hash"

    def __init__(self, num_shards: int, vnodes: int = 64) -> None:
        super().__init__(num_shards)
        if vnodes <= 0:
            raise ValueError(f"vnodes must be positive, got {vnodes}")
        self.vnodes = int(vnodes)
        points: list[tuple[int, int]] = []
        for shard in range(self.num_shards):
            for replica in range(self.vnodes):
                points.append((stable_hash_u64(f"shard-{shard}:vnode-{replica}"), shard))
        points.sort()
        self._ring_points = [point for point, _ in points]
        self._ring_shards = [shard for _, shard in points]

    def resized(self, num_shards: int) -> "ConsistentHashRouter":
        """A ring over ``num_shards`` shards with this router's ``vnodes``."""
        return ConsistentHashRouter(num_shards, vnodes=self.vnodes)

    def route(self, key: int) -> int:
        point = stable_hash_u64(f"key-{key}")
        index = bisect.bisect_right(self._ring_points, point)
        if index == len(self._ring_points):  # wrap around the ring
            index = 0
        return self._ring_shards[index]

    def _ring_successors(self, key: int, wanted: int) -> list[int]:
        """First ``wanted`` distinct shards clockwise from the key's ring point."""
        point = stable_hash_u64(f"key-{key}")
        index = bisect.bisect_right(self._ring_points, point)
        ring_size = len(self._ring_shards)
        found: list[int] = []
        for step in range(ring_size):
            shard = self._ring_shards[(index + step) % ring_size]
            if shard not in found:
                found.append(shard)
                if len(found) == wanted:
                    break
        return found

    def replica_slots(self, key: int, count: int) -> list[int]:
        """Replica slots on the ring: the key's successor shards, primary first.

        Placing replicas on the clockwise successors means a shard removal
        hands each key to a slot that already holds its replica — the same
        property that makes consistent hashing resize-friendly for primaries
        extends to the replica set.
        """
        return self._ring_successors(key, min(int(count), self.num_shards))


class JoinShortestQueueRouter(ConsistentHashRouter):
    """Join-shortest-queue placement over each key's ring affinity candidates.

    A key's *candidates* are the first ``fanout`` distinct shards clockwise
    from its ring point — a stable, key-determined set, so repeated requests
    for the same data keep warming the same few caches.  When the front door
    has bound a load probe (:meth:`bind_load_probe`), an arrival routes to
    the least-loaded candidate (ties prefer the affinity order, primary
    first); unbound, the router degrades to pure consistent hashing, since
    the primary candidate *is* the ring owner.

    ``fanout`` trades affinity against balance: 1 is pure hashing, the shard
    count is global JSQ (perfect balance, no affinity).  The default of 2 is
    the classic "power of two choices" — most of the balance win at a
    fraction of the cache dilution.
    """

    kind = "jsq"

    def __init__(self, num_shards: int, vnodes: int = 64, fanout: int = 2) -> None:
        super().__init__(num_shards, vnodes=vnodes)
        if fanout <= 0:
            raise ValueError(f"fanout must be positive, got {fanout}")
        self.fanout = int(fanout)
        self._load_probe = None

    def resized(self, num_shards: int) -> "JoinShortestQueueRouter":
        """A ring over ``num_shards`` shards with this router's parameters.

        The load probe is *not* carried over — the front door rebinds it
        against the post-resize shard set.
        """
        return JoinShortestQueueRouter(num_shards, vnodes=self.vnodes, fanout=self.fanout)

    def bind_load_probe(self, probe) -> None:
        """Attach the ``slot -> outstanding requests`` callable to route by."""
        self._load_probe = probe

    def candidates(self, key: int) -> list[int]:
        """The key's affinity candidates: first ``fanout`` distinct ring owners."""
        return self._ring_successors(key, min(self.fanout, self.num_shards))

    def route(self, key: int) -> int:
        candidates = self.candidates(key)
        probe = self._load_probe
        if probe is None or len(candidates) == 1:
            return candidates[0]
        best = candidates[0]
        best_load = probe(best)
        for shard in candidates[1:]:
            load = probe(shard)
            if load < best_load:
                best, best_load = shard, load
        return best


#: Router kinds understood by :func:`make_router` (and the CLI).
ROUTER_KINDS: tuple[str, ...] = ("consistent-hash", "modulo", "jsq")


def make_router(kind: str, num_shards: int, **kwargs) -> ShardRouter:
    """Build the router called ``kind`` over ``num_shards`` shards.

    Extra keyword arguments pass through to the router constructor
    (e.g. ``vnodes`` for ``consistent-hash``, ``fanout`` for ``jsq``).
    """
    if kind == "modulo":
        return ModuloRouter(num_shards, **kwargs)
    if kind == "consistent-hash":
        return ConsistentHashRouter(num_shards, **kwargs)
    if kind == "jsq":
        return JoinShortestQueueRouter(num_shards, **kwargs)
    raise ValueError(f"unknown router kind {kind!r}; expected one of {ROUTER_KINDS}")
