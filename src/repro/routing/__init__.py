"""Key-to-shard routing for the sharded serving tier (see :mod:`.router`)."""

from repro.routing.router import (
    ROUTER_KINDS,
    ConsistentHashRouter,
    JoinShortestQueueRouter,
    ModuloRouter,
    ShardRouter,
    make_router,
    request_routing_key,
    stable_hash_u64,
)

__all__ = [
    "ROUTER_KINDS",
    "ConsistentHashRouter",
    "JoinShortestQueueRouter",
    "ModuloRouter",
    "ShardRouter",
    "make_router",
    "request_routing_key",
    "stable_hash_u64",
]
