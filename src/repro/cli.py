"""Command-line interface for the FLStore reproduction.

Usage examples::

    python -m repro.cli list                         # list available experiments
    python -m repro.cli run fig7 --rounds 15         # regenerate Figure 7 and print it
    python -m repro.cli run table2 --out table2.json # save the rows as JSON
    python -m repro.cli run fig7 --parallel          # fan model sweeps out to worker processes
    python -m repro.cli run fig11 --workers 4        # explicit worker count
    python -m repro.cli run-load --workers 4         # open-loop load sweep, parallel cells
    python -m repro.cli run-shard-sweep --shards 1,2,4 --shed-policy drop
    python -m repro.cli workloads                     # show the workload taxonomy
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, Callable

from repro.analysis import experiments as E
from repro.analysis import experiments_appendix as A
from repro.analysis.export import export_csv, export_json
from repro.analysis.perf import tune_gc
from repro.analysis.runner import set_max_workers
from repro.analysis.tables import format_table
from repro.config import SHED_POLICIES
from repro.engine.autoscale import AUTOSCALER_KINDS
from repro.routing import ROUTER_KINDS
from repro.traces.arrivals import ARRIVAL_KINDS
from repro.workloads.registry import TAXONOMY, WORKLOAD_DISPLAY_NAMES

#: Experiment name -> (callable, description, accepts num_rounds kwarg).
EXPERIMENTS: dict[str, tuple[Callable[..., Any], str]] = {
    "fig1": (E.run_figure1_latency_share, "Non-training share of per-round FL latency"),
    "fig2": (E.run_figure2_cost_share, "Non-training share of per-round FL cost"),
    "fig4": (E.run_figure4_comm_vs_comp, "Communication vs computation latency"),
    "fig7": (E.run_figure7_latency_vs_objstore, "Per-request latency vs ObjStore-Agg"),
    "fig8": (E.run_figure8_cost_vs_objstore, "Per-request cost vs ObjStore-Agg"),
    "fig9": (E.run_figure9_vs_cache_agg, "Per-request latency/cost vs Cache-Agg"),
    "fig10": (E.run_figure10_overall_cost, "Overall per-round FL cost with/without FLStore"),
    "fig11": (E.run_figure11_policy_comparison, "Caching-policy variant comparison"),
    "table2": (E.run_table2_hit_rates, "Cache-policy hit rates"),
    "fig12": (A.run_figure12_scalability, "Scalability with concurrent requests"),
    "fig13": (A.run_figure13_fault_tolerance, "Fault tolerance vs function instances"),
    "fig14": (A.run_figure14_replication_vs_refetch, "Replication vs re-fetching"),
    "fig15": (E.run_figure15_total_time_breakup, "Total time breakup vs ObjStore-Agg"),
    "fig16": (E.run_figure16_total_cost_breakup, "Total cost breakup vs ObjStore-Agg"),
    "fig17": (E.run_figure17_vs_cache_agg_totals, "Totals vs Cache-Agg"),
    "fig18": (E.run_figure18_static_ablation, "FLStore vs FLStore-Static ablation"),
    "fig19": (A.run_figure19_model_footprints, "Model memory footprints"),
    "sec55": (A.run_section55_component_overhead, "Component overhead"),
    "sec22": (A.run_section22_capacity_analysis, "Capacity analysis"),
    "prefetch": (A.run_ablation_prefetch_depth, "Prefetch-depth ablation (extension)"),
}

#: Experiments whose runner accepts a ``num_rounds`` keyword.
_ACCEPTS_ROUNDS = {
    "fig1", "fig2", "fig4", "fig7", "fig8", "fig9", "fig10", "fig11", "table2",
    "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "prefetch",
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")
    sub.add_parser("workloads", help="show the non-training workload taxonomy (Table 1)")

    run = sub.add_parser("run", help="run one experiment and print its rows")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS), help="experiment identifier")
    run.add_argument("--rounds", type=int, default=None, help="number of ingested training rounds")
    run.add_argument("--seed", type=int, default=None, help="simulation seed")
    run.add_argument("--out", type=str, default=None, help="write results to a .json or .csv file")
    run.add_argument(
        "--parallel",
        action="store_true",
        help="serve independent (system, workload) traces in parallel worker processes",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker-process count for --parallel (default: CPU count); implies --parallel",
    )

    load = sub.add_parser(
        "run-load",
        help="open-loop load sweep through the discrete-event engine",
        description=(
            "Serve the load-sweep request mix with open-loop arrivals (Poisson, "
            "bursty, diurnal) at several offered utilizations and print offered "
            "load vs goodput, queue depth, and p50/p95/p99 sojourn time."
        ),
    )
    load.add_argument("--rounds", type=int, default=12, help="number of ingested training rounds")
    load.add_argument("--requests", type=int, default=120, help="requests per sweep point")
    load.add_argument("--seed", type=int, default=7, help="simulation seed")
    load.add_argument("--model", type=str, default="efficientnet_v2_small", help="model name")
    load.add_argument(
        "--processes",
        type=str,
        default=",".join(ARRIVAL_KINDS),
        help="comma-separated arrival processes (poisson, bursty, diurnal)",
    )
    load.add_argument(
        "--utilizations",
        type=str,
        default="0.5,1.0,2.0",
        help="comma-separated offered utilizations (multiples of the service rate)",
    )
    load.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan independent sweep cells out to this many worker processes",
    )
    load.add_argument(
        "--parallel",
        action="store_true",
        help="shorthand for --workers <CPU count>",
    )
    load.add_argument("--out", type=str, default=None, help="write results to a .json or .csv file")

    shard = sub.add_parser(
        "run-shard-sweep",
        help="shard count x utilization sweep through the routed serving tier",
        description=(
            "Serve the load-sweep request mix on a ShardedEngineFLStore at "
            "several shard counts and offered utilizations, with per-shard "
            "admission control, and print goodput, p50/p99 sojourn, shed "
            "rate, and SLO-violation rate per sweep cell."
        ),
    )
    shard.add_argument("--rounds", type=int, default=12, help="number of ingested training rounds")
    shard.add_argument("--requests", type=int, default=120, help="requests per sweep point")
    shard.add_argument("--seed", type=int, default=7, help="simulation seed")
    shard.add_argument("--model", type=str, default="efficientnet_v2_small", help="model name")
    shard.add_argument(
        "--process",
        type=str,
        default="bursty",
        choices=ARRIVAL_KINDS,
        help="arrival process driving every sweep cell",
    )
    shard.add_argument(
        "--shards",
        type=str,
        default="1,2,4",
        help="comma-separated shard counts to sweep",
    )
    shard.add_argument(
        "--utilizations",
        type=str,
        default="0.5,1.0,2.0",
        help="comma-separated offered utilizations (multiples of one shard's service rate)",
    )
    shard.add_argument(
        "--max-queue-depth",
        type=int,
        default=8,
        help="admission bound: waiting requests allowed per shard (0 = unbounded)",
    )
    shard.add_argument(
        "--shed-policy",
        type=str,
        default="drop",
        choices=SHED_POLICIES,
        help="what happens to arrivals refused admission",
    )
    shard.add_argument(
        "--router",
        type=str,
        default="consistent-hash",
        choices=ROUTER_KINDS,
        help="key-to-shard placement",
    )
    shard.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan independent sweep cells out to this many worker processes",
    )
    shard.add_argument(
        "--parallel",
        action="store_true",
        help="shorthand for --workers <CPU count>",
    )
    shard.add_argument("--out", type=str, default=None, help="write results to a .json or .csv file")

    autoscale = sub.add_parser(
        "run-autoscale",
        help="autoscaling-policy comparison on the resizable serving tier",
        description=(
            "Serve the load-sweep request mix on a resizable ShardedEngineFLStore "
            "under each autoscaling policy (none, reactive, predictive) and print "
            "p99 sojourn, shed rate, SLO-violation rate, warm-capacity cost, and "
            "scale-event counts per cell, plus the predictive-vs-reactive deltas."
        ),
    )
    autoscale.add_argument("--rounds", type=int, default=12, help="number of ingested training rounds")
    autoscale.add_argument("--requests", type=int, default=160, help="requests per sweep point")
    autoscale.add_argument("--seed", type=int, default=7, help="simulation seed")
    autoscale.add_argument("--model", type=str, default="efficientnet_v2_small", help="model name")
    autoscale.add_argument(
        "--process",
        type=str,
        default="diurnal",
        choices=ARRIVAL_KINDS,
        help="arrival process driving every sweep cell",
    )
    autoscale.add_argument(
        "--policies",
        type=str,
        default=",".join(AUTOSCALER_KINDS),
        help="comma-separated autoscaling policies (none, reactive, predictive)",
    )
    autoscale.add_argument(
        "--utilizations",
        type=str,
        default="2.5",
        help="comma-separated offered utilizations (multiples of one capacity unit's service rate)",
    )
    autoscale.add_argument(
        "--max-queue-depth",
        type=int,
        default=6,
        help="admission bound: waiting requests allowed per shard (0 = unbounded)",
    )
    autoscale.add_argument(
        "--shed-policy",
        type=str,
        default="drop",
        choices=SHED_POLICIES,
        help="what happens to arrivals refused admission",
    )
    autoscale.add_argument(
        "--start-shards",
        type=int,
        default=1,
        help="shard count the tier starts from (the autoscaler takes it from there)",
    )
    autoscale.add_argument(
        "--control-interval",
        type=float,
        default=5.0,
        help="virtual-time spacing of autoscaler control ticks, in seconds",
    )
    autoscale.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan independent sweep cells out to this many worker processes",
    )
    autoscale.add_argument(
        "--parallel",
        action="store_true",
        help="shorthand for --workers <CPU count>",
    )
    autoscale.add_argument(
        "--out", type=str, default=None, help="write results to a .json or .csv file"
    )
    return parser


def _run_experiment(name: str, rounds: int | None, seed: int | None) -> Any:
    runner, _ = EXPERIMENTS[name]
    kwargs: dict[str, Any] = {}
    if rounds is not None and name in _ACCEPTS_ROUNDS:
        kwargs["num_rounds"] = rounds
    if seed is not None and name in _ACCEPTS_ROUNDS and name not in {"fig19", "sec55", "sec22"}:
        kwargs["seed"] = seed
    return runner(**kwargs)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        rows = [{"experiment": name, "description": desc} for name, (_, desc) in sorted(EXPERIMENTS.items())]
        print(format_table(rows, title="Available experiments"))
        return 0

    if args.command == "workloads":
        rows = [
            {"workload": name, "figure_label": WORKLOAD_DISPLAY_NAMES[name], "policy": policy}
            for name, policy in sorted(TAXONOMY.items())
        ]
        print(format_table(rows, title="Non-training workload taxonomy (Table 1)"))
        return 0

    tune_gc()
    if args.command in ("run-load", "run-shard-sweep", "run-autoscale"):
        workers = args.workers
        if workers is None and args.parallel:
            workers = os.cpu_count() or 1
        columns = None
        extra_tables = []
        if args.command == "run-autoscale":
            title = "Autoscale sweep (resizable serving tier)"
            policies = tuple(p.strip() for p in args.policies.split(",") if p.strip())
            unknown = sorted(set(policies) - set(AUTOSCALER_KINDS))
            if unknown:
                print(
                    f"error: unknown --policies {','.join(unknown)}; "
                    f"expected a comma list of {', '.join(AUTOSCALER_KINDS)}",
                    file=sys.stderr,
                )
                return 2
            result = E.run_autoscale_sweep(
                model_name=args.model,
                process=args.process,
                policies=policies,
                utilizations=tuple(float(u) for u in args.utilizations.split(",") if u.strip()),
                num_rounds=args.rounds,
                num_requests=args.requests,
                seed=args.seed,
                max_queue_depth=args.max_queue_depth,
                shed_policy=args.shed_policy,
                start_shards=args.start_shards,
                control_interval=args.control_interval,
                workers=workers,
            )
            columns = list(E.AUTOSCALE_REPORT_COLUMNS)
            comparisons = E.compare_autoscale_policies(result["rows"])
            if comparisons:
                extra_tables.append(
                    format_table(comparisons, title="Predictive vs reactive (same offered load)")
                )
        elif args.command == "run-load":
            title = "Open-loop load sweep (engine)"
            result = E.run_load_sweep(
                model_name=args.model,
                processes=tuple(p.strip() for p in args.processes.split(",") if p.strip()),
                utilizations=tuple(float(u) for u in args.utilizations.split(",") if u.strip()),
                num_rounds=args.rounds,
                num_requests=args.requests,
                seed=args.seed,
                workers=workers,
            )
        else:
            title = "Shard sweep (routed serving tier)"
            result = E.run_shard_sweep(
                model_name=args.model,
                process=args.process,
                shard_counts=tuple(int(s) for s in args.shards.split(",") if s.strip()),
                utilizations=tuple(float(u) for u in args.utilizations.split(",") if u.strip()),
                num_rounds=args.rounds,
                num_requests=args.requests,
                seed=args.seed,
                max_queue_depth=args.max_queue_depth,
                shed_policy=args.shed_policy,
                router_kind=args.router,
                workers=workers,
            )
        print(format_table(result["rows"], columns=columns, title=title))
        for table in extra_tables:
            print(table)
        print(
            "summary:",
            {k: v for k, v in result.items() if k != "rows" and not isinstance(v, (list, dict))},
        )
        if args.out:
            if args.out.endswith(".csv"):
                path = export_csv(result["rows"], args.out)
            else:
                path = export_json(result, args.out)
            print(f"wrote {path}")
        return 0

    if args.parallel or args.workers is not None:
        set_max_workers(args.workers if args.workers is not None else (os.cpu_count() or 1))

    result = _run_experiment(args.experiment, args.rounds, args.seed)
    rows = result["rows"] if isinstance(result, dict) and "rows" in result else result
    title = EXPERIMENTS[args.experiment][1]
    if isinstance(rows, list) and rows and isinstance(rows[0], dict):
        print(format_table(rows, title=title))
    else:
        print(title)
        print(rows)
    if isinstance(result, dict):
        extras = {k: v for k, v in result.items() if k != "rows" and not isinstance(v, (list, dict))}
        if extras:
            print("summary:", extras)

    if args.out:
        if args.out.endswith(".csv") and isinstance(rows, list):
            path = export_csv(rows, args.out)
        else:
            path = export_json(result, args.out)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    sys.exit(main())
