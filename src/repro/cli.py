"""Command-line interface for the FLStore reproduction.

Usage examples::

    python -m repro.cli list                         # list available experiments
    python -m repro.cli run fig7 --rounds 15         # regenerate Figure 7 and print it
    python -m repro.cli run table2 --out table2.json # save the rows as JSON
    python -m repro.cli run fig7 --parallel          # fan model sweeps out to worker processes
    python -m repro.cli run fig11 --workers 4        # explicit worker count
    python -m repro.cli run-load --workers 4         # open-loop load sweep, parallel cells
    python -m repro.cli run-shard-sweep --shards 1,2,4 --shed-policy drop
    python -m repro.cli run-faults --kinds shard-crash,reclamation-storm
    python -m repro.cli run-tenants --disciplines fifo,wfq --steady-weights 1,2,4
    python -m repro.cli run-scenario --list           # registered scenario specs
    python -m repro.cli run-scenario --name jsq-hotkey --set tier.shards=8
    python -m repro.cli run-scenario --spec examples/scenarios/sharded_burst.json \
        --sweep tier.router_kind=consistent-hash,jsq
    python -m repro.cli run-missing --artifacts artifacts --parallel
    python -m repro.cli run-missing --dry-run         # plan only: what would run and why
    python -m repro.cli report --artifacts artifacts --out report
    python -m repro.cli workloads                     # show the workload taxonomy
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import dataclass
from typing import Any, Callable

from repro.analysis import experiments as E
from repro.analysis import experiments_appendix as A
from repro.analysis.export import export_csv, export_json
from repro.analysis.perf import tune_gc
from repro.analysis.runner import set_max_workers
from repro.analysis.tables import format_table
from repro.config import QUEUE_DISCIPLINES, SHED_POLICIES
from repro.fleet import (
    ArtifactStore,
    FleetError,
    default_fleet,
    generate_report,
    load_fleet,
    run_missing,
)
from repro.engine.autoscale import AUTOSCALER_KINDS
from repro.engine.faults import FAULT_KINDS
from repro.engine.sharded import REPLICATION_POLICIES
from repro.engine.vectorized import explain_fast_path
from repro.routing import ROUTER_KINDS
from repro.scenario import (
    ScenarioSpec,
    ScenarioValidationError,
    apply_overrides,
    coerce_override,
    field_value,
    get_scenario,
    list_scenarios,
    smoke_spec,
)
from repro.scenario import run as run_scenario_spec
from repro.scenario import sweep as scenario_sweep
from repro.traces.arrivals import ARRIVAL_KINDS
from repro.workloads.registry import TAXONOMY, WORKLOAD_DISPLAY_NAMES

#: Experiment name -> (callable, description, accepts num_rounds kwarg).
EXPERIMENTS: dict[str, tuple[Callable[..., Any], str]] = {
    "fig1": (E.run_figure1_latency_share, "Non-training share of per-round FL latency"),
    "fig2": (E.run_figure2_cost_share, "Non-training share of per-round FL cost"),
    "fig4": (E.run_figure4_comm_vs_comp, "Communication vs computation latency"),
    "fig7": (E.run_figure7_latency_vs_objstore, "Per-request latency vs ObjStore-Agg"),
    "fig8": (E.run_figure8_cost_vs_objstore, "Per-request cost vs ObjStore-Agg"),
    "fig9": (E.run_figure9_vs_cache_agg, "Per-request latency/cost vs Cache-Agg"),
    "fig10": (E.run_figure10_overall_cost, "Overall per-round FL cost with/without FLStore"),
    "fig11": (E.run_figure11_policy_comparison, "Caching-policy variant comparison"),
    "table2": (E.run_table2_hit_rates, "Cache-policy hit rates"),
    "fig12": (A.run_figure12_scalability, "Scalability with concurrent requests"),
    "fig13": (A.run_figure13_fault_tolerance, "Fault tolerance vs function instances"),
    "fig14": (A.run_figure14_replication_vs_refetch, "Replication vs re-fetching"),
    "fig15": (E.run_figure15_total_time_breakup, "Total time breakup vs ObjStore-Agg"),
    "fig16": (E.run_figure16_total_cost_breakup, "Total cost breakup vs ObjStore-Agg"),
    "fig17": (E.run_figure17_vs_cache_agg_totals, "Totals vs Cache-Agg"),
    "fig18": (E.run_figure18_static_ablation, "FLStore vs FLStore-Static ablation"),
    "fig19": (A.run_figure19_model_footprints, "Model memory footprints"),
    "sec55": (A.run_section55_component_overhead, "Component overhead"),
    "sec22": (A.run_section22_capacity_analysis, "Capacity analysis"),
    "prefetch": (A.run_ablation_prefetch_depth, "Prefetch-depth ablation (extension)"),
}

#: Experiments whose runner accepts a ``num_rounds`` keyword.
_ACCEPTS_ROUNDS = {
    "fig1", "fig2", "fig4", "fig7", "fig8", "fig9", "fig10", "fig11", "table2",
    "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "prefetch",
}


@dataclass(frozen=True)
class _SweepFlag:
    """One shared sweep flag: described once, exposed by several sweeps.

    ``key`` names the scenario-spec field the flag maps onto (axis flags map
    onto the field they sweep), so flag semantics, choices, and help come
    from the spec layer instead of being hand-triplicated per subcommand;
    per-sweep parsers override only the *default*.
    """

    flag: str
    key: str
    type: Callable[[str], Any] = str
    help: str = ""
    choices: tuple[str, ...] | None = None


#: The shared flag catalog of every ``run-*`` sweep subcommand.
_SWEEP_FLAGS: dict[str, _SweepFlag] = {
    flag.flag: flag
    for flag in (
        _SweepFlag("--rounds", "num_rounds", int, "number of ingested training rounds"),
        _SweepFlag("--requests", "workload.num_requests", int, "requests per sweep point"),
        _SweepFlag("--seed", "seed", int, "simulation seed"),
        _SweepFlag("--model", "model", str, "model name"),
        _SweepFlag(
            "--process",
            "arrival.kind",
            str,
            "arrival process driving every sweep cell",
            choices=ARRIVAL_KINDS,
        ),
        _SweepFlag(
            "--processes",
            "arrival.kind (axis)",
            str,
            f"comma-separated arrival processes ({', '.join(ARRIVAL_KINDS)})",
        ),
        _SweepFlag(
            "--utilizations",
            "arrival.utilization (axis)",
            str,
            "comma-separated offered utilizations (multiples of the calibrated service rate)",
        ),
        _SweepFlag("--shards", "tier.shards (axis)", str, "comma-separated shard counts to sweep"),
        _SweepFlag(
            "--policies",
            "tier.autoscaler.policy (axis)",
            str,
            f"comma-separated autoscaling policies ({', '.join(AUTOSCALER_KINDS)})",
        ),
        _SweepFlag(
            "--max-queue-depth",
            "tier.admission.max_queue_depth",
            int,
            "admission bound: waiting requests allowed per shard (0 = unbounded)",
        ),
        _SweepFlag(
            "--shed-policy",
            "tier.admission.shed_policy",
            str,
            "what happens to arrivals refused admission",
            choices=SHED_POLICIES,
        ),
        _SweepFlag(
            "--router", "tier.router_kind", str, "key-to-shard placement", choices=ROUTER_KINDS
        ),
        _SweepFlag(
            "--replication-factor",
            "tier.replication.factor",
            int,
            "shards holding each hot key (primary included; 1 = no extra copies)",
        ),
        _SweepFlag(
            "--replication-policy",
            "tier.replication.policy",
            str,
            "which keys get replicated across shards",
            choices=REPLICATION_POLICIES,
        ),
        _SweepFlag(
            "--start-shards",
            "tier.shards",
            int,
            "shard count the tier starts from (the autoscaler takes it from there)",
        ),
        _SweepFlag(
            "--control-interval",
            "control_interval_seconds",
            float,
            "virtual-time spacing of control-loop ticks (autoscaler or remediation), in seconds",
        ),
        _SweepFlag(
            "--kinds",
            "faults[0].kind (axis)",
            str,
            f"comma-separated fault kinds to inject ({', '.join(FAULT_KINDS)})",
        ),
        _SweepFlag(
            "--utilization",
            "arrival.utilization",
            float,
            "offered utilization (multiple of the calibrated service rate)",
        ),
        _SweepFlag(
            "--shadow-requests",
            "remediation.shadow_requests",
            int,
            "trace length of each bounded shadow-verification run",
        ),
        _SweepFlag(
            "--disciplines",
            "tier.queue_discipline (axis)",
            str,
            f"comma-separated queue disciplines ({', '.join(QUEUE_DISCIPLINES)})",
        ),
        _SweepFlag(
            "--steady-weights",
            "tenants.steady.weight (axis)",
            str,
            "comma-separated fair-queueing weights for the steady tenant",
        ),
        _SweepFlag(
            "--bursty-utilization",
            "tenants.bursty.utilization",
            float,
            "offered utilization of the noisy neighbour (multiple of the calibrated service rate)",
        ),
        _SweepFlag(
            "--tenant-requests",
            "tenants.<name>.num_requests",
            int,
            "per-tenant trace length (overrides every tenant's num_requests)",
        ),
    )
}

#: Per-sweep flag exposure: subcommand -> {flag: default}.  This is the
#: whole difference between the three sweep CLIs; everything else about a
#: flag lives once in :data:`_SWEEP_FLAGS`.
_SWEEP_COMMAND_FLAGS: dict[str, dict[str, Any]] = {
    "run-load": {
        "--rounds": 12,
        "--requests": 120,
        "--seed": 7,
        "--model": "efficientnet_v2_small",
        "--processes": ",".join(ARRIVAL_KINDS),
        "--utilizations": "0.5,1.0,2.0",
    },
    "run-shard-sweep": {
        "--rounds": 12,
        "--requests": 120,
        "--seed": 7,
        "--model": "efficientnet_v2_small",
        "--process": "bursty",
        "--shards": "1,2,4",
        "--utilizations": "0.5,1.0,2.0",
        "--max-queue-depth": 8,
        "--shed-policy": "drop",
        "--router": "consistent-hash",
        "--replication-factor": 1,
        "--replication-policy": "none",
    },
    "run-autoscale": {
        "--rounds": 12,
        "--requests": 160,
        "--seed": 7,
        "--model": "efficientnet_v2_small",
        "--process": "diurnal",
        "--policies": ",".join(AUTOSCALER_KINDS),
        "--utilizations": "2.5",
        "--max-queue-depth": 6,
        "--shed-policy": "drop",
        "--start-shards": 1,
        "--control-interval": 5.0,
    },
    "run-faults": {
        "--rounds": 8,
        "--requests": 96,
        "--seed": 7,
        "--model": "efficientnet_v2_small",
        "--kinds": ",".join(FAULT_KINDS),
        "--utilization": 0.7,
        "--start-shards": 3,
        "--max-queue-depth": 8,
        "--shed-policy": "drop",
        "--control-interval": 5.0,
        "--shadow-requests": 36,
    },
    "run-tenants": {
        "--rounds": 8,
        "--seed": 7,
        "--disciplines": "fifo,wfq,drr",
        "--steady-weights": "1.0,2.0,4.0",
        "--bursty-utilization": 1.0,
        "--tenant-requests": None,
    },
}

_SWEEP_COMMAND_HELP: dict[str, tuple[str, str]] = {
    "run-load": (
        "open-loop load sweep through the discrete-event engine",
        "Serve the load-sweep request mix with open-loop arrivals (Poisson, "
        "bursty, diurnal) at several offered utilizations and print offered "
        "load vs goodput, queue depth, and p50/p95/p99 sojourn time.",
    ),
    "run-shard-sweep": (
        "shard count x utilization sweep through the routed serving tier",
        "Serve the load-sweep request mix on a ShardedEngineFLStore at "
        "several shard counts and offered utilizations, with per-shard "
        "admission control, and print goodput, p50/p99 sojourn, shed "
        "rate, and SLO-violation rate per sweep cell.",
    ),
    "run-autoscale": (
        "autoscaling-policy comparison on the resizable serving tier",
        "Serve the load-sweep request mix on a resizable ShardedEngineFLStore "
        "under each autoscaling policy (none, reactive, predictive) and print "
        "p99 sojourn, shed rate, SLO-violation rate, warm-capacity cost, and "
        "scale-event counts per cell, plus the predictive-vs-reactive deltas.",
    ),
    "run-faults": (
        "fault-injection grid with the closed-loop remediation controller",
        "Inject each canonical fault (shard crash, reclamation storm, slow "
        "shard, network spike) into the serving tier twice — with and without "
        "the shadow-verified remediation controller — and print time-to-"
        "recovery, goodput dip area, tail latency, and the controller's "
        "accept/reject accounting per cell, plus the on-vs-off deltas.",
    ),
    "run-tenants": (
        "queue-discipline x tenant-weight sweep on the noisy-neighbor scenario",
        "Serve the noisy-neighbor scenario — a steady Poisson tenant sharing "
        "one warm slot with a bursty neighbour at twice its arrival rate — "
        "under each queue discipline (fifo, wfq, drr) and steady-tenant weight, and "
        "print per-tenant p99 sojourn, service share, and SLO-violation "
        "rate per cell, plus the WFQ/DRR-vs-FIFO deltas on the steady "
        "tenant.",
    ),
}


def _add_worker_and_out_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan independent sweep cells out to this many worker processes",
    )
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="shorthand for --workers <CPU count>",
    )
    parser.add_argument(
        "--out", type=str, default=None, help="write results to a .json or .csv file"
    )


def _add_fleet_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--artifacts",
        type=str,
        default="artifacts",
        help="artifact directory holding the run manifest (default: artifacts)",
    )
    parser.add_argument(
        "--fleet",
        type=str,
        default=None,
        help="JSON fleet definition file (default: the standing fleet derived "
        "from the scenario registry)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="plan the smoke variant of every cell (shrunk rounds/requests; "
        "smoke cells never collide with full-size ones)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")
    sub.add_parser("workloads", help="show the non-training workload taxonomy (Table 1)")

    run = sub.add_parser("run", help="run one experiment and print its rows")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS), help="experiment identifier")
    run.add_argument("--rounds", type=int, default=None, help="number of ingested training rounds")
    run.add_argument("--seed", type=int, default=None, help="simulation seed")
    run.add_argument("--out", type=str, default=None, help="write results to a .json or .csv file")
    run.add_argument(
        "--parallel",
        action="store_true",
        help="serve independent (system, workload) traces in parallel worker processes",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker-process count for --parallel (default: CPU count); implies --parallel",
    )

    # The three legacy sweeps share one generated flag surface.
    for command, flag_defaults in _SWEEP_COMMAND_FLAGS.items():
        help_line, description = _SWEEP_COMMAND_HELP[command]
        sweep_parser = sub.add_parser(command, help=help_line, description=description)
        for flag, default in flag_defaults.items():
            info = _SWEEP_FLAGS[flag]
            sweep_parser.add_argument(
                flag,
                type=info.type,
                default=default,
                choices=info.choices,
                help=f"{info.help} [spec: {info.key}]",
            )
        _add_worker_and_out_flags(sweep_parser)
        sweep_parser.add_argument(
            "--save-artifact",
            type=str,
            default=None,
            metavar="DIR",
            help="record the sweep rows as a versioned artifact under DIR "
            "(keyed by the full flag set; identical re-runs overwrite in place)",
        )

    scenario = sub.add_parser(
        "run-scenario",
        help="run (or sweep) a declarative scenario spec",
        description=(
            "Build and serve the serving tier a ScenarioSpec describes — any "
            "topology (plain engine, routed shards, autoscaled) from one typed "
            "spec file or registered scenario, with conservation asserted on "
            "every run.  Override any field with --set dotted.key=value; sweep "
            "any field with --sweep dotted.key=v1,v2,..."
        ),
    )
    scenario.add_argument("--spec", type=str, default=None, help="path to a .json/.toml spec file")
    scenario.add_argument(
        "--name", type=str, default=None, help="registered scenario name (see --list)"
    )
    scenario.add_argument(
        "--list", action="store_true", help="list the registered scenarios and exit"
    )
    scenario.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        dest="overrides",
        help="override one spec field by dotted path, e.g. --set tier.shards=4 (repeatable)",
    )
    scenario.add_argument(
        "--sweep",
        action="append",
        default=[],
        metavar="KEY=V1,V2",
        dest="axes",
        help=(
            "sweep one spec field over comma-separated values, e.g. "
            "--sweep arrival.utilization=0.5,1.0,2.0 (repeatable; first axis varies slowest)"
        ),
    )
    scenario.add_argument(
        "--smoke",
        action="store_true",
        help="shrink rounds/requests for a fast end-to-end validation run (CI uses this)",
    )
    _add_worker_and_out_flags(scenario)
    scenario.add_argument(
        "--save-artifact",
        type=str,
        default=None,
        metavar="DIR",
        help="record the result rows as a versioned artifact under DIR "
        "(keyed by the full flag set; identical re-runs overwrite in place)",
    )

    missing = sub.add_parser(
        "run-missing",
        help="run only the fleet cells whose artifacts are absent or stale",
        description=(
            "Plan every cell of the evaluation fleet (each registered scenario "
            "plus the standing sweeps), compare each against the content-"
            "addressed run manifest, and execute only the cells whose artifact "
            "is missing, whose spec hash changed, or whose code fingerprint "
            "changed.  Everything else is reused as-is.  Run twice back to "
            "back, the second invocation executes zero cells."
        ),
    )
    _add_fleet_flags(missing)
    missing.add_argument(
        "--dry-run",
        action="store_true",
        help="print the plan (which cells would run and why) without running anything",
    )
    missing.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan cell runs out to this many worker processes",
    )
    missing.add_argument(
        "--parallel", action="store_true", help="shorthand for --workers <CPU count>"
    )

    report = sub.add_parser(
        "report",
        help="render the evaluation report from recorded artifacts (never re-runs)",
        description=(
            "Render the fleet's Markdown + per-experiment CSV report purely "
            "from artifacts recorded in the run manifest.  A missing or stale "
            "cell fails the report with the exact run-missing command that "
            "repairs it; nothing is ever re-run implicitly."
        ),
    )
    _add_fleet_flags(report)
    report.add_argument(
        "--out",
        type=str,
        default=None,
        help="report output directory (default: <artifacts>/report)",
    )
    return parser


def _axis_values(spec: ScenarioSpec, key: str, text: str) -> list:
    """Parse one ``--sweep key=v1,v2`` axis, typed by the field it sweeps."""
    current = field_value(spec, key)  # unknown paths raise ScenarioValidationError
    values = [coerce_override(item.strip(), current, key) for item in text.split(",") if item.strip()]
    if not values:
        raise ScenarioValidationError(f"--sweep {key} needs at least one value")
    return values


def _run_scenario_command(args) -> int:
    """The ``run-scenario`` subcommand: one spec (or a sweep of it) end to end."""
    if args.list:
        rows = []
        for name in list_scenarios():
            spec = get_scenario(name)
            tier = spec.tier
            topology = "engine" if not tier.sharded else f"{tier.shards}x {tier.router_kind}"
            if tier.autoscaler.enabled:
                topology += f" + {tier.autoscaler.policy} autoscaler"
            rows.append(
                {
                    "scenario": name,
                    "topology": topology,
                    "arrivals": f"{spec.arrival.kind} @ rho={spec.arrival.utilization}",
                    "workloads": ",".join(spec.workload.workloads),
                    "requests": spec.workload.num_requests,
                }
            )
        print(format_table(rows, title="Registered scenarios"))
        return 0
    if bool(args.spec) == bool(args.name):
        print("error: pass exactly one of --spec FILE or --name SCENARIO", file=sys.stderr)
        return 2
    try:
        spec = ScenarioSpec.load(args.spec) if args.spec else get_scenario(args.name)
        overrides: dict[str, str] = {}
        for item in args.overrides:
            key, sep, value = item.partition("=")
            if not sep or not key.strip():
                raise ScenarioValidationError(f"--set expects KEY=VALUE, got {item!r}")
            overrides[key.strip()] = value
        if overrides:
            spec = apply_overrides(spec, overrides)
        if args.smoke:
            spec = smoke_spec(spec)
            reasons = explain_fast_path(spec)
            if reasons:
                print("fast path: event path —")
                for reason in reasons:
                    print(f"  - {reason}")
            else:
                print("fast path: eligible (vectorized)")
        axes: dict[str, list] = {}
        for item in args.axes:
            key, sep, values = item.partition("=")
            if not sep or not key.strip():
                raise ScenarioValidationError(f"--sweep expects KEY=V1,V2,..., got {item!r}")
            axes[key.strip()] = _axis_values(spec, key.strip(), values)
    except (ScenarioValidationError, KeyError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2
    workers = args.workers
    if workers is None and args.parallel:
        workers = os.cpu_count() or 1
    tune_gc()
    try:
        # Axis values are validated per grid point inside sweep(); a bad
        # value must exit like any other spec error, not as a traceback.
        if axes:
            rows = scenario_sweep(spec, axes, workers=workers)
            result: dict[str, Any] = {"scenario": spec.name, "rows": rows}
            title = f"Scenario sweep: {spec.name} ({' x '.join(axes)})"
        else:
            report = run_scenario_spec(spec)
            rows = [report.row()]
            result = {
                "scenario": spec.name,
                "rows": rows,
                "mean_service_seconds": report.mean_service_seconds,
                "slo_seconds": report.slo_seconds,
                "offered_rate_rps": report.offered_rate_rps,
            }
            title = f"Scenario: {spec.name}"
    except ScenarioValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result["spec"] = spec.to_dict()
    print(format_table(rows, title=title))
    print(
        "summary:",
        {k: v for k, v in result.items() if k not in ("rows", "spec")},
    )
    if args.out:
        if args.out.endswith(".csv"):
            path = export_csv(rows, args.out)
        else:
            path = export_json(result, args.out)
        print(f"wrote {path}")
    _maybe_save_sweep_artifact(args, rows)
    return 0


#: argparse attributes that are execution mechanics, not sweep semantics —
#: excluded from the parameter set that keys a recorded sweep artifact.
_NON_SEMANTIC_ARGS = ("command", "workers", "parallel", "out", "save_artifact", "list")


def _maybe_save_sweep_artifact(args, rows: list[dict]) -> None:
    """Record a sweep's rows through the artifact store (``--save-artifact``)."""
    directory = getattr(args, "save_artifact", None)
    if not directory:
        return
    params = {
        key: value for key, value in vars(args).items() if key not in _NON_SEMANTIC_ARGS
    }
    store = ArtifactStore(directory)
    path = store.record_sweep(args.command, params, rows)
    print(f"recorded sweep artifact {path}")


def _fleet_experiments(args):
    return load_fleet(args.fleet) if args.fleet else default_fleet()


def _run_missing_command(args) -> int:
    """The ``run-missing`` subcommand: execute only absent/stale fleet cells."""
    try:
        experiments = _fleet_experiments(args)
        store = ArtifactStore(args.artifacts)
    except FleetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    workers = args.workers
    if workers is None and args.parallel:
        workers = os.cpu_count() or 1
    tune_gc()
    summary = run_missing(
        experiments, store, smoke=args.smoke, workers=workers, dry_run=args.dry_run
    )
    title = "Fleet plan (dry run)" if args.dry_run else "Fleet run"
    print(format_table(summary["cells"], columns=["cell", "status", "action"], title=title))
    print(
        "summary:",
        {
            key: summary[key]
            for key in ("planned", "ran", "reused", "stale", "missing", "dry_run")
        },
    )
    return 0


def _report_command(args) -> int:
    """The ``report`` subcommand: render Markdown + CSV from stored artifacts."""
    try:
        experiments = _fleet_experiments(args)
        store = ArtifactStore(args.artifacts)
    except FleetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    out_dir = args.out if args.out else os.path.join(args.artifacts, "report")
    try:
        result = generate_report(experiments, store, out_dir, smoke=args.smoke)
    except FleetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"wrote {result['report']}")
    for experiment, csv_path in result["csv"].items():
        print(f"wrote {csv_path} ({result['rows'][experiment]} rows)")
    return 0


def _run_experiment(name: str, rounds: int | None, seed: int | None) -> Any:
    runner, _ = EXPERIMENTS[name]
    kwargs: dict[str, Any] = {}
    if rounds is not None and name in _ACCEPTS_ROUNDS:
        kwargs["num_rounds"] = rounds
    if seed is not None and name in _ACCEPTS_ROUNDS and name not in {"fig19", "sec55", "sec22"}:
        kwargs["seed"] = seed
    return runner(**kwargs)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        rows = [{"experiment": name, "description": desc} for name, (_, desc) in sorted(EXPERIMENTS.items())]
        print(format_table(rows, title="Available experiments"))
        return 0

    if args.command == "workloads":
        rows = [
            {"workload": name, "figure_label": WORKLOAD_DISPLAY_NAMES[name], "policy": policy}
            for name, policy in sorted(TAXONOMY.items())
        ]
        print(format_table(rows, title="Non-training workload taxonomy (Table 1)"))
        return 0

    if args.command == "run-scenario":
        return _run_scenario_command(args)

    if args.command == "run-missing":
        return _run_missing_command(args)

    if args.command == "report":
        return _report_command(args)

    tune_gc()
    if args.command in ("run-load", "run-shard-sweep", "run-autoscale", "run-faults", "run-tenants"):
        workers = args.workers
        if workers is None and args.parallel:
            workers = os.cpu_count() or 1
        columns = None
        extra_tables = []
        if args.command == "run-autoscale":
            title = "Autoscale sweep (resizable serving tier)"
            policies = tuple(p.strip() for p in args.policies.split(",") if p.strip())
            unknown = sorted(set(policies) - set(AUTOSCALER_KINDS))
            if unknown:
                print(
                    f"error: unknown --policies {','.join(unknown)}; "
                    f"expected a comma list of {', '.join(AUTOSCALER_KINDS)}",
                    file=sys.stderr,
                )
                return 2
            result = E.run_autoscale_sweep(
                model_name=args.model,
                process=args.process,
                policies=policies,
                utilizations=tuple(float(u) for u in args.utilizations.split(",") if u.strip()),
                num_rounds=args.rounds,
                num_requests=args.requests,
                seed=args.seed,
                max_queue_depth=args.max_queue_depth,
                shed_policy=args.shed_policy,
                start_shards=args.start_shards,
                control_interval=args.control_interval,
                workers=workers,
            )
            columns = list(E.AUTOSCALE_REPORT_COLUMNS)
            comparisons = E.compare_autoscale_policies(result["rows"])
            if comparisons:
                extra_tables.append(
                    format_table(comparisons, title="Predictive vs reactive (same offered load)")
                )
        elif args.command == "run-faults":
            title = "Fault-recovery sweep (fault kind x remediation controller)"
            kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip())
            known = tuple(cell["fault"] for cell in E.FAULT_RECOVERY_CELLS)
            unknown = sorted(set(kinds) - set(known))
            if unknown:
                print(
                    f"error: unknown --kinds {','.join(unknown)}; "
                    f"expected a comma list of {', '.join(known)}",
                    file=sys.stderr,
                )
                return 2
            result = E.run_fault_recovery_sweep(
                model_name=args.model,
                kinds=kinds,
                num_rounds=args.rounds,
                num_requests=args.requests,
                seed=args.seed,
                utilization=args.utilization,
                shards=args.start_shards,
                max_queue_depth=args.max_queue_depth,
                shed_policy=args.shed_policy,
                control_interval=args.control_interval,
                shadow_requests=args.shadow_requests,
                workers=workers,
            )
            columns = list(E.FAULT_RECOVERY_COLUMNS)
            comparisons = E.compare_fault_recovery(result["rows"])
            if comparisons:
                extra_tables.append(
                    format_table(
                        comparisons, title="Controller on vs off (same fault, same capacity)"
                    )
                )
        elif args.command == "run-tenants":
            title = "Tenant sweep (queue discipline x steady weight, noisy-neighbor)"
            disciplines = tuple(d.strip() for d in args.disciplines.split(",") if d.strip())
            unknown = sorted(set(disciplines) - set(QUEUE_DISCIPLINES))
            if unknown:
                print(
                    f"error: unknown --disciplines {','.join(unknown)}; "
                    f"expected a comma list of {', '.join(QUEUE_DISCIPLINES)}",
                    file=sys.stderr,
                )
                return 2
            result = E.run_tenant_sweep(
                disciplines=disciplines,
                steady_weights=tuple(
                    float(w) for w in args.steady_weights.split(",") if w.strip()
                ),
                bursty_utilization=args.bursty_utilization,
                num_rounds=args.rounds,
                num_requests=args.tenant_requests,
                seed=args.seed,
                workers=workers,
            )
            columns = list(E.TENANT_REPORT_COLUMNS)
            comparisons = E.compare_tenant_disciplines(result["rows"])
            if comparisons:
                extra_tables.append(
                    format_table(comparisons, title="Weighted fairness vs FIFO (steady tenant)")
                )
        elif args.command == "run-load":
            title = "Open-loop load sweep (engine)"
            result = E.run_load_sweep(
                model_name=args.model,
                processes=tuple(p.strip() for p in args.processes.split(",") if p.strip()),
                utilizations=tuple(float(u) for u in args.utilizations.split(",") if u.strip()),
                num_rounds=args.rounds,
                num_requests=args.requests,
                seed=args.seed,
                workers=workers,
            )
        else:
            title = "Shard sweep (routed serving tier)"
            result = E.run_shard_sweep(
                model_name=args.model,
                process=args.process,
                shard_counts=tuple(int(s) for s in args.shards.split(",") if s.strip()),
                utilizations=tuple(float(u) for u in args.utilizations.split(",") if u.strip()),
                num_rounds=args.rounds,
                num_requests=args.requests,
                seed=args.seed,
                max_queue_depth=args.max_queue_depth,
                shed_policy=args.shed_policy,
                router_kind=args.router,
                replication_factor=args.replication_factor,
                replication_policy=args.replication_policy,
                workers=workers,
            )
        print(format_table(result["rows"], columns=columns, title=title))
        for table in extra_tables:
            print(table)
        print(
            "summary:",
            {k: v for k, v in result.items() if k != "rows" and not isinstance(v, (list, dict))},
        )
        if args.out:
            if args.out.endswith(".csv"):
                path = export_csv(result["rows"], args.out)
            else:
                path = export_json(result, args.out)
            print(f"wrote {path}")
        _maybe_save_sweep_artifact(args, result["rows"])
        return 0

    if args.parallel or args.workers is not None:
        set_max_workers(args.workers if args.workers is not None else (os.cpu_count() or 1))

    result = _run_experiment(args.experiment, args.rounds, args.seed)
    rows = result["rows"] if isinstance(result, dict) and "rows" in result else result
    title = EXPERIMENTS[args.experiment][1]
    if isinstance(rows, list) and rows and isinstance(rows[0], dict):
        print(format_table(rows, title=title))
    else:
        print(title)
        print(rows)
    if isinstance(result, dict):
        extras = {k: v for k, v in result.items() if k != "rows" and not isinstance(v, (list, dict))}
        if extras:
            print("summary:", extras)

    if args.out:
        if args.out.endswith(".csv") and isinstance(rows, list):
            path = export_csv(rows, args.out)
        else:
            path = export_json(result, args.out)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    sys.exit(main())
