"""Network latency and data-transfer cost models."""

from repro.network.model import NetworkLink, NetworkTopology
from repro.network.costs import TransferCostModel

__all__ = ["NetworkLink", "NetworkTopology", "TransferCostModel"]
