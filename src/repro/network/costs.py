"""Data-transfer cost model.

Cloud providers charge per GB moved out of storage services toward compute
services and per API request.  The paper's cost figures (Figures 8-10, 16-17)
are dominated by exactly these charges for the baselines, while FLStore's
co-located execution avoids most of them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import bytes_to_gb
from repro.config import PricingConfig
from repro.simulation.records import CostBreakdown


@dataclass(frozen=True)
class TransferCostModel:
    """Computes dollar costs for data movement and storage API requests."""

    pricing: PricingConfig

    def objstore_get_cost(self, payload_bytes: float) -> CostBreakdown:
        """Cost of one GET of ``payload_bytes`` from the object store."""
        return CostBreakdown(
            transfer_dollars=bytes_to_gb(payload_bytes) * self.pricing.objstore_transfer_cost_per_gb,
            request_dollars=self.pricing.objstore_get_request_cost,
        )

    def objstore_put_cost(self, payload_bytes: float) -> CostBreakdown:
        """Cost of one PUT of ``payload_bytes`` into the object store.

        Ingress bandwidth is free on the major providers; only the request is
        charged (long-term storage is charged separately per GB-month).
        """
        del payload_bytes  # ingress itself is free
        return CostBreakdown(request_dollars=self.pricing.objstore_put_request_cost)

    def objstore_storage_cost(self, stored_bytes: float, duration_hours: float) -> CostBreakdown:
        """Cost of keeping ``stored_bytes`` in the object store for ``duration_hours``."""
        gb_months = bytes_to_gb(stored_bytes) * (duration_hours / (30.0 * 24.0))
        return CostBreakdown(
            storage_dollars=gb_months * self.pricing.objstore_storage_cost_per_gb_month
        )

    def cache_transfer_cost(self, payload_bytes: float) -> CostBreakdown:
        """Cost of moving ``payload_bytes`` between the cloud cache and a compute service."""
        return CostBreakdown(
            transfer_dollars=bytes_to_gb(payload_bytes) * self.pricing.cache_transfer_cost_per_gb
        )

    def cache_node_cost(self, node_count: int, duration_hours: float) -> CostBreakdown:
        """Hourly cost of ``node_count`` provisioned cache nodes for ``duration_hours``."""
        return CostBreakdown(
            provisioned_dollars=node_count * duration_hours * self.pricing.cache_node_cost_per_hour
        )

    def aggregator_cost(self, duration_hours: float) -> CostBreakdown:
        """Hourly cost of the dedicated aggregator instance for ``duration_hours``."""
        return CostBreakdown(
            provisioned_dollars=duration_hours * self.pricing.aggregator_cost_per_hour
        )

    def lambda_execution_cost(self, memory_gb: float, duration_seconds: float) -> CostBreakdown:
        """Cost of one serverless execution of ``duration_seconds`` at ``memory_gb``."""
        gb_seconds = memory_gb * duration_seconds
        return CostBreakdown(
            compute_dollars=gb_seconds * self.pricing.lambda_cost_per_gb_second,
            request_dollars=self.pricing.lambda_cost_per_million_requests / 1_000_000.0,
        )

    def lambda_keepalive_cost(self, instance_count: int, duration_hours: float) -> CostBreakdown:
        """Keep-alive ping cost for ``instance_count`` warm functions over ``duration_hours``."""
        months = duration_hours / (30.0 * 24.0)
        return CostBreakdown(
            provisioned_dollars=instance_count
            * months
            * self.pricing.lambda_keepalive_cost_per_instance_month
        )
