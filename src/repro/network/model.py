"""Analytic network model.

Each path between two simulated services is a :class:`NetworkLink` with a
round-trip time and an effective bandwidth; the transfer time of a payload is
``rtt + size / bandwidth``.  :class:`NetworkTopology` names the links the
FLStore architecture cares about (Figure 3 and Figure 5 of the paper):

* aggregator <-> object store          (``objstore``)
* aggregator <-> in-memory cloud cache (``cache``)
* client daemon <-> any cloud service  (``client``)
* serverless function <-> function / persistent store (``serverless``)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.units import MB
from repro.config import NetworkConfig


@dataclass(frozen=True)
class NetworkLink:
    """A point-to-point path with latency and throughput."""

    name: str
    rtt_seconds: float
    bandwidth_mb_per_s: float

    def __post_init__(self) -> None:
        if self.rtt_seconds < 0:
            raise ConfigurationError(f"link {self.name}: rtt must be non-negative")
        if self.bandwidth_mb_per_s <= 0:
            raise ConfigurationError(f"link {self.name}: bandwidth must be positive")

    def transfer_seconds(self, payload_bytes: float) -> float:
        """Time to move ``payload_bytes`` across this link (one direction).

        A zero-byte payload still pays one round trip (the request itself).
        """
        if payload_bytes < 0:
            raise ValueError("payload size must be non-negative")
        return self.rtt_seconds + payload_bytes / (self.bandwidth_mb_per_s * MB)

    def round_trip_seconds(self, request_bytes: float, response_bytes: float) -> float:
        """Time for a request/response exchange with payloads in both directions."""
        serialization = (request_bytes + response_bytes) / (self.bandwidth_mb_per_s * MB)
        return self.rtt_seconds + serialization

    def degraded(self, multiplier: float) -> "NetworkLink":
        """This link under a transient network fault.

        A spike of ``multiplier`` stretches the round-trip time by the
        multiplier and divides the effective bandwidth by it, so every
        transfer over the degraded link takes ``multiplier`` times as long —
        the semantics :func:`spike_latency` applies at the request boundary.
        """
        if multiplier <= 0:
            raise ConfigurationError(f"link {self.name}: spike multiplier must be positive")
        return NetworkLink(
            self.name,
            self.rtt_seconds * multiplier,
            self.bandwidth_mb_per_s / multiplier,
        )


class NetworkTopology:
    """The set of named links used by the FLStore and baseline architectures."""

    def __init__(self, config: NetworkConfig | None = None) -> None:
        self.config = config or NetworkConfig()
        self._links = {
            "objstore": NetworkLink(
                "objstore",
                self.config.objstore_rtt_seconds,
                self.config.objstore_bandwidth_mb_per_s,
            ),
            "cache": NetworkLink(
                "cache",
                self.config.cache_rtt_seconds,
                self.config.cache_bandwidth_mb_per_s,
            ),
            "client": NetworkLink(
                "client",
                self.config.client_rtt_seconds,
                self.config.objstore_bandwidth_mb_per_s,
            ),
            "serverless": NetworkLink(
                "serverless",
                self.config.serverless_rtt_seconds,
                self.config.serverless_bandwidth_mb_per_s,
            ),
        }

    def link(self, name: str) -> NetworkLink:
        """Return the named link.

        Raises
        ------
        KeyError
            If ``name`` is not one of the configured links.
        """
        return self._links[name]

    @property
    def objstore(self) -> NetworkLink:
        """Aggregator/function <-> object store path."""
        return self._links["objstore"]

    @property
    def cache(self) -> NetworkLink:
        """Aggregator <-> in-memory cloud cache path."""
        return self._links["cache"]

    @property
    def client(self) -> NetworkLink:
        """Client daemon <-> cloud path."""
        return self._links["client"]

    @property
    def serverless(self) -> NetworkLink:
        """Function <-> function / persistent-store path inside the region."""
        return self._links["serverless"]

    def link_names(self) -> list[str]:
        """Names of every configured link."""
        return sorted(self._links)


# ---------------------------------------------------------------------------
# Transient network spikes
# ---------------------------------------------------------------------------
#
# A network-cost spike multiplies every link's effective latency and dollar
# rate for a window of virtual time.  The cloud-service substrates memoize
# per-size transfer effects against the links captured at construction, so a
# spike is applied at the *request boundary* instead of by mutating links
# mid-run: the serving engine scales the communication components of each
# affected request's latency/cost breakdown with the helpers below — exactly
# the effect serving every transfer over ``link.degraded(multiplier)`` would
# have had, without invalidating the memoized fast path.


def spike_latency(latency, multiplier: float):
    """``latency`` with its communication component under a network spike.

    Computation, queueing, and cold-start components are untouched: a
    network fault slows the wire, not the CPU.
    """
    if multiplier <= 0:
        raise ConfigurationError("spike multiplier must be positive")
    return type(latency)(
        communication_seconds=latency.communication_seconds * multiplier,
        computation_seconds=latency.computation_seconds,
        queueing_seconds=latency.queueing_seconds,
        cold_start_seconds=latency.cold_start_seconds,
    )


def spike_cost(cost, multiplier: float):
    """``cost`` with its data-movement components under a network spike.

    Transfer and per-request charges scale (retransmits, cross-zone
    surcharges); compute, storage, and provisioned components do not.
    """
    if multiplier <= 0:
        raise ConfigurationError("spike multiplier must be positive")
    return type(cost)(
        transfer_dollars=cost.transfer_dollars * multiplier,
        request_dollars=cost.request_dollars * multiplier,
        compute_dollars=cost.compute_dollars,
        storage_dollars=cost.storage_dollars,
        provisioned_dollars=cost.provisioned_dollars,
    )
