"""Setup cache, snapshot copies, accumulators, perf reporting, parallel runner."""

from __future__ import annotations

import json

import pytest

from repro.analysis import setup_cache
from repro.analysis.perf import measure_serve_hotpath, tune_gc, write_bench_json
from repro.analysis.runner import map_tasks, prepare_setup, run_trace
from repro.config import SimulationConfig
from repro.simulation.records import (
    CostAccumulator,
    CostBreakdown,
    LatencyAccumulator,
    LatencyBreakdown,
)


@pytest.fixture(autouse=True)
def fresh_setup_cache():
    """Each test starts from an empty cache and leaves none behind."""
    setup_cache.clear()
    setup_cache.set_enabled(True)
    yield
    setup_cache.clear()


def _tiny_config():
    return SimulationConfig.small(seed=19)


class TestSetupCache:
    def test_rounds_are_cached_per_config(self):
        config = _tiny_config()
        first = setup_cache.simulate_rounds(config, 3)
        second = setup_cache.simulate_rounds(config, 3)
        assert first is second
        assert setup_cache.stats.rounds_hits == 1
        assert setup_cache.stats.rounds_misses == 1
        # Different round counts (or configs) are distinct entries.
        setup_cache.simulate_rounds(config, 4)
        assert setup_cache.stats.rounds_misses == 2

    def test_snapshot_hit_serves_equal_but_independent_systems(self):
        config = _tiny_config()
        first = prepare_setup(config, num_rounds=3, systems=("flstore",))
        second = prepare_setup(config, num_rounds=3, systems=("flstore",))
        assert setup_cache.stats.snapshot_hits == 1
        assert first.flstore is not second.flstore
        # Same deterministic state: serving the same request gives the same
        # latency/cost on both copies.
        req_a = first.flstore.make_request("clustering", round_id=2)
        req_b = second.flstore.make_request("clustering", round_id=2)
        result_a = first.flstore.serve(req_a)
        result_b = second.flstore.serve(req_b)
        assert result_a.latency == result_b.latency
        assert result_a.cost == result_b.cost

    def test_serving_one_snapshot_does_not_leak_into_the_next(self):
        config = _tiny_config()
        warm = prepare_setup(config, num_rounds=3, systems=("flstore",))
        for _ in range(3):
            warm.flstore.serve(warm.flstore.make_request("clustering", round_id=0))
        fresh = prepare_setup(config, num_rounds=3, systems=("flstore",))
        # The pristine master must not have been mutated by the serving above.
        assert len(fresh.flstore.tracker) == 0
        assert fresh.flstore.clock.now() == 0.0

    def test_snapshot_copy_shares_payload_arrays(self):
        config = _tiny_config()
        setup = prepare_setup(config, num_rounds=2, systems=("flstore",))
        copy = setup_cache.snapshot_copy(setup.systems)
        original = setup.systems["flstore"]
        cloned = copy["flstore"]
        key = next(iter(original.cluster.cached_keys()))
        assert cloned.cluster.get_object(key) is original.cluster.get_object(key)
        # Mutable structure is independent: evicting in the copy does not
        # touch the original.
        cloned.cluster.evict(key)
        assert original.cluster.is_live(key)
        assert not cloned.cluster.is_live(key)

    def test_disabled_cache_bypasses_memoization(self):
        setup_cache.set_enabled(False)
        config = _tiny_config()
        first = setup_cache.simulate_rounds(config, 2)
        second = setup_cache.simulate_rounds(config, 2)
        assert first is not second
        assert setup_cache.stats.rounds_hits == 0

    def test_fault_injector_setups_bypass_snapshots(self):
        from repro.serverless.faults import ZipfianFaultInjector

        config = _tiny_config()
        prepare_setup(config, num_rounds=2, systems=("flstore",),
                      fault_injector=ZipfianFaultInjector(fault_rate=0.5, seed=3))
        prepare_setup(config, num_rounds=2, systems=("flstore",),
                      fault_injector=ZipfianFaultInjector(fault_rate=0.5, seed=3))
        assert setup_cache.stats.snapshot_hits == 0


class TestAccumulators:
    def test_latency_accumulator_matches_folded_addition(self):
        parts = [
            LatencyBreakdown(communication_seconds=0.25, queueing_seconds=0.5),
            LatencyBreakdown(computation_seconds=1.5, cold_start_seconds=0.125),
            LatencyBreakdown(communication_seconds=0.1),
        ]
        folded = LatencyBreakdown.zero()
        acc = LatencyAccumulator()
        for part in parts:
            folded = folded + part
            acc.add(part)
        assert acc.finalize() == folded
        assert acc.total_seconds == folded.total_seconds

    def test_cost_accumulator_matches_folded_addition(self):
        parts = [
            CostBreakdown(transfer_dollars=0.5, request_dollars=0.25),
            CostBreakdown(compute_dollars=1.0, provisioned_dollars=0.125),
            CostBreakdown(storage_dollars=0.0625),
        ]
        folded = CostBreakdown.zero()
        acc = CostAccumulator()
        for part in parts:
            folded = folded + part
            acc.add(part)
        assert acc.finalize() == folded

    def test_accumulator_initial_value(self):
        seeded = LatencyAccumulator(LatencyBreakdown(communication_seconds=2.0))
        assert seeded.finalize() == LatencyBreakdown(communication_seconds=2.0)


class TestPerfReport:
    def test_measure_and_write_bench_json(self, tmp_path):
        tune_gc()
        report = measure_serve_hotpath(num_rounds=3, requests_per_workload=2,
                                       workloads=("clustering", "inference"))
        assert report.requests == 4
        assert report.requests_per_second > 0
        assert report.p99_request_seconds >= report.p50_request_seconds >= 0
        path = write_bench_json(report, str(tmp_path / "BENCH_serve.json"),
                                extra={"suite_wall_seconds": 1.0})
        assert path == str(tmp_path / "BENCH_serve.json")
        payload = json.loads((tmp_path / "BENCH_serve.json").read_text())
        assert payload["requests"] == 4
        assert payload["suite_wall_seconds"] == 1.0
        assert "setup_cache_stats" in payload


def _square(value: int) -> int:
    return value * value


class TestParallelRunner:
    def test_map_tasks_serial_matches_parallel(self):
        items = list(range(8))
        assert map_tasks(_square, items, workers=1) == [v * v for v in items]
        assert map_tasks(_square, items, workers=3) == [v * v for v in items]

    def test_run_trace_on_snapshot(self):
        config = _tiny_config()
        setup = prepare_setup(config, num_rounds=3, systems=("flstore",))
        trace = setup.generator.workload_trace("clustering", 2)
        records = run_trace(setup.flstore, trace, system_name="flstore", model_name="m")
        assert len(records) == 2
