"""Property-style consistency tests for the cluster's liveness index.

The index (reverse ``function -> keys`` map, per-key holder, event-driven
invalidation) must always agree with a brute-force re-resolve that scans the
platform's actual function state — under placement, eviction, replication,
and Zipfian-injected reclamations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.units import MB
from repro.config import PricingConfig, ServerlessConfig
from repro.core.serverless_cache import ServerlessCacheCluster
from repro.fl.keys import DataKey
from repro.serverless.faults import ZipfianFaultInjector
from repro.serverless.platform import ServerlessPlatform


def oracle_resolve(cluster: ServerlessCacheCluster, key: DataKey):
    """The seed's scan-based resolution: primary first, then replicas in order.

    Returns ``(function_id | None, failed_over)`` computed directly from the
    platform's function state, bypassing the liveness index entirely.
    """
    primary_id = cluster._primary.get(key)
    if primary_id is None:
        return None, False
    primary = cluster.platform.get_function(primary_id)
    if primary.is_warm and primary.holds(key):
        return primary_id, False
    for replica_id in cluster._replicas.get(key, []):
        replica = cluster.platform.get_function(replica_id)
        if replica.is_warm and replica.holds(key):
            return replica_id, True
    return None, True


def assert_index_consistent(cluster: ServerlessCacheCluster):
    """Every tracked key's indexed resolution must match the oracle."""
    for key in list(cluster._primary):
        expected_fid, expected_failover = oracle_resolve(cluster, key)
        resolved = cluster.resolve(key)
        assert resolved.function_id == expected_fid, f"holder mismatch for {key}"
        assert resolved.failed_over == expected_failover, f"failover mismatch for {key}"
        assert cluster.is_live(key) == (expected_fid is not None)
    # The batch API must agree with the scalar one.
    keys = list(cluster._primary)
    batch = cluster.resolve_many(keys)
    for key in keys:
        single = cluster.resolve(key)
        assert batch[key].function_id == single.function_id
        assert batch[key].failed_over == single.failed_over
    # Aggregate views must agree with a from-scratch recomputation.
    assert cluster.total_cached_bytes == sum(cluster._sizes.values())
    expected_live = [k for k in cluster._primary if oracle_resolve(cluster, k)[0] is not None]
    assert cluster.cached_keys() == expected_live
    # Tier-replica accounting: owned + replica views partition the totals,
    # so fleet-wide sums over owned_* never double-count replicated bytes.
    replica_bytes = sum(
        size for key, size in cluster._sizes.items() if key in cluster._tier_replicas
    )
    assert cluster.replica_cached_bytes == replica_bytes
    assert cluster.owned_cached_bytes == cluster.total_cached_bytes - replica_bytes
    live = set(expected_live)
    assert cluster.owned_live_key_count == sum(
        1 for key in live if key not in cluster._tier_replicas
    )
    assert cluster.replica_live_key_count == sum(
        1 for key in live if key in cluster._tier_replicas
    )
    for key in cluster._primary:
        assert cluster.is_live(key, include_replicas=False) == (
            cluster.is_live(key) and not cluster.is_tier_replica(key)
        )


@pytest.fixture()
def platform():
    return ServerlessPlatform(ServerlessConfig(), PricingConfig())


class TestLivenessIndexProperty:
    @pytest.mark.parametrize("replication_factor", [0, 1, 2])
    def test_index_matches_oracle_under_zipfian_faults(self, replication_factor):
        """Random place/evict/reclaim churn keeps the index oracle-consistent."""
        platform = ServerlessPlatform(ServerlessConfig(), PricingConfig())
        cluster = ServerlessCacheCluster(platform, replication_factor=replication_factor)
        injector = ZipfianFaultInjector(fault_rate=0.35, seed=17 + replication_factor)
        rng = np.random.default_rng(23 + replication_factor)

        live_keys: list[DataKey] = []
        for step in range(120):
            action = rng.random()
            if action < 0.55 or not live_keys:
                key = DataKey.update(int(rng.integers(0, 40)), int(rng.integers(0, 6)))
                cluster.place(key, {"step": step}, size_bytes=int(rng.integers(1, 64)) * MB)
                if key not in live_keys:
                    live_keys.append(key)
            elif action < 0.75:
                key = live_keys.pop(int(rng.integers(0, len(live_keys))))
                cluster.evict(key)
            else:
                reclaimed = injector.sample_reclamations(cluster.function_ids())
                for function_id in reclaimed:
                    platform.reclaim_function(function_id)
            assert_index_consistent(cluster)

        # Dropping lost keys must report exactly the oracle's dead set and
        # leave only live keys tracked.
        dead = {k for k in cluster._primary if oracle_resolve(cluster, k)[0] is None}
        assert set(cluster.drop_lost_keys()) == dead
        assert_index_consistent(cluster)
        assert all(cluster.is_live(k) for k in cluster._primary)

    def test_tier_replica_accounting_matches_oracle_under_zipfian_faults(self):
        """Random churn mixing owned and tier-replica placements keeps the
        owned/replica byte split oracle-consistent — no double-counting."""
        platform = ServerlessPlatform(ServerlessConfig(), PricingConfig())
        cluster = ServerlessCacheCluster(platform, replication_factor=1)
        injector = ZipfianFaultInjector(fault_rate=0.35, seed=41)
        rng = np.random.default_rng(43)

        live_keys: list[DataKey] = []
        for step in range(120):
            action = rng.random()
            if action < 0.55 or not live_keys:
                key = DataKey.update(int(rng.integers(0, 40)), int(rng.integers(0, 6)))
                # ~40% of placements arrive as tier replicas; re-placing an
                # existing replica without the flag must promote it to owned.
                cluster.place(
                    key,
                    {"step": step},
                    size_bytes=int(rng.integers(1, 64)) * MB,
                    tier_replica=bool(rng.random() < 0.4),
                )
                if key not in live_keys:
                    live_keys.append(key)
            elif action < 0.75:
                key = live_keys.pop(int(rng.integers(0, len(live_keys))))
                cluster.evict(key)
            else:
                reclaimed = injector.sample_reclamations(cluster.function_ids())
                for function_id in reclaimed:
                    platform.reclaim_function(function_id)
            assert_index_consistent(cluster)

        # The churn must actually have exercised both sides of the split.
        assert cluster.replica_cached_bytes > 0
        assert cluster.owned_cached_bytes > 0
        cluster.drop_lost_keys()
        assert_index_consistent(cluster)

    def test_replica_mark_cleared_on_eviction_and_promotion(self, platform):
        cluster = ServerlessCacheCluster(platform, replication_factor=0)
        key = DataKey.update(9, 0)
        cluster.place(key, b"r", size_bytes=10 * MB, tier_replica=True)
        assert cluster.is_tier_replica(key)
        assert cluster.replica_cached_bytes == 10 * MB
        assert cluster.owned_cached_bytes == 0
        assert not cluster.is_live(key, include_replicas=False)
        # Re-placing without the flag promotes the copy to owned.
        cluster.place(key, b"o", size_bytes=10 * MB)
        assert not cluster.is_tier_replica(key)
        assert cluster.replica_cached_bytes == 0
        assert cluster.owned_cached_bytes == 10 * MB
        assert cluster.is_live(key, include_replicas=False)
        # Evicting a replica clears its mark and its byte share.
        cluster.place(key, b"r", size_bytes=10 * MB, tier_replica=True)
        cluster.evict(key)
        assert cluster.replica_cached_bytes == 0
        assert not cluster.is_tier_replica(key)
        assert_index_consistent(cluster)

    def test_reclamation_event_prunes_reverse_map(self, platform):
        cluster = ServerlessCacheCluster(platform, replication_factor=1)
        key = DataKey.update(1, 0)
        placement = cluster.place(key, b"x", size_bytes=10 * MB)
        assert key in cluster._function_keys[placement.primary_function_id]
        platform.reclaim_function(placement.primary_function_id)
        # The reclaimed function's reverse entry is gone; the replica serves.
        assert placement.primary_function_id not in cluster._function_keys
        resolved = cluster.resolve(key)
        assert resolved.failed_over and resolved.function_id == placement.replica_function_ids[0]
        assert_index_consistent(cluster)

    def test_total_loss_is_recorded_without_probing(self, platform):
        cluster = ServerlessCacheCluster(platform, replication_factor=0)
        key = DataKey.update(2, 0)
        placement = cluster.place(key, b"x", size_bytes=10 * MB)
        platform.reclaim_function(placement.primary_function_id)
        assert not cluster.is_live(key)
        assert cluster.resolve(key).failed_over
        assert cluster.drop_lost_keys() == [key]
        assert cluster.drop_lost_keys() == []

    def test_replace_after_loss_clears_lost_state(self, platform):
        cluster = ServerlessCacheCluster(platform, replication_factor=0)
        key = DataKey.update(3, 0)
        placement = cluster.place(key, b"old", size_bytes=10 * MB)
        platform.reclaim_function(placement.primary_function_id)
        assert not cluster.is_live(key)
        cluster.place(key, b"new", size_bytes=10 * MB)
        assert cluster.is_live(key)
        assert cluster.get_object(key) == b"new"
        # The re-placed key must no longer be reported as lost.
        assert cluster.drop_lost_keys() == []
        assert_index_consistent(cluster)

    def test_restore_does_not_resurrect_lost_copies(self, platform):
        cluster = ServerlessCacheCluster(platform, replication_factor=0)
        key = DataKey.update(4, 0)
        placement = cluster.place(key, b"x", size_bytes=10 * MB)
        platform.reclaim_function(placement.primary_function_id)
        platform.restore_function(placement.primary_function_id)
        # Warm again, but its memory was wiped: the key stays dead.
        assert not cluster.is_live(key)
        assert_index_consistent(cluster)
