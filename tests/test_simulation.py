"""Virtual clock, latency/cost records, and metrics aggregation."""

from __future__ import annotations

import pytest

from repro.simulation.clock import SimClock
from repro.simulation.metrics import MetricsCollector, RequestRecord, summarize_records
from repro.simulation.records import CostBreakdown, LatencyBreakdown, OperationResult


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now() == 2.5

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_advance_to_never_goes_backwards(self):
        clock = SimClock()
        clock.advance(10.0)
        clock.advance_to(5.0)
        assert clock.now() == 10.0
        clock.advance_to(12.0)
        assert clock.now() == 12.0

    def test_reset(self):
        clock = SimClock()
        clock.advance(3.0)
        clock.reset()
        assert clock.now() == 0.0
        assert clock.elapsed() == 0.0


class TestLatencyBreakdown:
    def test_total_sums_components(self):
        latency = LatencyBreakdown(1.0, 2.0, 3.0, 4.0)
        assert latency.total_seconds == pytest.approx(10.0)

    def test_addition(self):
        total = LatencyBreakdown.communication(1.0) + LatencyBreakdown.computation(2.0)
        assert total.communication_seconds == 1.0
        assert total.computation_seconds == 2.0

    def test_zero_is_identity(self):
        latency = LatencyBreakdown(1.0, 2.0)
        assert (latency + LatencyBreakdown.zero()) == latency

    def test_scaled(self):
        latency = LatencyBreakdown(1.0, 2.0).scaled(2.0)
        assert latency.communication_seconds == 2.0
        assert latency.computation_seconds == 4.0

    def test_add_wrong_type_raises(self):
        with pytest.raises(TypeError):
            LatencyBreakdown() + 3  # type: ignore[operator]


class TestCostBreakdown:
    def test_total_sums_components(self):
        cost = CostBreakdown(1.0, 2.0, 3.0, 4.0, 5.0)
        assert cost.total_dollars == pytest.approx(15.0)

    def test_communication_dollars(self):
        cost = CostBreakdown(transfer_dollars=0.5, request_dollars=0.25, compute_dollars=9.0)
        assert cost.communication_dollars == pytest.approx(0.75)

    def test_addition_and_scaling(self):
        cost = (CostBreakdown(transfer_dollars=1.0) + CostBreakdown(compute_dollars=2.0)).scaled(0.5)
        assert cost.transfer_dollars == 0.5
        assert cost.compute_dollars == 1.0

    def test_zero(self):
        assert CostBreakdown.zero().total_dollars == 0.0


class TestOperationResult:
    def test_merge_keeps_other_value_and_sums_metrics(self):
        a = OperationResult(value=1, latency=LatencyBreakdown.communication(1.0), cost=CostBreakdown(request_dollars=1.0))
        b = OperationResult(value=2, latency=LatencyBreakdown.computation(2.0), cost=CostBreakdown(compute_dollars=2.0))
        merged = a.merge(b)
        assert merged.value == 2
        assert merged.latency.total_seconds == pytest.approx(3.0)
        assert merged.cost.total_dollars == pytest.approx(3.0)


def _record(system="flstore", workload="inference", latency=1.0, cost=0.1, hits=1, misses=0, comm=0.5):
    return RequestRecord(
        request_id="r",
        system=system,
        workload=workload,
        model_name="resnet18",
        round_id=0,
        latency=LatencyBreakdown(communication_seconds=comm, computation_seconds=latency - comm),
        cost=CostBreakdown(compute_dollars=cost),
        cache_hits=hits,
        cache_misses=misses,
    )


class TestMetrics:
    def test_summarize_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize_records([])

    def test_summary_statistics(self):
        records = [_record(latency=1.0), _record(latency=3.0)]
        summary = summarize_records(records)
        assert summary.count == 2
        assert summary.mean_latency_seconds == pytest.approx(2.0)
        assert summary.max_latency_seconds == pytest.approx(3.0)
        assert summary.total_latency_seconds == pytest.approx(4.0)
        assert summary.total_cost_dollars == pytest.approx(0.2)

    def test_hit_rate(self):
        records = [_record(hits=3, misses=1), _record(hits=1, misses=3)]
        assert summarize_records(records).hit_rate == pytest.approx(0.5)

    def test_request_record_hit_rate_with_no_keys(self):
        assert _record(hits=0, misses=0).hit_rate == 1.0

    def test_communication_fraction(self):
        summary = summarize_records([_record(latency=2.0, comm=1.5)])
        assert summary.communication_fraction == pytest.approx(0.75)

    def test_collector_grouping(self):
        collector = MetricsCollector()
        collector.record(_record(system="flstore", workload="inference"))
        collector.record(_record(system="objstore-agg", workload="inference"))
        collector.record(_record(system="objstore-agg", workload="clustering"))
        assert len(collector) == 3
        assert set(collector.by_system()) == {"flstore", "objstore-agg"}
        assert set(collector.by_workload()) == {"inference", "clustering"}
        assert ("objstore-agg", "clustering") in collector.by_system_and_workload()
        assert set(collector.by_model()) == {"resnet18"}

    def test_collector_clear_and_extend(self):
        collector = MetricsCollector()
        collector.extend([_record(), _record()])
        assert len(collector) == 2
        collector.clear()
        assert len(collector) == 0


class TestSimClockEpochReset:
    def test_reset_to_epoch_rebases_now_and_elapsed(self):
        clock = SimClock()
        clock.advance(5.0)
        clock.reset(100.0)
        assert clock.now() == 100.0
        assert clock.elapsed() == 0.0
        clock.advance(2.0)
        assert clock.now() == 102.0
        assert clock.elapsed() == 2.0

    def test_plain_reset_still_returns_to_zero(self):
        clock = SimClock()
        clock.advance(3.5)
        clock.reset()
        assert clock.now() == 0.0
        assert clock.elapsed() == 0.0

    def test_clock_docstrings_are_doctested(self):
        import doctest

        import repro.simulation.clock as clock_module

        result = doctest.testmod(clock_module)
        assert result.attempted > 0
        assert result.failed == 0
