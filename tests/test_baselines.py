"""The ObjStore-Agg and Cache-Agg baselines and their comparison with FLStore."""

from __future__ import annotations

import pytest

from repro.baselines.cache_agg import CacheAggregator
from repro.baselines.objstore_agg import ObjStoreAggregator


class TestObjStoreAggregator:
    def test_ingest_stores_every_object(self, objstore_agg, rounds):
        for record in rounds:
            for key in record.all_keys():
                assert objstore_agg.object_store.contains(key)
        assert objstore_agg.ingest_cost.total_dollars > 0

    def test_serve_is_communication_bound(self, objstore_agg):
        result = objstore_agg.serve(objstore_agg.make_request("malicious_filtering", round_id=5))
        latency = result.latency
        assert latency.communication_seconds > 5 * latency.computation_seconds
        assert latency.communication_seconds / latency.total_seconds > 0.8

    def test_serve_counts_every_required_key_as_remote(self, objstore_agg, rounds):
        result = objstore_agg.serve(objstore_agg.make_request("clustering", round_id=5))
        assert result.cache_hits == 0
        assert result.cache_misses == rounds[5].num_participants

    def test_missing_round_raises_workload_error(self, objstore_agg):
        from repro.common.errors import WorkloadError

        with pytest.raises(WorkloadError):
            objstore_agg.serve(objstore_agg.make_request("inference", round_id=999))

    def test_provisioned_cost_includes_instance(self, objstore_agg, pricing):
        cost = objstore_agg.provisioned_cost(10.0)
        assert cost.provisioned_dollars >= 10.0 * pricing.aggregator_cost_per_hour

    def test_cost_dominated_by_occupancy_not_requests(self, objstore_agg):
        result = objstore_agg.serve(objstore_agg.make_request("clustering", round_id=6))
        assert result.cost.compute_dollars > result.cost.request_dollars


class TestCacheAggregator:
    def test_faster_but_more_expensive_than_objstore(self, objstore_agg, cache_agg):
        objstore_result = objstore_agg.serve(objstore_agg.make_request("clustering", round_id=5))
        cache_result = cache_agg.serve(cache_agg.make_request("clustering", round_id=5))
        assert cache_result.latency.total_seconds < objstore_result.latency.total_seconds

    def test_provisioned_nodes_sized_for_whole_job(self, small_config, cache_agg):
        nodes = cache_agg.provisioned_nodes_for_job()
        assert nodes >= 1
        job_bytes = cache_agg.expected_job_bytes()
        node_bytes = small_config.pricing.cache_node_memory_gb * 1024**3
        assert nodes >= job_bytes / node_bytes

    def test_provisioned_cost_includes_cache_cluster(self, cache_agg, pricing):
        cost = cache_agg.provisioned_cost(10.0)
        instance_only = 10.0 * pricing.aggregator_cost_per_hour
        assert cost.provisioned_dollars > instance_only

    def test_serve_round_trip(self, cache_agg):
        result = cache_agg.serve(cache_agg.make_request("cosine_similarity", round_id=5))
        assert isinstance(result.result, dict)
        assert result.latency.total_seconds > 0


class TestPaperShapes:
    """The headline comparisons of Section 5.2/5.3 at laptop scale."""

    @pytest.fixture()
    def warm_flstore(self, flstore):
        # Warm FLStore on the evaluated rounds so the comparison reflects the
        # steady state (the paper's traces run for 50 hours).
        for round_id in (6, 7):
            flstore.serve(flstore.make_request("malicious_filtering", round_id=round_id))
        return flstore

    def test_flstore_latency_beats_objstore_agg(self, warm_flstore, objstore_agg):
        flstore_result = warm_flstore.serve(
            warm_flstore.make_request("malicious_filtering", round_id=8)
        )
        baseline_result = objstore_agg.serve(
            objstore_agg.make_request("malicious_filtering", round_id=8)
        )
        assert flstore_result.latency.total_seconds < 0.5 * baseline_result.latency.total_seconds

    def test_flstore_cost_beats_both_baselines(self, warm_flstore, objstore_agg, cache_agg):
        flstore_result = warm_flstore.serve(
            warm_flstore.make_request("malicious_filtering", round_id=9)
        )
        objstore_result = objstore_agg.serve(
            objstore_agg.make_request("malicious_filtering", round_id=9)
        )
        cache_result = cache_agg.serve(cache_agg.make_request("malicious_filtering", round_id=9))
        assert flstore_result.cost.total_dollars < objstore_result.cost.total_dollars
        assert flstore_result.cost.total_dollars < cache_result.cost.total_dollars

    def test_cache_agg_costs_more_than_objstore_agg_at_paper_scale(self):
        from repro.config import SimulationConfig

        config = SimulationConfig.paper().with_job(reduced_dim=16)
        from repro.fl.trainer import FLJobSimulator

        rounds = FLJobSimulator(config).run_rounds(3)
        objstore = ObjStoreAggregator(config)
        cache = CacheAggregator(config)
        for record in rounds:
            objstore.ingest_round(record)
            cache.ingest_round(record)
        objstore_cost = objstore.serve(objstore.make_request("clustering", round_id=2)).cost
        cache_cost = cache.serve(cache.make_request("clustering", round_id=2)).cost
        assert cache_cost.total_dollars > objstore_cost.total_dollars
