"""Hot-key replication: the spec knob, replica routing, accounting, warm joins.

Covers the `tier.replication` surface end to end — spec validation and
round-tripping, ring-successor replica placement, replica-aware routing on
the hot-key workload (the acceptance pins: factor 2 strictly lifts the
hot-shard ceiling at equal warm capacity), byte-identity of the
replication-off path, and replica-warmed elasticity (`add_shard` seeded
from replicas beats the cold join on the post-join latency transient).
"""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.config import SimulationConfig
from repro.engine import REPLICATION_POLICIES, ShardedEngineFLStore
from repro.engine.vectorized import explain_fast_path, fast_path_eligible
from repro.fl.trainer import FLJobSimulator
from repro.routing import make_router
from repro.scenario import (
    AdmissionSpec,
    ArrivalSpec,
    ReplicationSpec,
    ScenarioSpec,
    TierSpec,
    WorkloadMixSpec,
    get_scenario,
    list_scenarios,
    sweep,
)
from repro.traces.generator import RequestTraceGenerator


@pytest.fixture(scope="module")
def repl_config():
    return SimulationConfig.small(seed=11)


@pytest.fixture(scope="module")
def repl_rounds(repl_config):
    return FLJobSimulator(repl_config).run_rounds(8)


class TestReplicationSpec:
    def test_defaults_are_off(self):
        spec = ReplicationSpec()
        assert (spec.factor, spec.policy, spec.hot_threshold) == (1, "none", 8)
        assert not spec.enabled

    def test_values_coerced_and_validated(self):
        spec = ReplicationSpec(factor=3.0, policy="hot-tracked", hot_threshold=2.0)
        assert (spec.factor, spec.hot_threshold) == (3, 2)
        assert spec.enabled
        with pytest.raises(ConfigurationError):
            ReplicationSpec(factor=0)
        with pytest.raises(ConfigurationError):
            ReplicationSpec(factor=2.5)
        with pytest.raises(ConfigurationError):
            ReplicationSpec(hot_threshold=0)
        with pytest.raises(ConfigurationError):
            ReplicationSpec(policy="all-keys")

    def test_replication_requires_a_sharded_tier(self):
        with pytest.raises(ConfigurationError, match="sharded tier"):
            TierSpec(replication=ReplicationSpec(policy="hot-static"))
        # Off by default, so a plain tier is still fine.
        assert TierSpec().replication.policy == "none"

    def test_round_trips_through_dict(self):
        spec = ScenarioSpec(
            name="repl-trip",
            tier=TierSpec(
                shards=3,
                router_kind="consistent-hash",
                replication=ReplicationSpec(factor=2, policy="hot-tracked", hot_threshold=4),
            ),
        )
        tree = spec.to_dict()
        assert tree["tier"]["replication"] == {
            "factor": 2,
            "policy": "hot-tracked",
            "hot_threshold": 4,
        }
        assert ScenarioSpec.from_dict(tree) == spec

    def test_unknown_replication_key_rejected(self):
        tree = ScenarioSpec(name="repl-bad", tier=TierSpec(shards=2, router_kind="jsq")).to_dict()
        tree["tier"]["replication"]["quorum"] = 2
        with pytest.raises(ConfigurationError, match="quorum"):
            ScenarioSpec.from_dict(tree)

    def test_registered_scenario_and_policies_exported(self):
        spec = get_scenario("hotkey-replicated")
        assert spec.tier.replication == ReplicationSpec(factor=2, policy="hot-static")
        assert spec.tier.replication.policy in REPLICATION_POLICIES


class TestReplicaSlots:
    def test_modulo_slots_are_consecutive(self):
        router = make_router("modulo", 5)
        primary = router.route(123)
        assert router.replica_slots(123, 3) == [
            primary,
            (primary + 1) % 5,
            (primary + 2) % 5,
        ]

    def test_consistent_hash_slots_walk_distinct_ring_successors(self):
        router = make_router("consistent-hash", 6)
        for key in ("r1:c-1", "r4:c2", "r7:c-1"):
            slots = router.replica_slots(key, 4)
            assert slots[0] == router.route(key)
            assert len(slots) == len(set(slots)) == 4
            assert all(0 <= s < 6 for s in slots)

    def test_slot_count_capped_by_shard_count(self):
        router = make_router("consistent-hash", 3)
        assert len(router.replica_slots("r1:c-1", 99)) == 3

    def test_jsq_candidates_are_the_replica_slot_prefix(self):
        router = make_router("jsq", 6)
        for key in ("r1:c-1", "r5:c3"):
            assert list(router.candidates(key)) == router.replica_slots(key, router.fanout)


def _hot_tier(config, rounds, factor, policy, shards=4, **kwargs):
    tier = ShardedEngineFLStore.build(
        shards,
        config=config,
        router=make_router("jsq", shards),
        replication_factor=factor,
        replication_policy=policy,
        **kwargs,
    )
    for record in rounds:
        tier.ingest_round(record)
    return tier


def _hot_burst(tier, num_requests=40, spacing=0.1):
    generator = RequestTraceGenerator(tier.catalog, seed=7)
    trace = generator.workload_trace("inference", num_requests)
    arrivals = [spacing * i for i in range(len(trace))]
    return tier.run_open_loop(trace, arrivals, label="hot")


class TestHotKeyReplication:
    def test_engine_validates_replication_parameters(self, repl_config):
        with pytest.raises(ConfigurationError):
            ShardedEngineFLStore.build(2, config=repl_config, replication_factor=0)
        with pytest.raises(ConfigurationError):
            ShardedEngineFLStore.build(2, config=repl_config, replication_policy="everything")
        with pytest.raises(ConfigurationError):
            ShardedEngineFLStore.build(
                2, config=repl_config, replication_policy="hot-tracked", hot_threshold=0
            )

    def test_factor_two_lifts_the_hot_shard_ceiling(self, repl_config, repl_rounds):
        """The acceptance pin: at seed 7 and equal warm capacity, factor 2
        strictly improves both the routing ceiling and the tail latency."""
        results = {}
        for factor in (1, 2):
            tier = _hot_tier(repl_config, repl_rounds, factor, "hot-static")
            report = _hot_burst(tier)
            assert report.served + report.degraded + report.shed == report.submitted
            results[factor] = (max(tier.routed_counts), report.p99_sojourn_seconds, tier)
        max1, p99_1, tier1 = results[1]
        max2, p99_2, tier2 = results[2]
        assert max2 < max1
        assert p99_2 < p99_1
        # Pinned at seed 7: the hot shard's share halves, p99 halves too.
        assert (max1, max2) == (40, 20)
        assert (round(p99_1, 3), round(p99_2, 3)) == (29.248, 12.917)
        # Equal warm capacity: same shard count, same per-shard platform.
        assert len(tier1.shards) == len(tier2.shards) == 4
        assert tier2.replica_hits == 20
        assert tier2.replicated_keys > 0
        # Ingest broadcasts rounds, so the static holders were already live
        # and no replica bytes needed placing — hits come for free here.
        assert tier2.replica_cached_bytes == 0
        # Factor 1 with a hot policy still has only the primary holder.
        assert tier1.replica_hits == 0 and tier1.replica_cached_bytes == 0

    def test_hot_tracked_policy_spreads_after_threshold(self, repl_config, repl_rounds):
        tier = _hot_tier(repl_config, repl_rounds, 2, "hot-tracked", hot_threshold=8)
        report = _hot_burst(tier)
        assert report.served + report.degraded + report.shed == report.submitted
        assert tier.replica_hits > 0
        assert max(tier.routed_counts) < 40

    def test_fleet_bytes_count_replicas_exactly_once(self, repl_config, repl_rounds):
        """Replica placements (from a warm join) never inflate the fleet-wide
        byte sum: `cached_bytes` counts only owned copies."""

        def joined(factor, policy):
            tier = ShardedEngineFLStore.build(
                2, config=repl_config, replication_factor=factor, replication_policy=policy
            )
            for record in repl_rounds:
                tier.ingest_round(record)
            _hot_burst(tier, num_requests=8)
            tier.add_shard()
            tier.loop.run()
            return tier

        plain = joined(1, "none")
        replicated = joined(2, "hot-static")
        assert replicated.replica_cached_bytes > 0
        for tier in (plain, replicated):
            clusters = [shard.flstore.cluster for shard in tier.shards]
            assert tier.cached_bytes == sum(c.owned_cached_bytes for c in clusters)
            assert tier.live_key_count == sum(c.owned_live_key_count for c in clusters)

    def test_shard_stats_break_out_replica_columns(self, repl_config, repl_rounds):
        tier = ShardedEngineFLStore.build(
            2, config=repl_config, replication_factor=2, replication_policy="hot-static"
        )
        for record in repl_rounds:
            tier.ingest_round(record)
        _hot_burst(tier, num_requests=8)
        tier.add_shard()
        tier.loop.run()
        rows = tier.shard_stats()
        assert sum(row["replica_bytes"] for row in rows) == tier.replica_cached_bytes
        assert sum(row["replica_keys"] for row in rows) > 0

    def test_replication_off_resize_cycle_is_byte_identical(self, repl_config):
        """Regression pin for the replication-off path: the add/remove/add
        catch-up cycle reproduces the exact pre-replication numbers."""
        config = repl_config
        rounds = FLJobSimulator(config).run_rounds(8)
        tier = ShardedEngineFLStore.build(1, config=config)
        for record in rounds:
            tier.ingest_round(record)
        added = tier.add_shard()
        tier.remove_shard()
        extra = FLJobSimulator(config).run_rounds(10)[8:]
        for record in extra:
            tier.ingest_round(record)
        reused = tier.add_shard()
        generator = RequestTraceGenerator(tier.catalog, seed=3)
        trace = generator.mixed_trace(["inference", "clustering", "scheduling_perf"], 30)
        report = tier.run_open_loop(trace, [0.2 * i for i in range(len(trace))], label="mix")
        assert (added, reused) == (1, 1)
        assert tier.routed_counts == [0, 30]
        assert (report.served, report.degraded, report.shed, report.submitted) == (30, 0, 0, 30)
        assert repr(report.p99_sojourn_seconds) == "91.3758057492303"
        assert repr(tier.total_latency_seconds) == "97.83202707253746"
        assert repr(tier.total_cost_dollars) == "0.006346872416189445"
        assert (tier.cached_bytes, tier.live_key_count) == (844093846, 118)
        assert tier.warm_function_count == 4
        assert tier.replica_warm_events == 0 and tier.replica_hits == 0


class TestReplicaWarmedJoin:
    def _join_run(self, config, rounds, policy, join_at=5.0):
        tier = ShardedEngineFLStore.build(
            2, config=config, replication_factor=2, replication_policy=policy
        )
        for record in rounds:
            tier.ingest_round(record)
        generator = RequestTraceGenerator(tier.catalog, seed=7)
        trace = generator.mixed_trace(["inference"], 60)
        arrivals = [0.4 * i for i in range(len(trace))]
        tier.loop.schedule_at(join_at, tier.add_shard)
        report = tier.run_open_loop(trace, arrivals, label="join")
        window = [
            o.sojourn_seconds
            for o in report.outcomes
            if join_at <= o.arrived_at <= join_at + 10.0
        ]
        window.sort()
        p99 = window[max(0, int(len(window) * 0.99) - 1)]
        assert report.served + report.degraded + report.shed == report.submitted
        return p99, tier

    def test_warm_join_beats_cold_join_on_post_join_tail(self, repl_config, repl_rounds):
        """The acceptance pin at seed 7: seeding the joiner from replicas
        beats replaying the round log into a cold cache."""
        cold_p99, cold_tier = self._join_run(repl_config, repl_rounds, "none")
        warm_p99, warm_tier = self._join_run(repl_config, repl_rounds, "hot-static")
        assert warm_p99 < cold_p99
        assert (round(cold_p99, 3), round(warm_p99, 3)) == (17.791, 8.417)
        assert cold_tier.replica_warm_events == 0
        assert len(cold_tier.shards) == len(warm_tier.shards) == 3

    def test_warm_events_populate_an_idle_joiner(self, repl_config, repl_rounds):
        """With no traffic after the join, only the scheduled warm events can
        place bytes on the new shard — and they never touch the fleet sum."""
        tier = ShardedEngineFLStore.build(
            2, config=repl_config, replication_factor=2, replication_policy="hot-static"
        )
        for record in repl_rounds:
            tier.ingest_round(record)
        generator = RequestTraceGenerator(tier.catalog, seed=7)
        trace = generator.workload_trace("inference", 4)
        tier.run_open_loop(trace, [0.1 * i for i in range(4)], label="pre")
        key = next(iter(tier._replica_keys))
        data_keys = tier._replica_keys[key]
        assert data_keys
        index = tier.add_shard()
        joiner = tier.shards[index].flstore.cluster
        fleet_bytes = tier.cached_bytes
        tier.loop.run()
        assert tier.replica_warm_events >= 1
        assert joiner.replica_cached_bytes > 0
        assert all(joiner.is_live(k) for k in data_keys)
        assert all(not joiner.is_live(k, include_replicas=False) for k in data_keys)
        assert tier._replica_live(index, key)
        # Warm placements are tier replicas: fleet-wide bytes are unchanged.
        assert tier.cached_bytes == fleet_bytes

    def test_sweeping_the_factor_axis_reports_the_improvement(self):
        spec = ScenarioSpec(
            name="repl-sweep",
            num_rounds=4,
            workload=WorkloadMixSpec(workloads=("inference", "scheduling_perf"), num_requests=24),
            arrival=ArrivalSpec(kind="bursty", utilization=2.0),
            tier=TierSpec(
                shards=4,
                router_kind="jsq",
                admission=AdmissionSpec(max_queue_depth=6, shed_policy="degrade-to-objstore"),
                replication=ReplicationSpec(factor=2, policy="hot-static"),
            ),
        )
        rows = sweep(spec, axes={"tier.replication.factor": (1, 2)})
        assert [row["shards"] for row in rows] == [4, 4]
        assert all(row["conserved"] for row in rows)
        base, replicated = rows
        assert replicated["max_shard_routed"] < base["max_shard_routed"]
        assert replicated["p99_sojourn_seconds"] < base["p99_sojourn_seconds"]
        assert replicated["replica_hits"] > 0
        assert replicated["replicated_keys"] > 0


class TestExplainFastPath:
    def test_explanation_agrees_with_eligibility_everywhere(self):
        for name in list_scenarios():
            spec = get_scenario(name)
            reasons = explain_fast_path(spec)
            assert bool(reasons) == (not fast_path_eligible(spec)), name

    def test_eligible_scenario_has_no_reasons(self):
        assert explain_fast_path(get_scenario("million-request")) == []

    def test_reasons_name_the_blocking_knobs(self):
        reasons = explain_fast_path(get_scenario("engine-baseline"))
        assert any("metrics" in reason for reason in reasons)
        reasons = explain_fast_path(get_scenario("hotkey-replicated"))
        assert any("sharded" in reason for reason in reasons)

    def test_smoke_run_prints_the_fast_path_verdict(self, capsys):
        from repro.cli import main

        assert main(["run-scenario", "--name", "million-request", "--smoke"]) == 0
        assert "fast path: eligible" in capsys.readouterr().out
        assert main(["run-scenario", "--name", "hotkey-replicated", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "fast path: event path" in out
        assert "sharded" in out
