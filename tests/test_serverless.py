"""Serverless function, platform, and fault injection."""

from __future__ import annotations

import pytest

from repro.common.errors import CapacityError, DataNotFoundError, FunctionReclaimedError
from repro.common.units import GB, MB
from repro.config import PricingConfig, ServerlessConfig
from repro.serverless.faults import ZipfianFaultInjector
from repro.serverless.function import FunctionState, ServerlessFunction
from repro.serverless.platform import ServerlessPlatform


@pytest.fixture()
def function():
    return ServerlessFunction("fn-test", memory_limit_bytes=1 * GB)


@pytest.fixture()
def platform():
    return ServerlessPlatform(ServerlessConfig(), PricingConfig())


class TestServerlessFunction:
    def test_store_and_load(self, function):
        function.store("key", {"x": 1}, size_bytes=10 * MB)
        assert function.load("key") == {"x": 1}
        assert function.holds("key")
        assert function.used_bytes == 10 * MB

    def test_capacity_enforced(self, function):
        with pytest.raises(CapacityError):
            function.store("big", b"", size_bytes=2 * GB)

    def test_overwrite_reuses_space(self, function):
        function.store("k", b"", size_bytes=900 * MB)
        # Replacing the same key should not double-count its old size.
        function.store("k", b"", size_bytes=950 * MB)
        assert function.used_bytes == 950 * MB

    def test_load_missing_raises(self, function):
        with pytest.raises(DataNotFoundError):
            function.load("missing")

    def test_evict(self, function):
        function.store("k", b"", size_bytes=1 * MB)
        assert function.evict("k") is True
        assert function.evict("k") is False
        assert function.free_bytes == function.memory_limit_bytes

    def test_reclaim_loses_memory(self, function):
        function.store("k", b"", size_bytes=1 * MB)
        function.reclaim()
        assert function.state is FunctionState.RECLAIMED
        assert not function.is_warm
        with pytest.raises(FunctionReclaimedError):
            function.load("k")

    def test_restore_starts_empty(self, function):
        function.store("k", b"", size_bytes=1 * MB)
        function.reclaim()
        function.restore()
        assert function.is_warm
        assert len(function) == 0

    def test_record_invocation_tracks_stats(self, function):
        function.record_invocation(now=1.0, busy_seconds=2.0)
        function.record_invocation(now=3.0)
        assert function.stats.invocations == 2
        assert function.stats.executions == 1
        assert function.last_invoked_at == 3.0

    def test_size_of_and_resident_keys(self, function):
        function.store("a", b"", size_bytes=5)
        assert function.size_of("a") == 5
        assert list(function.resident_keys()) == ["a"]

    def test_rejects_nonpositive_memory(self):
        with pytest.raises(ValueError):
            ServerlessFunction("fn", memory_limit_bytes=0)


class TestServerlessPlatform:
    def test_spawn_assigns_unique_ids_and_cold_start(self, platform):
        f1, r1 = platform.spawn_function()
        f2, _ = platform.spawn_function()
        assert f1.function_id != f2.function_id
        assert r1.latency.cold_start_seconds > 0
        assert platform.warm_count == 2

    def test_spawn_rejects_oversized_memory(self, platform):
        with pytest.raises(ValueError):
            platform.spawn_function(memory_bytes=64 * GB)

    def test_spawn_respects_max_warm_functions(self):
        platform = ServerlessPlatform(ServerlessConfig(max_warm_functions=2), PricingConfig())
        platform.spawn_function()
        platform.spawn_function()
        with pytest.raises(RuntimeError):
            platform.spawn_function()

    def test_invoke_bills_gb_seconds(self, platform):
        function, _ = platform.spawn_function(memory_bytes=4 * GB)
        result = platform.invoke(function.function_id, busy_seconds=10.0)
        assert result.latency.computation_seconds == pytest.approx(10.0)
        expected = 4.0 * 10.0 * platform.pricing.lambda_cost_per_gb_second
        assert result.cost.compute_dollars == pytest.approx(expected)

    def test_invoke_reclaimed_raises(self, platform):
        function, _ = platform.spawn_function()
        platform.reclaim_function(function.function_id)
        with pytest.raises(FunctionReclaimedError):
            platform.invoke(function.function_id, busy_seconds=1.0)

    def test_invoke_unknown_raises(self, platform):
        with pytest.raises(DataNotFoundError):
            platform.invoke("fn-9999", busy_seconds=1.0)

    def test_reclaim_and_restore(self, platform):
        function, _ = platform.spawn_function()
        platform.reclaim_function(function.function_id)
        assert platform.warm_count == 0
        platform.restore_function(function.function_id)
        assert platform.warm_count == 1

    def test_ping_keeps_function_warm(self, platform):
        function, _ = platform.spawn_function()
        platform.ping(function.function_id)
        assert platform.get_function(function.function_id).stats.invocations == 1

    def test_keepalive_cost_scales_with_duration(self, platform):
        platform.spawn_function()
        short = platform.keepalive_cost(1.0).provisioned_dollars
        long = platform.keepalive_cost(100.0).provisioned_dollars
        assert long == pytest.approx(100 * short)

    def test_total_cached_bytes(self, platform):
        function, _ = platform.spawn_function()
        function.store("k", b"", size_bytes=25 * MB)
        assert platform.total_cached_bytes == 25 * MB

    def test_invoke_rejects_negative_busy_seconds(self, platform):
        function, _ = platform.spawn_function()
        with pytest.raises(ValueError):
            platform.invoke(function.function_id, busy_seconds=-1.0)


class TestZipfianFaultInjector:
    def test_zero_rate_never_reclaims(self):
        injector = ZipfianFaultInjector(fault_rate=0.0, seed=1)
        assert injector.sample_reclamations(["a", "b"]) == []
        assert injector.total_faults == 0

    def test_full_rate_always_reclaims_something(self):
        injector = ZipfianFaultInjector(fault_rate=1.0, seed=1)
        reclaimed = injector.sample_reclamations(["a", "b", "c"])
        assert len(reclaimed) >= 1
        assert set(reclaimed) <= {"a", "b", "c"}

    def test_empty_candidates(self):
        injector = ZipfianFaultInjector(fault_rate=1.0, seed=1)
        assert injector.sample_reclamations([]) == []

    def test_deterministic_given_seed(self):
        a = ZipfianFaultInjector(fault_rate=0.5, seed=3)
        b = ZipfianFaultInjector(fault_rate=0.5, seed=3)
        candidates = [f"fn-{i}" for i in range(10)]
        assert [a.sample_reclamations(candidates) for _ in range(20)] == [
            b.sample_reclamations(candidates) for _ in range(20)
        ]

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            ZipfianFaultInjector(fault_rate=1.5)
        with pytest.raises(ValueError):
            ZipfianFaultInjector(zipf_exponent=1.0)

    def test_reset_clears_events(self):
        injector = ZipfianFaultInjector(fault_rate=1.0, seed=2)
        injector.sample_reclamations(["a"])
        injector.reset()
        assert injector.total_faults == 0

    def test_fault_rate_roughly_respected(self):
        injector = ZipfianFaultInjector(fault_rate=0.2, seed=5)
        candidates = [f"fn-{i}" for i in range(4)]
        faulty_steps = sum(bool(injector.sample_reclamations(candidates)) for _ in range(500))
        assert 50 <= faulty_steps <= 150
